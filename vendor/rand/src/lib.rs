//! Vendored offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! The workspace uses `rand` only for deterministic, seeded synthesis
//! (workload traces, address streams), always through
//! `StdRng::seed_from_u64` — never from OS entropy. This stub implements
//! exactly that surface on top of splitmix64-seeded xoshiro256++, which is
//! plenty for statistical trace synthesis and fully reproducible.
//!
//! Supported: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen::<f64>()` / `::<bool>()` / `::<u64>()`, and
//! `Rng::gen_range(a..b)` for `f64` and the common integer types.
//! The stream is stable across runs and platforms; it does NOT match the
//! real `rand` crate's output (nothing in the workspace depends on that).

/// Core source of randomness: a 64-bit word generator.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0,1)`, integers uniform over the type,
    /// `bool` fair).
    fn gen<T: distributions::Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open `a..b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: distributions::SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_uniform(self)
    }

    /// `true` with probability `p` (clamped to `[0,1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore> Rng for R {}

/// Distribution plumbing for [`Rng::gen`] and [`Rng::gen_range`].
pub mod distributions {
    use super::RngCore;

    /// Types with a standard distribution for [`super::Rng::gen`].
    pub trait Standard: Sized {
        /// Draws one value from the standard distribution.
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            // 53 high bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Standard for u64 {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Ranges usable with [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_uniform<R: RngCore>(self, rng: &mut R) -> T;
    }

    impl SampleRange<f64> for core::ops::Range<f64> {
        fn sample_uniform<R: RngCore>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "gen_range: empty range");
            let u = f64::sample_standard(rng);
            self.start + (self.end - self.start) * u
        }
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    int_range!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via splitmix64 (not the real `rand` StdRng, but a stable,
    /// high-quality stream for trace synthesis).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
            let n = r.gen_range(3u64..17);
            assert!((3..17).contains(&n));
        }
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
