//! Vendored offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `serde` cannot be fetched. The sources only ever use
//! `#[derive(Serialize, Deserialize)]` as a forward-compatibility marker —
//! nothing in the workspace serializes through serde's data model (the
//! actual wire formats are the hand-rolled CSV exporters in
//! `ntc_datacenter::export` and the JSON codec in
//! `ntc_datacenter::engine::spec_json`). This stub therefore provides the
//! two traits as empty markers plus derive macros that emit empty impls.
//!
//! Swapping in the real serde later is a one-line manifest change: the
//! trait names, derive names and module layout match.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
///
/// Implemented via `#[derive(Serialize)]`; carries no methods in this
/// vendored stub.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
///
/// Implemented via `#[derive(Deserialize)]`; carries no methods (and no
/// `'de` lifetime) in this vendored stub.
pub trait Deserialize {}
