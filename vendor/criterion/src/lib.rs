//! Vendored offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real criterion
//! cannot be fetched. The bench targets in `crates/bench` only need the
//! basic surface — `Criterion::bench_function`, `benchmark_group` with
//! `sample_size`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — which this stub provides as a simple
//! wall-clock harness: warm up once, run a fixed number of samples, and
//! print min/mean/max per benchmark. No statistical analysis, plots, or
//! HTML reports.

use std::time::{Duration, Instant};

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;
/// Wall-clock budget per benchmark; sampling stops early once exceeded.
const TIME_BUDGET: Duration = Duration::from_secs(5);

/// Whether the harness runs in quick-smoke mode (`cargo bench -- --test`
/// or `CRITERION_TEST=1`): each benchmark executes exactly once, untimed
/// — real criterion's `--test` flag. Bench code can branch on this to
/// shrink its own setup (smaller sweeps, fewer printed rows).
pub fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test") || std::env::var_os("CRITERION_TEST").is_some()
}

/// Entry point handed to every bench function by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Times `f` and prints a one-line summary under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` and prints a one-line summary under `group/id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Timer handle passed to the closure given to `bench_function`.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget_exhausted: bool,
}

impl Bencher {
    /// Times one sample of `routine` (the whole closure is one sample).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.budget_exhausted {
            return;
        }
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        drop(out);
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher::default();
    if test_mode() {
        // Smoke run: execute once so the bench code is exercised, skip
        // warm-up and timing entirely.
        f(&mut b);
        println!("{id:<40} test-mode: ran once, not timed");
        return;
    }
    // Warm-up sample, discarded.
    f(&mut b);
    b.samples.clear();

    let started = Instant::now();
    for _ in 0..sample_size {
        f(&mut b);
        if started.elapsed() > TIME_BUDGET {
            b.budget_exhausted = true;
        }
    }

    if b.samples.is_empty() {
        println!("{id:<40} (no samples: routine never called iter)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{id:<40} samples {:>3}  min {:>12?}  mean {:>12?}  max {:>12?}",
        b.samples.len(),
        min,
        mean,
        max
    );
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_returns_self() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box(2u64 + 2)
            })
        });
        // one warm-up + DEFAULT_SAMPLE_SIZE timed samples
        assert_eq!(runs, 1 + DEFAULT_SAMPLE_SIZE as u32);
    }

    #[test]
    fn test_mode_is_off_under_the_test_harness() {
        // `cargo test` passes neither `--test` nor CRITERION_TEST, so
        // the timing assertions in the other tests hold.
        assert!(!test_mode());
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1 + 3);
    }
}
