//! Vendored offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This stub keeps the workspace's property tests
//! running as deterministic randomized tests: each `proptest!` test draws
//! its inputs from a generator seeded by the test's own path, runs the
//! body for `ProptestConfig::cases` iterations, and fails through plain
//! `assert!` on the first violation.
//!
//! Differences from real proptest, accepted on purpose:
//! - no shrinking — a failure reports the raw counterexample only;
//! - no persistence of failing seeds (the stream is already deterministic);
//! - only the strategy combinators this workspace uses are provided:
//!   numeric ranges, tuples (arity 2–6), `prop_map`, and
//!   `prop::collection::vec` with a `usize` or `Range<usize>` size.

pub mod strategy {
    //! The [`Strategy`] trait and the combinators built on it.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// simply draws one concrete value per test case.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! `vec`: the one collection strategy this workspace uses.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number of elements for [`vec`]: either exact or drawn from a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Per-test configuration and the deterministic case generator.

    /// Subset of proptest's config: only `cases` is honoured.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of randomized cases each test body runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` iterations per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest's default; cheap for the small inputs the
            // unconfigured tests in this workspace draw.
            Self { cases: 256 }
        }
    }

    /// Deterministic generator (splitmix64) seeded from the test's path,
    /// so every test has its own reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from the fully qualified test name.
        pub fn for_test(test_path: &str) -> Self {
            // FNV-1a over the path: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Defines deterministic randomized tests.
///
/// Accepts an optional leading `#![proptest_config(...)]` followed by any
/// number of `#[test] fn name(binding in strategy, ...) { body }` items.
/// Each expands to a plain `#[test]` function that loops over
/// `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under a name the property tests expect.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

pub mod prelude {
    //! Everything a property test file needs, mirroring real proptest's
    //! `use proptest::prelude::*;` idiom.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Mirrors proptest's `prop` facade module (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(x in 0.0f64..10.0, v in prop::collection::vec(0u64..5, 1..9)) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuple_map(p in (0usize..4, 1.0f64..2.0).prop_map(|(i, f)| i as f64 * f)) {
            prop_assert!((0.0..8.0).contains(&p), "mapped value {} out of range", p);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(n in 1u32..100) {
            prop_assert_eq!(n.wrapping_add(0), n);
        }
    }

    #[test]
    fn streams_are_per_test_deterministic() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_test("mod::case");
        let mut b = TestRng::for_test("mod::case");
        let mut c = TestRng::for_test("mod::other");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
