//! Derive macros for the vendored `serde` stand-in.
//!
//! Emits empty marker impls (`impl ::serde::Serialize for T {}`). Written
//! without `syn`/`quote` (offline build): the input item is scanned for the
//! `struct`/`enum` keyword and the following identifier. Generic type
//! parameters are intentionally unsupported — no serde-derived type in this
//! workspace has them, and a generic type would fail to compile loudly here
//! rather than silently misbehave.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let name = type_name(input)
        .unwrap_or_else(|| panic!("#[derive({trait_name})] expects a struct or enum"));
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// The identifier following the first `struct` or `enum` keyword.
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return Some(name.to_string());
                }
            }
        }
    }
    None
}
