//! # ntc-dc — Consolidating or Not?
//!
//! A reproduction of *"Energy Proportionality in Near-Threshold Computing
//! Servers and Cloud Data Centers: Consolidating or Not?"* (Pahlevan et
//! al., DATE 2018) as a Rust workspace. This facade crate re-exports every
//! sub-crate under a stable namespace:
//!
//! * [`units`] — dimensional newtypes ([`ntc_units`])
//! * [`trace`] — time-series substrate ([`ntc_trace`])
//! * [`power`] — FD-SOI NTC and conventional server power models
//!   ([`ntc_power`])
//! * [`archsim`] — interval-model multicore server simulator
//!   ([`ntc_archsim`])
//! * [`workload`] — Google-cluster-like VM trace synthesis
//!   ([`ntc_workload`])
//! * [`forecast`] — ARIMA prediction ([`ntc_forecast`])
//! * [`policy`] — EPACT and the consolidation baselines ([`ntc_core`])
//! * [`datacenter`] — week-long data-center simulation ([`ntc_datacenter`])
//!
//! # Quickstart
//!
//! ```
//! use ntc_dc::power::ServerPowerModel;
//! use ntc_dc::units::{Frequency, Percent};
//!
//! let server = ServerPowerModel::ntc();
//! let p = server.power(Frequency::from_ghz(1.9), Percent::FULL, Percent::new(10.0));
//! assert!(p.as_watts() > 20.0);
//! ```
//!
//! # Running experiments: the [`Engine`](datacenter::Engine)
//!
//! Every evaluation of the paper is a sweep over independent
//! (policy, configuration) cells. Declare the sweep once as an
//! [`ExperimentSpec`](datacenter::ExperimentSpec) and the engine fans
//! the cells across all cores, returning outcomes deterministically in
//! spec order — a parallel run is bit-identical to a sequential one:
//!
//! ```
//! use ntc_dc::datacenter::{Engine, ExperimentSpec};
//!
//! let mut spec = ExperimentSpec::default_sweep(); // EPACT/COAT/COAT-OPT x NTC/conv
//! spec.fleets[0].num_vms = 16; // keep the doctest fast
//! spec.max_servers = 200;
//! let sweep = Engine::new().run(&spec).unwrap();
//! assert_eq!(sweep.cells.len(), 6);
//! let epact_ntc = &sweep.cells[0];
//! assert_eq!(epact_ntc.outcome.policy, "EPACT");
//! ```
//!
//! Fleet seeds and static-power scales (the Fig. 7 knob) are axes of
//! the same spec: multiple fleets run every configuration once per
//! seed, and [`SweepResult::seed_groups`](datacenter::SweepResult::seed_groups)
//! collapses them to mean±std rows:
//!
//! ```
//! use ntc_dc::datacenter::{Engine, ExperimentSpec, PolicySpec, ServerSpec};
//!
//! let mut spec = ExperimentSpec::default_sweep().with_seeds(&[1, 2, 3]);
//! spec.fleets.iter_mut().for_each(|f| f.num_vms = 10); // doctest-sized
//! spec.policies = vec![PolicySpec::Epact];
//! spec.servers = vec![ServerSpec::Ntc];
//! spec.static_power_scales = vec![1.0, 0.5]; // Fig. 7: halved motherboard power
//! spec.max_servers = 100;
//! let sweep = Engine::new().run(&spec).unwrap();
//! assert_eq!(sweep.cells.len(), 6); // 3 seeds x 2 scales x 1 policy
//! let groups = sweep.seed_groups(); // averaged over the seed axis
//! assert_eq!(groups.len(), 2);
//! assert_eq!(groups[0].runs, 3);
//! println!("energy: {} MJ", groups[0].energy_mj); // "123.4±5.6"
//! ```
//!
//! The *accounting backend* is an axis too: every cell's slot pipeline
//! runs forecast → plan → govern identically, then prices the governed
//! operating points either through the analytic §IV power model (the
//! default) or through the [`archsim`] interval simulator with
//! Table-I-style QoS degradation checks — `ntcdc sweep --backends
//! analytic,archsim` sweeps both through one engine:
//!
//! ```
//! use ntc_dc::datacenter::{BackendSpec, Engine, ExperimentSpec, PolicySpec, ServerSpec};
//!
//! let mut spec = ExperimentSpec::default_sweep();
//! spec.fleets[0].num_vms = 10; // doctest-sized
//! spec.policies = vec![PolicySpec::Epact];
//! spec.servers = vec![ServerSpec::Ntc];
//! spec.backends = vec![BackendSpec::Analytic, BackendSpec::Archsim];
//! spec.max_servers = 100;
//! let sweep = Engine::new().run(&spec).unwrap();
//! assert_eq!(sweep.cells.len(), 2); // one cell per backend
//! // Backends share the plan stage bit for bit; only pricing differs.
//! assert_eq!(
//!     sweep.cells[0].outcome.total_migrations(),
//!     sweep.cells[1].outcome.total_migrations(),
//! );
//! ```
//!
//! # Failure model: one bad cell cannot sink the sweep
//!
//! Every cell runs isolated behind a panic boundary. A cell that
//! panics or reports an error becomes a structured
//! [`CellError`](datacenter::CellError) — carrying the cell's index,
//! label, full [`CellSpec`](datacenter::CellSpec), the pipeline stage
//! that failed, and the panic payload or
//! [`Error`](policy::Error) — while every other cell completes
//! bit-identically to a clean run. The
//! [`succeeded`](datacenter::SweepResult::succeeded) and
//! [`failed`](datacenter::SweepResult::failed) accessors partition
//! the [`SweepResult`](datacenter::SweepResult); setting
//! [`ExperimentSpec::failure_policy`](datacenter::ExperimentSpec) to
//! [`FailurePolicy::FailFast`](datacenter::FailurePolicy) (the CLI's
//! `ntcdc sweep --fail-fast`) aborts the not-yet-started cells after
//! the first failure instead, reporting them as skipped. The
//! test-only [`FaultSpec`](datacenter::FaultSpec) axis injects a
//! panic or error into one cell of one run to prove the isolation:
//!
//! ```
//! use ntc_dc::datacenter::{CellStage, Engine, ExperimentSpec, FaultSpec};
//!
//! let mut spec = ExperimentSpec::default_sweep();
//! spec.fleets[0].num_vms = 16; // doctest-sized
//! spec.max_servers = 200;
//! let sweep = Engine::new()
//!     .inject_fault(FaultSpec::error_at(0)) // cell 0 fails in setup
//!     .run(&spec)
//!     .unwrap();
//! assert_eq!(sweep.succeeded().len(), 5); // the other 5 cells are intact
//! let failed = &sweep.failed()[0];
//! assert_eq!(failed.index, 0);
//! assert_eq!(failed.stage(), Some(CellStage::Setup));
//! println!("{failed}"); // "cell 0 (EPACT/NTC) failed in setup: ..."
//! ```
//!
//! Failed cells surface everywhere downstream: the sweep JSON export
//! carries a `failures` array with `cells_total`/`cells_failed`
//! counts, `ntcdc sweep` prints a per-cell failure table and exits
//! non-zero, and [`seed_groups`](datacenter::SweepResult::seed_groups)
//! averages over the surviving seeds only, NaN-free.
//!
//! Specs serialize to JSON via
//! [`datacenter::spec_json`] — the same file format `ntcdc sweep
//! --spec` reads (legacy specs without a `backends` array default to
//! analytic accounting; the `failure_policy` field round-trips as
//! `"keep_going"`/`"fail_fast"` and defaults to keep-going).
//!
//! The engine memoizes planning work across cells: fleets are generated
//! once per seed, day-ahead forecasts are shared by every cell of a
//! fleet, and cells that differ only in static-power scale reuse whole
//! slot plans. `ntcdc sweep --cache-stats` prints the hit/miss totals
//! (and `--no-cache` turns the sharing off):
//!
//! ```text
//! $ ntcdc sweep --seeds 1,2 --static-power-scales 0.5,1.0 --arima --cache-stats
//! ...
//! cache: plans 42 hit / 1414 miss, forecasts 112 hit / 14 miss
//! ```
//!
//! # Fallible construction (`try_new`) migration notes
//!
//! Constructors that used to panic on invalid input now come in pairs:
//! a fallible `try_new` (or builder `build`) returning
//! [`Result`](policy::Result) with the shared
//! [`ntc_core::Error`](policy::Error) enum, and a `#[track_caller]`
//! panicking `new` (or `build_or_panic`) wrapper that preserves the old
//! behaviour and messages. Existing code keeps working; code that wants
//! to surface configuration errors (CLI parsing, spec validation)
//! switches to the fallible form:
//!
//! * `SlotContext::new` / `SlotPlan::new` → `try_new`
//! * `OneDimAllocator::new` / `TwoDimAllocator::new` → `try_new`, with
//!   `TwoDimAllocator::builder(..).correlation_only().build()` for the
//!   Eq. 2 ablation
//! * `WeekSim::new` → `WeekSim::try_new`, with
//!   `WeekSim::builder(..).qos_floor(..).build()` for the QoS knob
//!   (replacing the removed `with_qos_floor`)
//! * `Engine::run` is fallible end to end and validates the spec before
//!   fanning out

#![warn(missing_docs)]

pub use ntc_archsim as archsim;
pub use ntc_core as policy;
pub use ntc_datacenter as datacenter;
pub use ntc_forecast as forecast;
pub use ntc_power as power;
pub use ntc_trace as trace;
pub use ntc_units as units;
pub use ntc_workload as workload;
