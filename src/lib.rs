//! # ntc-dc — Consolidating or Not?
//!
//! A reproduction of *"Energy Proportionality in Near-Threshold Computing
//! Servers and Cloud Data Centers: Consolidating or Not?"* (Pahlevan et
//! al., DATE 2018) as a Rust workspace. This facade crate re-exports every
//! sub-crate under a stable namespace:
//!
//! * [`units`] — dimensional newtypes ([`ntc_units`])
//! * [`trace`] — time-series substrate ([`ntc_trace`])
//! * [`power`] — FD-SOI NTC and conventional server power models
//!   ([`ntc_power`])
//! * [`archsim`] — interval-model multicore server simulator
//!   ([`ntc_archsim`])
//! * [`workload`] — Google-cluster-like VM trace synthesis
//!   ([`ntc_workload`])
//! * [`forecast`] — ARIMA prediction ([`ntc_forecast`])
//! * [`policy`] — EPACT and the consolidation baselines ([`ntc_core`])
//! * [`datacenter`] — week-long data-center simulation ([`ntc_datacenter`])
//!
//! # Quickstart
//!
//! ```
//! use ntc_dc::power::ServerPowerModel;
//! use ntc_dc::units::{Frequency, Percent};
//!
//! let server = ServerPowerModel::ntc();
//! let p = server.power(Frequency::from_ghz(1.9), Percent::FULL, Percent::new(10.0));
//! assert!(p.as_watts() > 20.0);
//! ```

#![warn(missing_docs)]

pub use ntc_archsim as archsim;
pub use ntc_core as policy;
pub use ntc_datacenter as datacenter;
pub use ntc_forecast as forecast;
pub use ntc_power as power;
pub use ntc_trace as trace;
pub use ntc_units as units;
pub use ntc_workload as workload;
