use ntc_trace::{SampleGrid, TimeSeries};
use serde::{Deserialize, Serialize};

use crate::{Vm, VmId};

/// The VM population handed to an allocation policy, with its sampling
/// grid.
///
/// # Examples
///
/// ```
/// use ntc_workload::ClusterTraceGenerator;
///
/// let fleet = ClusterTraceGenerator::google_like(30, 1).generate();
/// let agg = fleet.aggregate_cpu();
/// assert_eq!(agg.len(), fleet.grid().len());
/// assert!(agg.peak() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fleet {
    grid: SampleGrid,
    vms: Vec<Vm>,
}

impl Fleet {
    /// Creates a fleet.
    ///
    /// # Panics
    ///
    /// Panics if any VM's horizon differs from the grid length, or the
    /// fleet is empty.
    pub fn new(grid: SampleGrid, vms: Vec<Vm>) -> Self {
        assert!(!vms.is_empty(), "a fleet needs at least one VM");
        for vm in &vms {
            assert_eq!(
                vm.horizon(),
                grid.len(),
                "VM {} horizon does not match the grid",
                vm.id
            );
        }
        Self { grid, vms }
    }

    /// The sampling grid.
    pub fn grid(&self) -> &SampleGrid {
        &self.grid
    }

    /// All VMs.
    pub fn vms(&self) -> &[Vm] {
        &self.vms
    }

    /// Number of VMs.
    #[allow(clippy::len_without_is_empty)] // a fleet is never empty by construction
    pub fn len(&self) -> usize {
        self.vms.len()
    }

    /// Looks a VM up by id.
    pub fn vm(&self, id: VmId) -> &Vm {
        &self.vms[id.index()]
    }

    /// Sum of all CPU traces (percent of one server's capacity; may far
    /// exceed 100 — it is the whole data center's demand).
    pub fn aggregate_cpu(&self) -> TimeSeries {
        TimeSeries::aggregate(self.grid.len(), self.vms.iter().map(|v| &v.cpu))
    }

    /// Sum of all memory traces.
    pub fn aggregate_mem(&self) -> TimeSeries {
        TimeSeries::aggregate(self.grid.len(), self.vms.iter().map(|v| &v.mem))
    }

    /// A sub-fleet whose traces are restricted to sample range `range`
    /// (e.g. the evaluation week of a two-week generation).
    ///
    /// # Panics
    ///
    /// Panics if the range is not slot-aligned or out of bounds.
    pub fn window(&self, range: std::ops::Range<usize>) -> Fleet {
        assert!(range.end <= self.grid.len(), "window out of bounds");
        let len = range.end - range.start;
        assert!(
            len.is_multiple_of(self.grid.samples_per_slot()),
            "window must be slot-aligned"
        );
        let grid = SampleGrid::new(len, self.grid.sample_period(), self.grid.samples_per_slot());
        let vms = self
            .vms
            .iter()
            .map(|v| {
                Vm::new(
                    v.id,
                    v.class,
                    v.cpu.window(range.clone()),
                    v.mem.window(range.clone()),
                )
            })
            .collect();
        Fleet::new(grid, vms)
    }

    /// Splits a multi-week fleet into (training, evaluation) halves at
    /// `at_sample`.
    ///
    /// # Panics
    ///
    /// Panics if `at_sample` is not slot-aligned or out of bounds.
    pub fn split_at(&self, at_sample: usize) -> (Fleet, Fleet) {
        (
            self.window(0..at_sample),
            self.window(at_sample..self.grid.len()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterTraceGenerator;

    #[test]
    fn aggregate_is_sum() {
        let fleet = ClusterTraceGenerator::google_like(5, 2).generate();
        let agg = fleet.aggregate_cpu();
        let manual: f64 = fleet.vms().iter().map(|v| v.cpu.at(100)).sum();
        assert!((agg.at(100) - manual).abs() < 1e-9);
    }

    #[test]
    fn window_and_split() {
        let fleet = ClusterTraceGenerator::google_like(4, 3).generate();
        let (train, eval) = fleet.split_at(2016);
        assert_eq!(train.grid().len(), 2016);
        assert_eq!(eval.grid().len(), 2016);
        assert_eq!(train.vms()[0].cpu.at(0), fleet.vms()[0].cpu.at(0));
        assert_eq!(eval.vms()[0].cpu.at(0), fleet.vms()[0].cpu.at(2016));
    }

    #[test]
    fn vm_lookup() {
        let fleet = ClusterTraceGenerator::google_like(4, 3).generate();
        let vm = fleet.vm(VmId::new(2));
        assert_eq!(vm.id, VmId::new(2));
    }

    #[test]
    #[should_panic(expected = "slot-aligned")]
    fn ragged_window_rejected() {
        let fleet = ClusterTraceGenerator::google_like(2, 3).generate();
        let _ = fleet.window(0..13);
    }
}
