use ntc_trace::TimeSeries;
use ntc_units::MemBytes;
use serde::{Deserialize, Serialize};

/// A virtual machine identifier (index into its [`crate::Fleet`]).
///
/// # Examples
///
/// ```
/// use ntc_workload::VmId;
///
/// let id = VmId::new(7);
/// assert_eq!(id.index(), 7);
/// assert_eq!(id.to_string(), "vm7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(usize);

impl VmId {
    /// Creates an id from a fleet index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The fleet index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// The paper's three memory-footprint classes (§III-B): per-VM average
/// memory usage on a 1 GB container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemClass {
    /// 70 MB average usage (7%).
    Low,
    /// 255 MB average usage (25%).
    Mid,
    /// 435 MB average usage (43%).
    High,
}

impl MemClass {
    /// Average memory footprint of this class.
    pub fn mean_footprint(self) -> MemBytes {
        match self {
            MemClass::Low => MemBytes::from_mib(70),
            MemClass::Mid => MemBytes::from_mib(255),
            MemClass::High => MemBytes::from_mib(435),
        }
    }

    /// Average utilization of the VM's 1 GB allocation, in percent.
    pub fn mean_util_of_vm(self) -> f64 {
        match self {
            MemClass::Low => 7.0,
            MemClass::Mid => 25.0,
            MemClass::High => 43.0,
        }
    }

    /// All classes in ascending footprint order.
    pub fn all() -> [MemClass; 3] {
        [MemClass::Low, MemClass::Mid, MemClass::High]
    }

    /// The matching archsim kernel name (`low-mem` / `mid-mem` /
    /// `high-mem`).
    pub fn kernel_name(self) -> &'static str {
        match self {
            MemClass::Low => "low-mem",
            MemClass::Mid => "mid-mem",
            MemClass::High => "high-mem",
        }
    }
}

impl std::fmt::Display for MemClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.kernel_name())
    }
}

/// One virtual machine: identity, class and utilization traces.
///
/// Both traces are expressed as **percent of one server's capacity**, so
/// the allocation policies can sum them directly against per-server caps:
///
/// * `cpu` — a VM pinned to one core of a 16-core server peaks at
///   `100/16 = 6.25`;
/// * `mem` — a 1 GB container on a 16 GB server contributes its
///   utilization × `1/16`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vm {
    /// Identity within the fleet.
    pub id: VmId,
    /// Memory class of the job it runs.
    pub class: MemClass,
    /// CPU utilization trace, percent of server capacity.
    pub cpu: TimeSeries,
    /// Memory utilization trace, percent of server capacity.
    pub mem: TimeSeries,
}

impl Vm {
    /// Creates a VM.
    ///
    /// # Panics
    ///
    /// Panics if the traces have different lengths.
    pub fn new(id: VmId, class: MemClass, cpu: TimeSeries, mem: TimeSeries) -> Self {
        assert_eq!(
            cpu.len(),
            mem.len(),
            "CPU and memory traces must cover the same horizon"
        );
        Self {
            id,
            class,
            cpu,
            mem,
        }
    }

    /// Number of samples in the traces.
    pub fn horizon(&self) -> usize {
        self.cpu.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_footprints() {
        assert_eq!(MemClass::Low.mean_footprint(), MemBytes::from_mib(70));
        assert_eq!(MemClass::Mid.mean_footprint(), MemBytes::from_mib(255));
        assert_eq!(MemClass::High.mean_footprint(), MemBytes::from_mib(435));
        assert_eq!(MemClass::Low.mean_util_of_vm(), 7.0);
    }

    #[test]
    fn class_display_matches_kernel_names() {
        assert_eq!(MemClass::High.to_string(), "high-mem");
        assert_eq!(MemClass::all().len(), 3);
    }

    #[test]
    fn vm_construction() {
        let cpu = TimeSeries::constant(10, 3.0);
        let mem = TimeSeries::constant(10, 1.5);
        let vm = Vm::new(VmId::new(0), MemClass::Low, cpu, mem);
        assert_eq!(vm.horizon(), 10);
    }

    #[test]
    #[should_panic(expected = "same horizon")]
    fn mismatched_traces_rejected() {
        let _ = Vm::new(
            VmId::new(0),
            MemClass::Low,
            TimeSeries::constant(10, 1.0),
            TimeSeries::constant(9, 1.0),
        );
    }
}
