use std::f64::consts::TAU;

use ntc_trace::{SampleGrid, TimeSeries};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Fleet, MemClass, Vm, VmId};

/// Seeded synthesizer of Google-cluster-like utilization traces.
///
/// Each VM's CPU trace is composed of:
///
/// * a **daily sinusoidal profile** shared by its *correlation group*
///   (VMs of the same service peak together — the structure COAT and
///   EPACT exploit),
/// * a per-VM **AR(1) noise** process,
/// * rare **abrupt level shifts** (deployment/failover events) that defeat
///   the predictor and produce the violations of Fig. 4,
/// * clamping to the physical range (one core of the 16-core server).
///
/// Memory traces follow the VM's [`MemClass`] mean with gentle daily
/// modulation — memory footprints move far less than CPU load.
///
/// # Examples
///
/// ```
/// use ntc_workload::ClusterTraceGenerator;
///
/// let fleet = ClusterTraceGenerator::google_like(100, 7).generate();
/// assert_eq!(fleet.len(), 100);
/// assert_eq!(fleet.grid().len(), 2 * 2016); // training week + evaluation week
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterTraceGenerator {
    num_vms: usize,
    weeks: usize,
    seed: u64,
    num_groups: usize,
    cores_per_server: usize,
    vm_mem_gb: f64,
    server_mem_gb: f64,
    shift_probability_per_day: f64,
}

impl ClusterTraceGenerator {
    /// The paper's setting: `num_vms` VMs (600 in the evaluation), two
    /// weeks of 5-minute samples (the first week trains the ARIMA
    /// predictor, the second is evaluated), 16-core servers with 16 GB,
    /// 1 GB containers.
    pub fn google_like(num_vms: usize, seed: u64) -> Self {
        Self {
            num_vms,
            weeks: 2,
            seed,
            num_groups: 12,
            cores_per_server: 16,
            vm_mem_gb: 1.0,
            server_mem_gb: 16.0,
            shift_probability_per_day: 0.08,
        }
    }

    /// Overrides the number of weeks generated.
    ///
    /// # Panics
    ///
    /// Panics if `weeks == 0`.
    pub fn with_weeks(mut self, weeks: usize) -> Self {
        assert!(weeks > 0, "horizon must cover at least one week");
        self.weeks = weeks;
        self
    }

    /// Overrides the number of correlation groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0`.
    pub fn with_groups(mut self, groups: usize) -> Self {
        assert!(groups > 0, "need at least one correlation group");
        self.num_groups = groups;
        self
    }

    /// Overrides the abrupt-shift probability per VM-day (0 disables
    /// shifts, making traces near-perfectly predictable).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_shift_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.shift_probability_per_day = p;
        self
    }

    /// Generates the fleet.
    pub fn generate(&self) -> Fleet {
        let grid = SampleGrid::new(self.weeks * 2016, ntc_units::Seconds::from_minutes(5.0), 12);
        let per_day = grid.samples_per_day();
        let n = grid.len();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Per-group daily profiles: phase, amplitude and a second
        // harmonic; all VMs in a group share them.
        let groups: Vec<(f64, f64, f64, f64)> = (0..self.num_groups)
            .map(|_| {
                (
                    rng.gen_range(0.0..1.0),   // phase (fraction of a day)
                    rng.gen_range(0.25..0.45), // fundamental amplitude
                    rng.gen_range(0.05..0.15), // second-harmonic amplitude
                    rng.gen_range(0.35..0.65), // base level
                )
            })
            .collect();

        let max_cpu = 100.0 / self.cores_per_server as f64;
        let mem_scale = self.vm_mem_gb / self.server_mem_gb;

        let vms = (0..self.num_vms)
            .map(|i| {
                let group = i % self.num_groups;
                let (phase, amp1, amp2, base) = groups[group];
                let class = match i % 3 {
                    0 => MemClass::Low,
                    1 => MemClass::Mid,
                    _ => MemClass::High,
                };

                // Per-VM variations around the group profile.
                let vm_phase = phase + rng.gen_range(-0.03..0.03);
                let vm_base = (base + rng.gen_range(-0.08..0.08)).clamp(0.15, 0.85);
                let ar_coeff = rng.gen_range(0.55..0.85);
                let noise_sigma = rng.gen_range(0.015..0.05);

                let mut cpu = Vec::with_capacity(n);
                let mut mem = Vec::with_capacity(n);
                let mut ar = 0.0f64;
                let mut shift = 0.0f64;
                for t in 0..n {
                    let day_pos = (t % per_day) as f64 / per_day as f64;
                    let diurnal = amp1 * (TAU * (day_pos - vm_phase)).sin()
                        + amp2 * (2.0 * TAU * (day_pos - vm_phase)).sin();
                    ar = ar_coeff * ar + rng.gen_range(-1.0..1.0) * noise_sigma;
                    // Abrupt level shifts arrive ~shift_probability per day
                    // and decay over several hours.
                    if rng.gen::<f64>() < self.shift_probability_per_day / per_day as f64 {
                        shift += rng.gen_range(-0.35..0.35);
                    }
                    shift *= 0.999;

                    let level = (vm_base + diurnal + ar + shift).clamp(0.02, 1.0);
                    cpu.push(level * max_cpu);

                    // Memory follows the class mean with a small diurnal
                    // swing and a fraction of the CPU shift.
                    let mem_util_of_vm = (class.mean_util_of_vm() / 100.0
                        * (1.0 + 0.12 * (TAU * (day_pos - vm_phase)).sin() + 0.3 * shift))
                        .clamp(0.02, 0.60);
                    mem.push(mem_util_of_vm * 100.0 * mem_scale);
                }

                Vm::new(
                    VmId::new(i),
                    class,
                    TimeSeries::from_values(cpu),
                    TimeSeries::from_values(mem),
                )
            })
            .collect();

        Fleet::new(grid, vms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_trace::stats;

    fn small_fleet() -> Fleet {
        ClusterTraceGenerator::google_like(48, 1234).generate()
    }

    #[test]
    fn deterministic_under_seed() {
        let a = ClusterTraceGenerator::google_like(10, 9).generate();
        let b = ClusterTraceGenerator::google_like(10, 9).generate();
        assert_eq!(a.vms()[3].cpu, b.vms()[3].cpu);
        let c = ClusterTraceGenerator::google_like(10, 10).generate();
        assert_ne!(a.vms()[3].cpu, c.vms()[3].cpu);
    }

    #[test]
    fn traces_respect_physical_bounds() {
        let fleet = small_fleet();
        for vm in fleet.vms() {
            assert!(vm.cpu.peak() <= 6.25 + 1e-9, "one core of 16 max");
            assert!(vm.cpu.floor() >= 0.0);
            // 1 GB VM on a 16 GB server: at most 60% of 1/16th.
            assert!(vm.mem.peak() <= 60.0 / 16.0 + 1e-9);
            assert!(vm.mem.floor() > 0.0);
        }
    }

    #[test]
    fn same_group_vms_correlate_more() {
        let fleet = ClusterTraceGenerator::google_like(48, 99)
            .with_shift_probability(0.0)
            .generate();
        // VMs 0 and 12 share group 0; VMs 0 and 6 are in different groups.
        let same =
            stats::pearson_correlation(fleet.vms()[0].cpu.values(), fleet.vms()[12].cpu.values());
        let cross =
            stats::pearson_correlation(fleet.vms()[0].cpu.values(), fleet.vms()[6].cpu.values());
        assert!(
            same > cross,
            "group-mates must be more correlated: same {same:.3} vs cross {cross:.3}"
        );
        assert!(same > 0.5, "group-mates share the daily profile");
    }

    #[test]
    fn daily_periodicity_is_strong() {
        let fleet = ClusterTraceGenerator::google_like(6, 5)
            .with_shift_probability(0.0)
            .generate();
        let vm = &fleet.vms()[0];
        let day = fleet.grid().samples_per_day();
        // Correlate day 1 against day 2 of the same VM.
        let d1 = vm.cpu.window(0..day);
        let d2 = vm.cpu.window(day..2 * day);
        let r = d1.correlation(&d2);
        assert!(r > 0.6, "consecutive days must look alike, r = {r:.3}");
    }

    #[test]
    fn classes_are_balanced_and_ordered() {
        let fleet = small_fleet();
        let mean_mem = |class: MemClass| -> f64 {
            let vms: Vec<_> = fleet.vms().iter().filter(|v| v.class == class).collect();
            vms.iter().map(|v| v.mem.mean()).sum::<f64>() / vms.len() as f64
        };
        let low = mean_mem(MemClass::Low);
        let mid = mean_mem(MemClass::Mid);
        let high = mean_mem(MemClass::High);
        assert!(low < mid && mid < high);
        // Low ~ 7% of 1/16 server = 0.44; high ~ 43%/16 = 2.7.
        assert!((0.2..0.8).contains(&low), "low-mem mean {low:.2}");
        assert!((1.8..3.6).contains(&high), "high-mem mean {high:.2}");
    }

    #[test]
    fn shifts_add_unpredictability() {
        let calm = ClusterTraceGenerator::google_like(12, 3)
            .with_shift_probability(0.0)
            .generate();
        let wild = ClusterTraceGenerator::google_like(12, 3)
            .with_shift_probability(0.9)
            .generate();
        // Compare week-over-week self-similarity: shifts reduce it.
        let self_sim = |fleet: &Fleet| -> f64 {
            let vm = &fleet.vms()[0];
            let w = 2016;
            vm.cpu.window(0..w).correlation(&vm.cpu.window(w..2 * w))
        };
        assert!(self_sim(&calm) > self_sim(&wild));
    }
}
