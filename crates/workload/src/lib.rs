//! Cloud workload substrate: the VM fleet and its utilization traces.
//!
//! The paper drives its data-center evaluation with one week of Google
//! Cluster traces covering 600+ VMs sampled every 5 minutes, running
//! synthetically generated banking batch jobs. Since the actual traces
//! (and the banking jobs) are not redistributable, this crate synthesizes
//! traces with the statistical structure every downstream component
//! relies on:
//!
//! * **daily periodicity** — what the ARIMA predictor exploits;
//! * **cross-VM CPU-load correlation** — what EPACT and COAT exploit
//!   (correlated VMs peak together and must not be co-located);
//! * **the paper's memory classes** — low-mem (70 MB / 7%), mid-mem
//!   (255 MB / 25%) and high-mem (435 MB / 43%) footprints on 1 GB VMs;
//! * **abrupt load changes** — the misprediction source behind the SLA
//!   violations of Fig. 4.
//!
//! # Examples
//!
//! ```
//! use ntc_workload::{ClusterTraceGenerator, MemClass};
//!
//! let fleet = ClusterTraceGenerator::google_like(60, 42).generate();
//! assert_eq!(fleet.len(), 60);
//! let vm = &fleet.vms()[0];
//! assert!(vm.cpu.peak() <= 100.0 / 16.0 + 1e-9); // one core of a 16-core server
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod csv;
mod fleet;
pub mod stats;
mod synth;
mod vm;

pub use fleet::Fleet;
pub use stats::FleetStats;
pub use synth::ClusterTraceGenerator;
pub use vm::{MemClass, Vm, VmId};
