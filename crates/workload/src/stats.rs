//! Descriptive statistics of a generated fleet — used to verify that
//! the synthetic traces carry the structure the paper's Google Cluster
//! sample had (utilization ranges, class balance, correlation mass).

use ntc_trace::stats;
use serde::{Deserialize, Serialize};

use crate::{Fleet, MemClass};

/// Summary statistics of one fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Number of VMs.
    pub num_vms: usize,
    /// Number of samples per VM.
    pub horizon: usize,
    /// Mean of all CPU samples (percent of server capacity).
    pub mean_cpu: f64,
    /// Peak of the aggregate CPU demand.
    pub peak_aggregate_cpu: f64,
    /// Mean of all memory samples.
    pub mean_mem: f64,
    /// Peak of the aggregate memory demand.
    pub peak_aggregate_mem: f64,
    /// VMs per memory class, in `[low, mid, high]` order.
    pub class_counts: [usize; 3],
    /// Mean pairwise CPU correlation over a sample of VM pairs.
    pub mean_pairwise_correlation: f64,
}

impl FleetStats {
    /// Computes the statistics for `fleet`.
    ///
    /// Pairwise correlation is estimated over a deterministic sample of
    /// at most 512 pairs (the full matrix is quadratic in fleet size).
    pub fn compute(fleet: &Fleet) -> Self {
        let vms = fleet.vms();
        let n = vms.len();
        let horizon = fleet.grid().len();

        let mut cpu_sum = 0.0;
        let mut mem_sum = 0.0;
        let mut class_counts = [0usize; 3];
        for vm in vms {
            cpu_sum += vm.cpu.mean();
            mem_sum += vm.mem.mean();
            let idx = match vm.class {
                MemClass::Low => 0,
                MemClass::Mid => 1,
                MemClass::High => 2,
            };
            class_counts[idx] += 1;
        }

        // Deterministic pair sample: stride through the pair space.
        let mut corr_sum = 0.0;
        let mut pairs = 0usize;
        let max_pairs = 512usize;
        let stride = (n * (n.saturating_sub(1)) / 2 / max_pairs).max(1);
        let mut k = 0usize;
        'outer: for i in 0..n {
            for j in (i + 1)..n {
                if k.is_multiple_of(stride) {
                    corr_sum +=
                        stats::pearson_correlation(vms[i].cpu.values(), vms[j].cpu.values());
                    pairs += 1;
                    if pairs >= max_pairs {
                        break 'outer;
                    }
                }
                k += 1;
            }
        }

        Self {
            num_vms: n,
            horizon,
            mean_cpu: cpu_sum / n as f64,
            peak_aggregate_cpu: fleet.aggregate_cpu().peak(),
            mean_mem: mem_sum / n as f64,
            peak_aggregate_mem: fleet.aggregate_mem().peak(),
            class_counts,
            mean_pairwise_correlation: if pairs == 0 {
                0.0
            } else {
                corr_sum / pairs as f64
            },
        }
    }

    /// The data-center CPU utilization rate this fleet would impose on
    /// `num_servers` servers at Fmax, as a percentage.
    pub fn dc_utilization_pct(&self, num_servers: usize) -> f64 {
        assert!(num_servers > 0, "need at least one server");
        self.peak_aggregate_cpu / num_servers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterTraceGenerator;

    #[test]
    fn stats_are_plausible() {
        let fleet = ClusterTraceGenerator::google_like(60, 42).generate();
        let s = FleetStats::compute(&fleet);
        assert_eq!(s.num_vms, 60);
        assert_eq!(s.horizon, 2 * 2016);
        assert!(s.mean_cpu > 0.5 && s.mean_cpu < 6.25);
        assert!(s.peak_aggregate_cpu > s.mean_cpu * 60.0 * 0.5);
        assert_eq!(s.class_counts.iter().sum::<usize>(), 60);
        // generator assigns classes round-robin
        assert_eq!(s.class_counts, [20, 20, 20]);
    }

    #[test]
    fn correlated_groups_show_in_the_mean() {
        let corr = FleetStats::compute(
            &ClusterTraceGenerator::google_like(48, 18)
                .with_shift_probability(0.0)
                .generate(),
        )
        .mean_pairwise_correlation;
        // 12 groups of 4 VMs sharing daily profiles: the sampled mean
        // pairwise correlation is clearly positive.
        assert!(
            corr > 0.1,
            "expected positive correlation mass, got {corr:.3}"
        );
    }

    #[test]
    fn dc_utilization() {
        let fleet = ClusterTraceGenerator::google_like(60, 42).generate();
        let s = FleetStats::compute(&fleet);
        let u600 = s.dc_utilization_pct(600);
        let u60 = s.dc_utilization_pct(60);
        assert!((u60 - 10.0 * u600).abs() < 1e-9);
    }
}
