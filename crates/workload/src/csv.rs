//! CSV import/export of VM utilization traces.
//!
//! The generator in [`crate::ClusterTraceGenerator`] substitutes for the
//! Google Cluster sample the paper used; sites that *do* hold real
//! traces can round-trip them through this module (long format:
//! `vm,class,sample,cpu_pct,mem_pct`, one row per VM-sample).

use std::error::Error;
use std::fmt;

use ntc_trace::{SampleGrid, TimeSeries};
use ntc_units::Seconds;

use crate::{Fleet, MemClass, Vm, VmId};

/// Error parsing a fleet CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFleetError {
    line: usize,
    message: String,
}

impl ParseFleetError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending row.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseFleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fleet csv line {}: {}", self.line, self.message)
    }
}

impl Error for ParseFleetError {}

/// Serializes a fleet to long-format CSV.
///
/// # Examples
///
/// ```
/// use ntc_workload::{csv, ClusterTraceGenerator};
///
/// let fleet = ClusterTraceGenerator::google_like(2, 1).generate();
/// let text = csv::to_csv(&fleet);
/// assert!(text.starts_with("vm,class,sample,cpu_pct,mem_pct"));
/// ```
pub fn to_csv(fleet: &Fleet) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("vm,class,sample,cpu_pct,mem_pct\n");
    for vm in fleet.vms() {
        for t in 0..vm.horizon() {
            let _ = writeln!(
                out,
                "{},{},{},{:.4},{:.4}",
                vm.id.index(),
                vm.class.kernel_name(),
                t,
                vm.cpu.at(t),
                vm.mem.at(t)
            );
        }
    }
    out
}

fn parse_class(s: &str, line: usize) -> Result<MemClass, ParseFleetError> {
    match s {
        "low-mem" => Ok(MemClass::Low),
        "mid-mem" => Ok(MemClass::Mid),
        "high-mem" => Ok(MemClass::High),
        other => Err(ParseFleetError::new(
            line,
            format!("unknown class {other:?} (expected low-mem/mid-mem/high-mem)"),
        )),
    }
}

/// Parses a long-format fleet CSV back into a [`Fleet`] on the given
/// sampling layout.
///
/// Rows must be grouped by VM and ordered by sample within each VM; the
/// sample count per VM must equal `samples`.
///
/// # Errors
///
/// Returns [`ParseFleetError`] on malformed rows, inconsistent sample
/// counts, or non-finite values.
pub fn from_csv(
    text: &str,
    samples: usize,
    sample_period: Seconds,
    samples_per_slot: usize,
) -> Result<Fleet, ParseFleetError> {
    let grid = SampleGrid::new(samples, sample_period, samples_per_slot);
    let mut vms: Vec<Vm> = Vec::new();
    let mut cur_id: Option<(usize, MemClass)> = None;
    let mut cpu: Vec<f64> = Vec::new();
    let mut mem: Vec<f64> = Vec::new();

    let flush = |id: usize,
                 class: MemClass,
                 cpu: &mut Vec<f64>,
                 mem: &mut Vec<f64>,
                 line: usize|
     -> Result<Vm, ParseFleetError> {
        if cpu.len() != samples {
            return Err(ParseFleetError::new(
                line,
                format!("vm {id} has {} samples, expected {samples}", cpu.len()),
            ));
        }
        Ok(Vm::new(
            VmId::new(id),
            class,
            TimeSeries::from_values(std::mem::take(cpu)),
            TimeSeries::from_values(std::mem::take(mem)),
        ))
    };

    for (i, row) in text.lines().enumerate() {
        let lineno = i + 1;
        if i == 0 {
            if !row.starts_with("vm,class,sample") {
                return Err(ParseFleetError::new(lineno, "missing header"));
            }
            continue;
        }
        if row.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = row.split(',').collect();
        if fields.len() != 5 {
            return Err(ParseFleetError::new(
                lineno,
                format!("expected 5 fields, found {}", fields.len()),
            ));
        }
        let id: usize = fields[0]
            .parse()
            .map_err(|e| ParseFleetError::new(lineno, format!("vm id: {e}")))?;
        let class = parse_class(fields[1], lineno)?;
        let cpu_v: f64 = fields[3]
            .parse()
            .map_err(|e| ParseFleetError::new(lineno, format!("cpu: {e}")))?;
        let mem_v: f64 = fields[4]
            .parse()
            .map_err(|e| ParseFleetError::new(lineno, format!("mem: {e}")))?;
        if !cpu_v.is_finite() || !mem_v.is_finite() || cpu_v < 0.0 || mem_v < 0.0 {
            return Err(ParseFleetError::new(
                lineno,
                "utilizations must be finite and non-negative",
            ));
        }

        match cur_id {
            Some((prev, prev_class)) if prev != id => {
                vms.push(flush(prev, prev_class, &mut cpu, &mut mem, lineno)?);
                cur_id = Some((id, class));
            }
            None => cur_id = Some((id, class)),
            _ => {}
        }
        cpu.push(cpu_v);
        mem.push(mem_v);
    }
    if let Some((id, class)) = cur_id {
        let last = text.lines().count();
        vms.push(flush(id, class, &mut cpu, &mut mem, last)?);
    }
    if vms.is_empty() {
        return Err(ParseFleetError::new(1, "no VM rows"));
    }
    Ok(Fleet::new(grid, vms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterTraceGenerator;

    #[test]
    fn round_trip_preserves_the_fleet() {
        let fleet = ClusterTraceGenerator::google_like(3, 5).generate();
        let text = to_csv(&fleet);
        let back = from_csv(
            &text,
            fleet.grid().len(),
            fleet.grid().sample_period(),
            fleet.grid().samples_per_slot(),
        )
        .expect("round trip parses");
        assert_eq!(back.len(), fleet.len());
        for (a, b) in fleet.vms().iter().zip(back.vms()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.class, b.class);
            // 4-decimal CSV rounding
            for t in 0..a.horizon() {
                assert!((a.cpu.at(t) - b.cpu.at(t)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn missing_header_rejected() {
        let err = from_csv("nope\n", 12, Seconds::from_minutes(5.0), 12).unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn malformed_row_is_located() {
        let text = "vm,class,sample,cpu_pct,mem_pct\n0,low-mem,0,1.0\n";
        let err = from_csv(text, 1, Seconds::from_minutes(5.0), 1).unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn unknown_class_rejected() {
        let text = "vm,class,sample,cpu_pct,mem_pct\n0,huge-mem,0,1.0,1.0\n";
        let err = from_csv(text, 1, Seconds::from_minutes(5.0), 1).unwrap_err();
        assert!(err.to_string().contains("unknown class"));
    }

    #[test]
    fn short_vm_rejected() {
        let text = "vm,class,sample,cpu_pct,mem_pct\n0,low-mem,0,1.0,1.0\n";
        let err = from_csv(text, 2, Seconds::from_minutes(5.0), 2).unwrap_err();
        assert!(err.to_string().contains("expected 2"));
    }

    #[test]
    fn negative_values_rejected() {
        let text = "vm,class,sample,cpu_pct,mem_pct\n0,low-mem,0,-1.0,1.0\n";
        let err = from_csv(text, 1, Seconds::from_minutes(5.0), 1).unwrap_err();
        assert!(err.to_string().contains("non-negative"));
    }
}
