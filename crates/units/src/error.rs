use std::error::Error;
use std::fmt;

/// Error returned when a unit value is constructed outside its valid range.
///
/// # Examples
///
/// ```
/// use ntc_units::Percent;
///
/// let err = Percent::try_new(120.0).unwrap_err();
/// assert!(err.to_string().contains("percent"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UnitRangeError {
    quantity: &'static str,
    value: f64,
    min: f64,
    max: f64,
}

impl UnitRangeError {
    pub(crate) fn new(quantity: &'static str, value: f64, min: f64, max: f64) -> Self {
        Self {
            quantity,
            value,
            min,
            max,
        }
    }

    /// The name of the quantity that was out of range (e.g. `"percent"`).
    pub fn quantity(&self) -> &'static str {
        self.quantity
    }

    /// The offending value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The inclusive lower bound of the valid range.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// The inclusive upper bound of the valid range.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl fmt::Display for UnitRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} value {} outside valid range [{}, {}]",
            self.quantity, self.value, self.min, self.max
        )
    }
}

impl Error for UnitRangeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_range() {
        let e = UnitRangeError::new("voltage", -1.0, 0.0, 2.0);
        let s = e.to_string();
        assert!(s.contains("voltage"));
        assert!(s.contains("-1"));
        assert!(s.contains("[0, 2]"));
    }

    #[test]
    fn accessors_round_trip() {
        let e = UnitRangeError::new("percent", 120.0, 0.0, 100.0);
        assert_eq!(e.quantity(), "percent");
        assert_eq!(e.value(), 120.0);
        assert_eq!(e.min(), 0.0);
        assert_eq!(e.max(), 100.0);
    }
}
