use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::{Power, Seconds};

/// Energy in joules.
///
/// The data-center experiments report per-slot energy in megajoules
/// (Fig. 6 of the paper); [`Energy::as_megajoules`] matches those axes.
///
/// # Examples
///
/// ```
/// use ntc_units::{Energy, Seconds};
///
/// let e = Energy::from_megajoules(17.5);
/// let avg = e / Seconds::new(3600.0);
/// assert!((avg.as_kilowatts() - 4.861).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero joules.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from joules.
    ///
    /// # Panics
    ///
    /// Panics if `j` is negative or not finite.
    pub fn from_joules(j: f64) -> Self {
        assert!(
            j.is_finite() && j >= 0.0,
            "energy must be finite and non-negative, got {j} J"
        );
        Self(j)
    }

    /// Creates an energy from picojoules (per-access cache/DRAM energies).
    ///
    /// # Panics
    ///
    /// Panics if `pj` is negative or not finite.
    pub fn from_picojoules(pj: f64) -> Self {
        Self::from_joules(pj * 1.0e-12)
    }

    /// Creates an energy from megajoules.
    ///
    /// # Panics
    ///
    /// Panics if `mj` is negative or not finite.
    pub fn from_megajoules(mj: f64) -> Self {
        Self::from_joules(mj * 1.0e6)
    }

    /// The value in joules.
    pub fn as_joules(self) -> f64 {
        self.0
    }

    /// The value in picojoules.
    pub fn as_picojoules(self) -> f64 {
        self.0 * 1.0e12
    }

    /// The value in megajoules.
    pub fn as_megajoules(self) -> f64 {
        self.0 / 1.0e6
    }

    /// The value in kilowatt-hours.
    pub fn as_kwh(self) -> f64 {
        self.0 / 3.6e6
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0e6 {
            write!(f, "{:.3} MJ", self.as_megajoules())
        } else if self.0 >= 1.0 {
            write!(f, "{:.3} J", self.0)
        } else {
            write!(f, "{:.1} pJ", self.as_picojoules())
        }
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Self) -> Self {
        Self((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Self {
        Self::from_joules(self.0 * rhs)
    }
}

impl Div<Seconds> for Energy {
    type Output = Power;
    fn div(self, rhs: Seconds) -> Power {
        Power::from_watts(self.0 / rhs.as_secs())
    }
}

impl Div<Energy> for Energy {
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e = Energy::from_picojoules(800.0);
        assert!((e.as_joules() - 8.0e-10).abs() < 1e-24);
        assert!((Energy::from_megajoules(1.0).as_kwh() - 0.2777).abs() < 1e-3);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Energy::from_joules(600.0) / Seconds::new(60.0);
        assert_eq!(p.as_watts(), 10.0);
    }

    #[test]
    fn ratio_of_energies_is_dimensionless() {
        let saving = 1.0 - Energy::from_megajoules(11.0) / Energy::from_megajoules(20.0);
        assert!((saving - 0.45).abs() < 1e-12);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Energy::from_megajoules(17.5).to_string(), "17.500 MJ");
        assert_eq!(Energy::from_joules(2.0).to_string(), "2.000 J");
        assert_eq!(Energy::from_picojoules(800.0).to_string(), "800.0 pJ");
    }

    #[test]
    fn sum_accumulates() {
        let total: Energy = (0..4).map(|_| Energy::from_joules(2.5)).sum();
        assert_eq!(total.as_joules(), 10.0);
    }
}
