use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::UnitRangeError;

/// A utilization percentage.
///
/// CPU and memory utilizations in the paper are expressed as percentages of
/// one server's capacity. A *single* sample is bounded by 0–100%, but
/// aggregates (the sum of co-located VM demands, or a whole data center's
/// requirement) may exceed 100%, so `Percent` itself only forbids negative
/// and non-finite values; use [`Percent::try_new`] when the 0–100 bound must
/// hold and [`Percent::is_saturated`] to detect overcommit.
///
/// # Examples
///
/// ```
/// use ntc_units::Percent;
///
/// let a = Percent::new(35.0);
/// let b = Percent::new(80.0);
/// assert!((a + b).is_saturated());       // 115% — an overutilized server
/// assert!(Percent::try_new(115.0).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Percent(f64);

impl Percent {
    /// Zero percent.
    pub const ZERO: Percent = Percent(0.0);
    /// One hundred percent — a fully used resource.
    pub const FULL: Percent = Percent(100.0);

    /// Creates a percentage. Values above 100 are allowed (aggregates).
    ///
    /// # Panics
    ///
    /// Panics if `p` is negative or not finite.
    pub fn new(p: f64) -> Self {
        assert!(
            p.is_finite() && p >= 0.0,
            "percent must be finite and non-negative, got {p}"
        );
        Self(p)
    }

    /// Creates a percentage validated to lie in `[0, 100]`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitRangeError`] if `p` is outside `[0, 100]` or not
    /// finite.
    pub fn try_new(p: f64) -> Result<Self, UnitRangeError> {
        if !p.is_finite() || !(0.0..=100.0).contains(&p) {
            return Err(UnitRangeError::new("percent", p, 0.0, 100.0));
        }
        Ok(Self(p))
    }

    /// Creates a percentage from a fraction in `[0, 1]` scale (0.35 → 35%).
    ///
    /// # Panics
    ///
    /// Panics if `frac` is negative or not finite.
    pub fn from_fraction(frac: f64) -> Self {
        Self::new(frac * 100.0)
    }

    /// The value as a percentage number (35.0 for 35%).
    pub fn value(self) -> f64 {
        self.0
    }

    /// The value as a fraction (0.35 for 35%).
    pub fn as_fraction(self) -> f64 {
        self.0 / 100.0
    }

    /// `true` when the value is at or above 100% (resource saturated or
    /// overcommitted).
    pub fn is_saturated(self) -> bool {
        self.0 >= 100.0
    }

    /// Clamps into `[0, 100]`.
    pub fn clamp_full(self) -> Self {
        Self(self.0.min(100.0))
    }

    /// Returns the smaller of two percentages.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two percentages.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Percent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0)
    }
}

impl Add for Percent {
    type Output = Percent;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Percent {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Percent {
    type Output = Percent;
    fn sub(self, rhs: Self) -> Self {
        Self((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for Percent {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 = (self.0 - rhs.0).max(0.0);
    }
}

impl Mul<f64> for Percent {
    type Output = Percent;
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.0 * rhs)
    }
}

impl Div<Percent> for Percent {
    type Output = f64;
    fn div(self, rhs: Percent) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Percent {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_round_trip() {
        let p = Percent::from_fraction(0.43);
        assert!((p.value() - 43.0).abs() < 1e-12);
        assert!((p.as_fraction() - 0.43).abs() < 1e-12);
    }

    #[test]
    fn aggregates_may_exceed_100() {
        let agg: Percent = vec![Percent::new(60.0); 3].into_iter().sum();
        assert_eq!(agg.value(), 180.0);
        assert!(agg.is_saturated());
        assert_eq!(agg.clamp_full(), Percent::FULL);
    }

    #[test]
    fn try_new_validates() {
        assert!(Percent::try_new(100.0).is_ok());
        assert!(Percent::try_new(100.01).is_err());
        assert!(Percent::try_new(-0.01).is_err());
        assert!(Percent::try_new(f64::NAN).is_err());
    }

    #[test]
    fn saturating_sub() {
        let mut p = Percent::new(10.0);
        p -= Percent::new(25.0);
        assert_eq!(p, Percent::ZERO);
    }

    #[test]
    fn display_format() {
        assert_eq!(Percent::new(43.25).to_string(), "43.2%");
    }

    #[test]
    fn ratio() {
        assert!((Percent::new(50.0) / Percent::FULL - 0.5).abs() < 1e-12);
    }
}
