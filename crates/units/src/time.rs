use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::Frequency;

/// A duration in seconds.
///
/// # Examples
///
/// ```
/// use ntc_units::Seconds;
///
/// let sample = Seconds::from_minutes(5.0);
/// assert_eq!(sample.as_secs(), 300.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero seconds.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn new(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative, got {s} s"
        );
        Self(s)
    }

    /// Creates a duration from minutes.
    ///
    /// # Panics
    ///
    /// Panics if `m` is negative or not finite.
    pub fn from_minutes(m: f64) -> Self {
        Self::new(m * 60.0)
    }

    /// Creates a duration from hours.
    ///
    /// # Panics
    ///
    /// Panics if `h` is negative or not finite.
    pub fn from_hours(h: f64) -> Self {
        Self::new(h * 3600.0)
    }

    /// The value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The value in minutes.
    pub fn as_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// The value in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} s", self.0)
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Self) -> Self {
        Self((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.0 * rhs)
    }
}

impl Div<Seconds> for Seconds {
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

/// A count of clock cycles.
///
/// Dividing by a [`Frequency`] yields wall-clock [`Seconds`], which is the
/// core identity of the interval simulator: compute cycles shrink with
/// rising frequency while memory nanoseconds do not.
///
/// # Examples
///
/// ```
/// use ntc_units::{Cycles, Frequency};
///
/// let t = Cycles::new(2_000_000) / Frequency::from_ghz(2.0);
/// assert!((t.as_secs() - 0.001).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub fn new(c: u64) -> Self {
        Self(c)
    }

    /// Creates a cycle count from a floating-point estimate, rounding to
    /// the nearest whole cycle.
    ///
    /// # Panics
    ///
    /// Panics if `c` is negative or not finite.
    pub fn from_f64(c: f64) -> Self {
        assert!(
            c.is_finite() && c >= 0.0,
            "cycle count must be finite and non-negative, got {c}"
        );
        Self(c.round() as u64)
    }

    /// The raw count.
    pub fn count(self) -> u64 {
        self.0
    }

    /// The count as `f64` for rate arithmetic.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl Div<Frequency> for Cycles {
    type Output = Seconds;
    fn div(self, rhs: Frequency) -> Seconds {
        Seconds::new(self.0 as f64 / rhs.as_hz())
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_conversions() {
        assert_eq!(Seconds::from_minutes(5.0).as_secs(), 300.0);
        assert_eq!(Seconds::from_hours(1.0).as_minutes(), 60.0);
        assert!((Seconds::new(1800.0).as_hours() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cycles_over_frequency() {
        let t = Cycles::new(3_100_000_000) / Frequency::from_ghz(3.1);
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_saturating_sub() {
        assert_eq!(Cycles::new(5) - Cycles::new(9), Cycles::ZERO);
    }

    #[test]
    fn cycles_from_f64_rounds() {
        assert_eq!(Cycles::from_f64(10.6).count(), 11);
        assert_eq!(Cycles::from_f64(10.4).count(), 10);
    }

    #[test]
    fn duration_ratio() {
        let degradation = Seconds::new(5.035) / Seconds::new(1.564);
        assert!(degradation > 3.0);
    }

    #[test]
    fn sums() {
        let s: Seconds = (0..3).map(|_| Seconds::new(1.5)).sum();
        assert_eq!(s.as_secs(), 4.5);
        let c: Cycles = (0..3).map(|_| Cycles::new(7)).sum();
        assert_eq!(c.count(), 21);
    }
}
