use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A clock frequency, stored internally in megahertz.
///
/// Frequencies are the primary control knob of the paper: DVFS levels range
/// from 100 MHz (deep near-threshold) up to the NTC server's
/// `Fmax = 3.1 GHz`.
///
/// # Examples
///
/// ```
/// use ntc_units::Frequency;
///
/// let fopt = Frequency::from_ghz(1.9);
/// assert!(fopt < Frequency::from_mhz(3100.0));
/// assert_eq!(fopt.as_hz(), 1.9e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Frequency(f64);

impl Frequency {
    /// Zero frequency (a halted clock).
    pub const ZERO: Frequency = Frequency(0.0);

    /// Creates a frequency from megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is negative or not finite.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(
            mhz.is_finite() && mhz >= 0.0,
            "frequency must be finite and non-negative, got {mhz} MHz"
        );
        Self(mhz)
    }

    /// Creates a frequency from gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is negative or not finite.
    pub fn from_ghz(ghz: f64) -> Self {
        Self::from_mhz(ghz * 1000.0)
    }

    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is negative or not finite.
    pub fn from_hz(hz: f64) -> Self {
        Self::from_mhz(hz / 1.0e6)
    }

    /// The value in megahertz.
    pub fn as_mhz(self) -> f64 {
        self.0
    }

    /// The value in gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.0 / 1000.0
    }

    /// The value in hertz.
    pub fn as_hz(self) -> f64 {
        self.0 * 1.0e6
    }

    /// Returns the smaller of two frequencies.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two frequencies.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Clamps this frequency into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
        self.max(lo).min(hi)
    }

    /// The ratio `self / other` as a dimensionless number.
    ///
    /// Used for utilization arithmetic such as
    /// `Capcpu = Fopt / Fmax * 100`.
    pub fn ratio(self, other: Self) -> f64 {
        self.0 / other.0
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000.0 {
            write!(f, "{:.2} GHz", self.as_ghz())
        } else {
            write!(f, "{:.0} MHz", self.0)
        }
    }
}

impl Add for Frequency {
    type Output = Frequency;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for Frequency {
    type Output = Frequency;
    fn sub(self, rhs: Self) -> Self {
        Self((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Frequency {
    type Output = Frequency;
    fn mul(self, rhs: f64) -> Self {
        Self::from_mhz(self.0 * rhs)
    }
}

impl Div<f64> for Frequency {
    type Output = Frequency;
    fn div(self, rhs: f64) -> Self {
        Self::from_mhz(self.0 / rhs)
    }
}

impl Sum for Frequency {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        let f = Frequency::from_ghz(2.4);
        assert_eq!(f.as_mhz(), 2400.0);
        assert_eq!(f.as_hz(), 2.4e9);
        assert_eq!(Frequency::from_hz(2.4e9), f);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Frequency::from_mhz(300.0).to_string(), "300 MHz");
        assert_eq!(Frequency::from_ghz(1.9).to_string(), "1.90 GHz");
    }

    #[test]
    fn min_max_clamp() {
        let lo = Frequency::from_mhz(100.0);
        let hi = Frequency::from_ghz(3.1);
        let f = Frequency::from_ghz(5.0);
        assert_eq!(f.clamp(lo, hi), hi);
        assert_eq!(lo.clamp(lo, hi), lo);
        assert_eq!(lo.min(hi), lo);
        assert_eq!(lo.max(hi), hi);
    }

    #[test]
    fn saturating_subtraction() {
        let a = Frequency::from_mhz(100.0);
        let b = Frequency::from_mhz(300.0);
        assert_eq!(a - b, Frequency::ZERO);
    }

    #[test]
    fn sum_of_frequencies() {
        let total: Frequency = [1000.0, 500.0, 300.0]
            .iter()
            .map(|&m| Frequency::from_mhz(m))
            .sum();
        assert_eq!(total, Frequency::from_mhz(1800.0));
    }

    #[test]
    fn ratio_is_dimensionless() {
        let r = Frequency::from_ghz(1.9).ratio(Frequency::from_ghz(3.1));
        assert!((r - 1.9 / 3.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        let _ = Frequency::from_mhz(-1.0);
    }
}
