use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::{Energy, Seconds};

/// Electrical power in watts.
///
/// # Examples
///
/// ```
/// use ntc_units::{Power, Seconds};
///
/// let server = Power::from_watts(58.7);
/// let slot_energy = server * Seconds::new(3600.0);
/// assert!((slot_energy.as_joules() - 211_320.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Power(f64);

impl Power {
    /// Zero watts.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from watts.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative or not finite.
    pub fn from_watts(w: f64) -> Self {
        assert!(
            w.is_finite() && w >= 0.0,
            "power must be finite and non-negative, got {w} W"
        );
        Self(w)
    }

    /// Creates a power from milliwatts.
    ///
    /// # Panics
    ///
    /// Panics if `mw` is negative or not finite.
    pub fn from_milliwatts(mw: f64) -> Self {
        Self::from_watts(mw / 1000.0)
    }

    /// Creates a power from kilowatts.
    ///
    /// # Panics
    ///
    /// Panics if `kw` is negative or not finite.
    pub fn from_kilowatts(kw: f64) -> Self {
        Self::from_watts(kw * 1000.0)
    }

    /// The value in watts.
    pub fn as_watts(self) -> f64 {
        self.0
    }

    /// The value in milliwatts.
    pub fn as_milliwatts(self) -> f64 {
        self.0 * 1000.0
    }

    /// The value in kilowatts.
    pub fn as_kilowatts(self) -> f64 {
        self.0 / 1000.0
    }

    /// The value in megawatts.
    pub fn as_megawatts(self) -> f64 {
        self.0 / 1.0e6
    }

    /// Returns the smaller of two powers.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two powers.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0e6 {
            write!(f, "{:.3} MW", self.as_megawatts())
        } else if self.0 >= 1000.0 {
            write!(f, "{:.3} kW", self.as_kilowatts())
        } else {
            write!(f, "{:.2} W", self.0)
        }
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Self) -> Self {
        Self((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Self {
        Self::from_watts(self.0 * rhs)
    }
}

impl Div<f64> for Power {
    type Output = Power;
    fn div(self, rhs: f64) -> Self {
        Self::from_watts(self.0 / rhs)
    }
}

impl Mul<Seconds> for Power {
    type Output = Energy;
    fn mul(self, rhs: Seconds) -> Energy {
        Energy::from_joules(self.0 * rhs.as_secs())
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let p = Power::from_kilowatts(11.5);
        assert_eq!(p.as_watts(), 11_500.0);
        assert_eq!(Power::from_milliwatts(15.5).as_watts(), 0.0155);
        assert!((Power::from_watts(2.5e6).as_megawatts() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Power::from_watts(11.84).to_string(), "11.84 W");
        assert_eq!(Power::from_kilowatts(11.5).to_string(), "11.500 kW");
        assert_eq!(Power::from_watts(2.5e6).to_string(), "2.500 MW");
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_watts(100.0) * Seconds::new(300.0);
        assert_eq!(e.as_joules(), 30_000.0);
    }

    #[test]
    fn sum_and_accumulate() {
        let mut total = Power::ZERO;
        total += Power::from_watts(10.0);
        total += Power::from_watts(5.0);
        assert_eq!(total.as_watts(), 15.0);
        let s: Power = vec![Power::from_watts(1.0); 4].into_iter().sum();
        assert_eq!(s.as_watts(), 4.0);
    }

    #[test]
    fn subtraction_saturates() {
        assert_eq!(Power::from_watts(1.0) - Power::from_watts(2.0), Power::ZERO);
    }
}
