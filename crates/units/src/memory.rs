use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An amount of memory, stored internally in bytes.
///
/// Used both for capacities (16 GiB of server DRAM, 16 MiB of LLC) and for
/// per-VM footprints (the paper's 70/255/435 MB workload classes).
///
/// # Examples
///
/// ```
/// use ntc_units::MemBytes;
///
/// let server = MemBytes::from_gib(16);
/// let vm = MemBytes::from_mib(435);
/// assert!(vm < server);
/// assert!((vm.as_fraction_of(server) - 0.02655).abs() < 1e-4);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MemBytes(u64);

impl MemBytes {
    /// Zero bytes.
    pub const ZERO: MemBytes = MemBytes(0);

    /// Creates a size from raw bytes.
    pub fn from_bytes(b: u64) -> Self {
        Self(b)
    }

    /// Creates a size from kibibytes.
    pub fn from_kib(k: u64) -> Self {
        Self(k * 1024)
    }

    /// Creates a size from mebibytes.
    pub fn from_mib(m: u64) -> Self {
        Self(m * 1024 * 1024)
    }

    /// Creates a size from gibibytes.
    pub fn from_gib(g: u64) -> Self {
        Self(g * 1024 * 1024 * 1024)
    }

    /// The value in bytes.
    pub fn as_bytes(self) -> u64 {
        self.0
    }

    /// The value in kibibytes (floating point).
    pub fn as_kib(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// The value in mebibytes (floating point).
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// The value in gibibytes (floating point).
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// `self / whole` as a dimensionless fraction.
    ///
    /// Returns 0.0 when `whole` is zero-sized.
    pub fn as_fraction_of(self, whole: MemBytes) -> f64 {
        if whole.0 == 0 {
            0.0
        } else {
            self.0 as f64 / whole.0 as f64
        }
    }

    /// Returns the smaller of two sizes.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two sizes.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for MemBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 * 1024 {
            write!(f, "{:.2} GiB", self.as_gib())
        } else if self.0 >= 1024 * 1024 {
            write!(f, "{:.1} MiB", self.as_mib())
        } else if self.0 >= 1024 {
            write!(f, "{:.1} KiB", self.as_kib())
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

impl Add for MemBytes {
    type Output = MemBytes;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for MemBytes {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for MemBytes {
    type Output = MemBytes;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for MemBytes {
    type Output = MemBytes;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<MemBytes> for MemBytes {
    type Output = f64;
    fn div(self, rhs: MemBytes) -> f64 {
        self.as_fraction_of(rhs)
    }
}

impl Sum for MemBytes {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let m = MemBytes::from_gib(16);
        assert_eq!(m.as_bytes(), 16 * 1024 * 1024 * 1024);
        assert_eq!(m.as_mib(), 16.0 * 1024.0);
        assert_eq!(MemBytes::from_kib(64).as_bytes(), 65536);
    }

    #[test]
    fn display_units() {
        assert_eq!(MemBytes::from_gib(16).to_string(), "16.00 GiB");
        assert_eq!(MemBytes::from_mib(255).to_string(), "255.0 MiB");
        assert_eq!(MemBytes::from_kib(64).to_string(), "64.0 KiB");
        assert_eq!(MemBytes::from_bytes(128).to_string(), "128 B");
    }

    #[test]
    fn fractions() {
        let llc = MemBytes::from_mib(16);
        let ws = MemBytes::from_mib(4);
        assert!((ws.as_fraction_of(llc) - 0.25).abs() < 1e-12);
        assert_eq!(ws.as_fraction_of(MemBytes::ZERO), 0.0);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(
            MemBytes::from_mib(1) - MemBytes::from_mib(2),
            MemBytes::ZERO
        );
        let sum: MemBytes = (0..3).map(|_| MemBytes::from_mib(70)).sum();
        assert_eq!(sum, MemBytes::from_mib(210));
    }
}
