//! Dimensional newtypes for the `ntc-dc` workspace.
//!
//! Every physical quantity that flows between the power models, the
//! architecture simulator and the allocation policies is wrapped in a
//! newtype so that, e.g., a [`Voltage`] can never be passed where a
//! [`Frequency`] is expected, and so that dimensional arithmetic
//! (`Power * Seconds = Energy`, `Cycles / Frequency = Seconds`, …) is
//! checked by the compiler.
//!
//! # Examples
//!
//! ```
//! use ntc_units::{Frequency, Power, Seconds};
//!
//! let f = Frequency::from_ghz(1.9);
//! assert_eq!(f.as_mhz(), 1900.0);
//!
//! let energy = Power::from_watts(58.0) * Seconds::new(300.0);
//! assert!((energy.as_joules() - 17_400.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod energy;
mod error;
mod frequency;
mod memory;
mod percent;
mod power;
mod time;
mod voltage;

pub use energy::Energy;
pub use error::UnitRangeError;
pub use frequency::Frequency;
pub use memory::MemBytes;
pub use percent::Percent;
pub use power::Power;
pub use time::{Cycles, Seconds};
pub use voltage::Voltage;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_module_dimensional_chain() {
        // 1e9 cycles at 1 GHz take 1 second; at 10 W that is 10 J.
        let t = Cycles::new(1_000_000_000) / Frequency::from_ghz(1.0);
        assert!((t.as_secs() - 1.0).abs() < 1e-12);
        let e = Power::from_watts(10.0) * t;
        assert!((e.as_joules() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn all_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Frequency>();
        assert_send_sync::<Voltage>();
        assert_send_sync::<Power>();
        assert_send_sync::<Energy>();
        assert_send_sync::<Percent>();
        assert_send_sync::<MemBytes>();
        assert_send_sync::<Seconds>();
        assert_send_sync::<Cycles>();
        assert_send_sync::<UnitRangeError>();
    }
}
