use std::fmt;
use std::ops::{Add, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A supply voltage in volts.
///
/// In 28nm UTBB FD-SOI the usable range spans from the near-threshold
/// region (≈0.45 V) up to the nominal overdrive point (≈1.3 V); the
/// transistor threshold sits around 0.35–0.40 V.
///
/// # Examples
///
/// ```
/// use ntc_units::Voltage;
///
/// let vdd = Voltage::from_volts(0.62);
/// assert!((vdd.squared() - 0.3844).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Voltage(f64);

impl Voltage {
    /// Zero volts.
    pub const ZERO: Voltage = Voltage(0.0);

    /// Creates a voltage from volts.
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative or not finite.
    pub fn from_volts(v: f64) -> Self {
        assert!(
            v.is_finite() && v >= 0.0,
            "voltage must be finite and non-negative, got {v} V"
        );
        Self(v)
    }

    /// Creates a voltage from millivolts.
    ///
    /// # Panics
    ///
    /// Panics if `mv` is negative or not finite.
    pub fn from_millivolts(mv: f64) -> Self {
        Self::from_volts(mv / 1000.0)
    }

    /// The value in volts.
    pub fn as_volts(self) -> f64 {
        self.0
    }

    /// The value in millivolts.
    pub fn as_millivolts(self) -> f64 {
        self.0 * 1000.0
    }

    /// `V²` — the factor that enters dynamic power `Ceff · V² · f`.
    pub fn squared(self) -> f64 {
        self.0 * self.0
    }

    /// Returns the smaller of two voltages.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two voltages.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Voltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} V", self.0)
    }
}

impl Add for Voltage {
    type Output = Voltage;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for Voltage {
    type Output = Voltage;
    fn sub(self, rhs: Self) -> Self {
        Self((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Voltage {
    type Output = Voltage;
    fn mul(self, rhs: f64) -> Self {
        Self::from_volts(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let v = Voltage::from_millivolts(620.0);
        assert!((v.as_volts() - 0.62).abs() < 1e-12);
        assert!((v.as_millivolts() - 620.0).abs() < 1e-9);
    }

    #[test]
    fn display_format() {
        assert_eq!(Voltage::from_volts(0.62).to_string(), "0.620 V");
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        let a = Voltage::from_volts(0.3);
        let b = Voltage::from_volts(0.5);
        assert_eq!(a - b, Voltage::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(Voltage::from_volts(0.46) < Voltage::from_volts(1.15));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        let _ = Voltage::from_volts(-0.1);
    }
}
