//! Subcommand implementations for the `ntc-dc` binary.

use ntc_datacenter::{
    experiments, export, spec_json, BackendSpec, Engine, ExperimentSpec, FailurePolicy, FleetSpec,
    PredictorSpec, SweepResult,
};
use ntc_power::ServerPowerModel;
use ntc_units::Percent;
use ntc_workload::{ClusterTraceGenerator, FleetStats};

/// Parses `--name value` style options from `args`.
fn opt_usize(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{name} requires a value"))?
            .parse()
            .map_err(|e| format!("{name}: {e}")),
    }
}

/// Parses a `--name a,b,c` comma-separated list, `None` when absent.
fn opt_list<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<Vec<T>>, String>
where
    T::Err: std::fmt::Display,
{
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    let raw = args
        .get(i + 1)
        .ok_or_else(|| format!("{name} requires a comma-separated list"))?;
    raw.split(',')
        .map(|item| {
            let item = item.trim();
            // Catch `1,2,` and `1,,2` here: an empty item would reach
            // `parse` and report an opaque type-specific error.
            if item.is_empty() {
                return Err(format!("{name}: empty entry in list {raw:?}"));
            }
            item.parse::<T>()
                .map_err(|e| format!("{name}: {item:?}: {e}"))
        })
        .collect::<Result<Vec<T>, String>>()
        .map(Some)
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// `ntc-dc table1`
pub fn table1() -> Result<(), String> {
    println!(
        "{:<10} {:>13} {:>15} {:>13} {:>13}",
        "workload", "x86@2.66 (s)", "QoS limit (s)", "Cavium@2 (s)", "NTC@2 (s)"
    );
    for r in experiments::table1() {
        println!(
            "{:<10} {:>13.3} {:>15.3} {:>13.3} {:>13.3}",
            r.workload, r.x86_secs, r.qos_limit_secs, r.cavium_secs, r.ntc_secs
        );
    }
    Ok(())
}

/// `ntc-dc fig1 [--servers N]`
pub fn fig1(args: &[String]) -> Result<(), String> {
    let servers = opt_usize(args, "--servers", 80)?;
    for (label, model) in [
        ("(a) NTC", ServerPowerModel::ntc()),
        ("(b) E5-2620", ServerPowerModel::conventional_e5_2620()),
    ] {
        println!("== Fig. 1{label}, {servers} servers ==");
        let curves = experiments::fig1(model, servers);
        if flag(args, "--csv") {
            print!("{}", export::fig1_csv(&curves));
        } else {
            for c in &curves {
                let cells: Vec<String> = c
                    .points
                    .iter()
                    .map(|(f, p)| match p {
                        Some(p) => format!("{:.1}G:{:.2}kW", f.as_ghz(), p.as_kilowatts()),
                        None => format!("{:.1}G:-", f.as_ghz()),
                    })
                    .collect();
                println!("util {:>3.0}%  {}", c.utilization, cells.join("  "));
            }
        }
    }
    Ok(())
}

/// `ntc-dc fig2`
pub fn fig2() -> Result<(), String> {
    print!("{}", export::fig2_csv(&experiments::fig2()));
    Ok(())
}

/// `ntc-dc fig3`
pub fn fig3() -> Result<(), String> {
    print!("{}", export::fig3_csv(&experiments::fig3()));
    Ok(())
}

/// `ntc-dc week [--vms N] [--csv]`
pub fn week(args: &[String]) -> Result<(), String> {
    let vms = opt_usize(args, "--vms", 120)?;
    let fleet = ClusterTraceGenerator::google_like(vms, 2018).generate();
    let outcomes = experiments::fig4_5_6(&fleet, 600);
    if flag(args, "--csv") {
        print!("{}", export::week_csv(&outcomes));
        return Ok(());
    }
    println!(
        "{:<10} {:>11} {:>11} {:>14} {:>14}",
        "policy", "violations", "migrations", "mean servers", "energy (MJ)"
    );
    for o in &outcomes {
        println!(
            "{:<10} {:>11} {:>11} {:>14.1} {:>14.1}",
            o.policy,
            o.total_violations(),
            o.total_migrations(),
            o.mean_active_servers(),
            o.total_energy().as_megajoules()
        );
    }
    let epact = &outcomes[0];
    for other in &outcomes[1..] {
        println!(
            "EPACT saving vs {}: {:.1}%",
            other.policy,
            epact.energy_saving_vs(other) * 100.0
        );
    }
    Ok(())
}

/// `ntc-dc sweep [--spec FILE] [--vms N] [--seed S] [--seeds A,B,C]
/// [--static-power-scales X,Y] [--backends analytic,archsim]
/// [--threads N] [--arima] [--fail-fast] [--emit-spec] [--json]
/// [--no-cache] [--cache-stats]`
///
/// A sweep with failed cells prints (or, with `--json`, emits) the
/// per-cell failures and returns an error, so the process exits
/// non-zero while the completed cells' results are still reported.
pub fn sweep(args: &[String]) -> Result<(), String> {
    let mut spec = match args.iter().position(|a| a == "--spec") {
        Some(i) => {
            let path = args
                .get(i + 1)
                .ok_or_else(|| "--spec requires a file path".to_string())?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            spec_json::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))?
        }
        None => ExperimentSpec::default_sweep(),
    };
    if let Some(seeds) = opt_list::<u64>(args, "--seeds")? {
        spec = spec.with_seeds(&seeds);
    }
    if let Some(scales) = opt_list::<f64>(args, "--static-power-scales")? {
        spec.static_power_scales = scales;
    }
    if let Some(backends) = opt_list::<BackendSpec>(args, "--backends")? {
        spec.backends = backends;
    }
    // --vms and --seed apply across the whole fleet set.
    if let Some(i) = args.iter().position(|a| a == "--vms") {
        let vms = opt_usize(&args[i..], "--vms", 0)?;
        spec.fleets.iter_mut().for_each(|f| f.num_vms = vms);
    }
    if let Some(i) = args.iter().position(|a| a == "--seed") {
        let seed = opt_usize(&args[i..], "--seed", 0)? as u64;
        spec.fleets.iter_mut().for_each(|f| f.seed = seed);
    }
    spec.max_servers = opt_usize(args, "--max-servers", spec.max_servers)?;
    if flag(args, "--arima") {
        spec.predictor = PredictorSpec::Arima;
    }
    if flag(args, "--fail-fast") {
        spec.failure_policy = FailurePolicy::FailFast;
    }
    if flag(args, "--emit-spec") {
        print!("{}", spec_json::to_json(&spec));
        return Ok(());
    }

    let engine = match args.iter().position(|a| a == "--threads") {
        Some(_) => Engine::with_threads(opt_usize(args, "--threads", 1)?),
        None => Engine::new(),
    }
    .caching(!flag(args, "--no-cache"));
    let sweep = engine.run(&spec).map_err(|e| e.to_string())?;

    if flag(args, "--json") {
        print!("{}", export::sweep_json(&sweep, spec.ablation));
        return fail_summary(&sweep);
    }

    println!(
        "sweep {:?}: {} of {} cells on {} threads, {:.2}s wall",
        spec.name,
        sweep.cells.len(),
        sweep.total_cells(),
        sweep.threads,
        sweep.wall.as_secs_f64()
    );
    println!(
        "{:<24} {:>6} {:>10} {:>14} {:>11} {:>14}",
        "cell", "seed", "wall (ms)", "energy (MJ)", "violations", "mean servers"
    );
    for cell in &sweep.cells {
        println!(
            "{:<24} {:>6} {:>10.0} {:>14.1} {:>11} {:>14.1}",
            cell.cell.label(spec.ablation),
            cell.cell.fleet.seed,
            cell.wall.as_secs_f64() * 1e3,
            cell.outcome.total_energy().as_megajoules(),
            cell.outcome.total_violations(),
            cell.outcome.mean_active_servers()
        );
    }
    if spec.fleets.len() > 1 {
        println!(
            "\nseed-averaged over {} fleets (mean±std):",
            spec.fleets.len()
        );
        println!(
            "{:<24} {:>5} {:>16} {:>14} {:>16}",
            "group", "runs", "energy (MJ)", "violations", "mean servers"
        );
        for g in sweep.seed_groups() {
            println!(
                "{:<24} {:>5} {:>16} {:>14} {:>16}",
                g.label(spec.ablation),
                g.runs,
                g.energy_mj.to_string(),
                g.violations.to_string(),
                g.mean_active_servers.to_string()
            );
        }
    }
    if flag(args, "--cache-stats") {
        let t = sweep.cache_totals();
        println!(
            "cache: plans {} hit / {} miss, forecasts {} hit / {} miss",
            t.plan_hits, t.plan_misses, t.forecast_hits, t.forecast_misses
        );
    }
    let serial: f64 = sweep.cells.iter().map(|c| c.wall.as_secs_f64()).sum();
    if sweep.wall.as_secs_f64() > 0.0 {
        println!(
            "cell time {:.2}s total, speedup {:.2}x",
            serial,
            serial / sweep.wall.as_secs_f64()
        );
    }
    if !sweep.failed().is_empty() {
        println!(
            "\nfailed cells ({} of {}):",
            sweep.failed().len(),
            sweep.total_cells()
        );
        println!(
            "{:<5} {:<24} {:>6} {:>9} {:>8}  error",
            "cell", "label", "seed", "stage", "kind"
        );
        for f in sweep.failed() {
            println!(
                "{:<5} {:<24} {:>6} {:>9} {:>8}  {}",
                f.index,
                f.label,
                f.cell.fleet.seed,
                f.stage().map_or("-", |s| s.label()),
                f.kind_label(),
                f.message()
            );
        }
    }
    fail_summary(&sweep)
}

/// `Ok` for a complete sweep, `Err` (→ non-zero process exit) when any
/// cell failed — after its results and failure table have already been
/// printed.
fn fail_summary(sweep: &SweepResult) -> Result<(), String> {
    if sweep.is_complete() {
        Ok(())
    } else {
        Err(format!(
            "{} of {} cells failed",
            sweep.failed().len(),
            sweep.total_cells()
        ))
    }
}

/// `ntc-dc fig7 [--vms N] [--csv]`
pub fn fig7(args: &[String]) -> Result<(), String> {
    let fleet = FleetSpec {
        num_vms: opt_usize(args, "--vms", 120)?,
        seed: 7,
        weeks: 2,
    };
    let pts = experiments::fig7(fleet, 600, &[5.0, 15.0, 25.0, 35.0, 45.0]);
    if flag(args, "--csv") {
        print!("{}", export::fig7_csv(&pts));
        return Ok(());
    }
    println!(
        "{:<11} {:>13} {:>13} {:>11}",
        "static (W)", "EPACT (MJ)", "COAT (MJ)", "saving (%)"
    );
    for p in &pts {
        println!(
            "{:<11.0} {:>13.1} {:>13.1} {:>11.1}",
            p.static_power.as_watts(),
            p.epact_energy.as_megajoules(),
            p.coat_energy.as_megajoules(),
            p.saving_pct
        );
    }
    Ok(())
}

/// `ntc-dc validate`
pub fn validate() -> Result<(), String> {
    println!("{}", ntc_power::validation::report());
    println!(
        "600-server DC peak at Fmax: {}",
        ntc_power::validation::full_dc_peak()
    );
    let dc = ntc_power::DataCenterPowerModel::new(ServerPowerModel::ntc(), 80);
    let (f, p) = dc.optimal_frequency(Percent::new(20.0));
    println!("optimal frequency at 20% utilization: {f} ({p})");
    Ok(())
}

/// `ntc-dc fleet-stats [--vms N]`
pub fn fleet_stats(args: &[String]) -> Result<(), String> {
    let vms = opt_usize(args, "--vms", 600)?;
    let fleet = ClusterTraceGenerator::google_like(vms, 2018).generate();
    let s = FleetStats::compute(&fleet);
    println!("VMs:                     {}", s.num_vms);
    println!("horizon (samples):       {}", s.horizon);
    println!("mean CPU (% of server):  {:.2}", s.mean_cpu);
    println!("peak aggregate CPU (%):  {:.1}", s.peak_aggregate_cpu);
    println!("mean mem (% of server):  {:.2}", s.mean_mem);
    println!("peak aggregate mem (%):  {:.1}", s.peak_aggregate_mem);
    println!(
        "classes (low/mid/high):  {}/{}/{}",
        s.class_counts[0], s.class_counts[1], s.class_counts[2]
    );
    println!(
        "mean pairwise CPU corr:  {:.3}",
        s.mean_pairwise_correlation
    );
    println!(
        "DC utilization on 600 servers: {:.1}%",
        s.dc_utilization_pct(600)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn opt_parsing() {
        assert_eq!(opt_usize(&s(&["--vms", "42"]), "--vms", 7).unwrap(), 42);
        assert_eq!(opt_usize(&s(&[]), "--vms", 7).unwrap(), 7);
        assert!(opt_usize(&s(&["--vms"]), "--vms", 7).is_err());
        assert!(opt_usize(&s(&["--vms", "x"]), "--vms", 7).is_err());
    }

    #[test]
    fn list_parsing() {
        assert_eq!(
            opt_list::<u64>(&s(&["--seeds", "1,2, 3"]), "--seeds").unwrap(),
            Some(vec![1, 2, 3])
        );
        assert_eq!(
            opt_list::<f64>(
                &s(&["--static-power-scales", "0.5,1.5"]),
                "--static-power-scales"
            )
            .unwrap(),
            Some(vec![0.5, 1.5])
        );
        assert_eq!(
            opt_list::<BackendSpec>(&s(&["--backends", "analytic, archsim"]), "--backends")
                .unwrap(),
            Some(vec![BackendSpec::Analytic, BackendSpec::Archsim])
        );
        assert!(opt_list::<BackendSpec>(&s(&["--backends", "gem5"]), "--backends").is_err());
        assert_eq!(opt_list::<u64>(&s(&[]), "--seeds").unwrap(), None);
        assert!(opt_list::<u64>(&s(&["--seeds"]), "--seeds").is_err());
        assert!(opt_list::<u64>(&s(&["--seeds", "1,x"]), "--seeds").is_err());
    }

    #[test]
    fn list_parsing_rejects_empty_entries_clearly() {
        // `1,2,` and `1,,2` used to flow into parse::<u64> and report
        // an opaque "cannot parse integer from empty string".
        for bad in ["1,2,", "1,,2", ",1,2", " , "] {
            let err = opt_list::<u64>(&s(&["--seeds", bad]), "--seeds").unwrap_err();
            assert!(
                err.contains("empty entry") && err.contains("--seeds"),
                "{bad:?} must report a clear error, got {err:?}"
            );
        }
    }

    #[test]
    fn flags() {
        assert!(flag(&s(&["--csv"]), "--csv"));
        assert!(!flag(&s(&["--vms", "3"]), "--csv"));
    }

    #[test]
    fn cheap_commands_succeed() {
        assert!(table1().is_ok());
        assert!(validate().is_ok());
        assert!(fig2().is_ok());
    }
}
