//! `ntcdc` — regenerate any experiment of the paper from the command
//! line.
//!
//! ```text
//! ntcdc table1                      Table I
//! ntcdc fig1 [--servers N]          Fig. 1(a)+(b)
//! ntcdc fig2                        Fig. 2
//! ntcdc fig3                        Fig. 3
//! ntcdc week [--vms N] [--csv]      Figs. 4-6
//! ntcdc sweep [--spec FILE]         parallel policy/config sweep
//! ntcdc fig7 [--vms N] [--csv]      Fig. 7
//! ntcdc validate                    power-model constants vs the paper
//! ntcdc fleet-stats [--vms N]       generated-workload statistics
//! ```

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "table1" => commands::table1(),
        "fig1" => commands::fig1(rest),
        "fig2" => commands::fig2(),
        "fig3" => commands::fig3(),
        "week" => commands::week(rest),
        "sweep" => commands::sweep(rest),
        "fig7" => commands::fig7(rest),
        "validate" => commands::validate(),
        "fleet-stats" => commands::fleet_stats(rest),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "ntcdc — reproduce 'Energy Proportionality in NTC Servers and Cloud Data \
     Centers: Consolidating or Not?' (DATE 2018)\n\
     \n\
     commands:\n\
     \x20 table1                     Table I: cross-platform execution times\n\
     \x20 fig1   [--servers N]       Fig. 1: worst-case DC power surfaces\n\
     \x20 fig2                       Fig. 2: QoS-normalized execution time\n\
     \x20 fig3                       Fig. 3: efficiency (BUIPS/W)\n\
     \x20 week   [--vms N] [--csv]   Figs. 4-6: EPACT vs COAT vs COAT-OPT\n\
     \x20 sweep  [--spec FILE] [--vms N] [--seed S] [--seeds A,B,C]\n\
     \x20        [--static-power-scales X,Y] [--max-servers N]\n\
     \x20        [--backends analytic,archsim] [--threads N] [--arima]\n\
     \x20        [--fail-fast] [--emit-spec] [--json] [--no-cache]\n\
     \x20        [--cache-stats]\n\
     \x20                            parallel sweep over an ExperimentSpec;\n\
     \x20                            multiple seeds print mean±std groups;\n\
     \x20                            --backends sweeps the accounting\n\
     \x20                            backend (analytic power model vs the\n\
     \x20                            archsim interval simulator with QoS);\n\
     \x20                            --cache-stats prints plan/forecast\n\
     \x20                            cache hit/miss totals; failed cells\n\
     \x20                            are reported per cell and exit non-\n\
     \x20                            zero (--fail-fast aborts the rest)\n\
     \x20 fig7   [--vms N] [--csv]   Fig. 7: static-power sweep\n\
     \x20 validate                   power-model constants vs the paper\n\
     \x20 fleet-stats [--vms N]      generated-workload statistics"
}
