//! End-to-end tests of the `ntcdc` binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ntcdc"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn no_command_fails_with_usage() {
    let (ok, _, err) = run(&[]);
    assert!(!ok);
    assert!(err.contains("commands:"));
}

#[test]
fn unknown_command_fails() {
    let (ok, _, err) = run(&["fig99"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn help_succeeds() {
    let (ok, out, _) = run(&["--help"]);
    assert!(ok);
    assert!(out.contains("Consolidating or Not"));
}

#[test]
fn table1_prints_all_classes() {
    let (ok, out, _) = run(&["table1"]);
    assert!(ok);
    for class in ["low-mem", "mid-mem", "high-mem"] {
        assert!(out.contains(class), "missing {class}:\n{out}");
    }
}

#[test]
fn validate_reports_zero_deviation() {
    let (ok, out, _) = run(&["validate"]);
    assert!(ok);
    assert!(out.contains("F_NTC_opt off by 0 MHz"), "{out}");
}

#[test]
fn fig2_emits_csv() {
    let (ok, out, _) = run(&["fig2"]);
    assert!(ok);
    assert!(out.starts_with("workload,freq_mhz,normalized_time"));
    assert!(out.lines().count() > 20);
}

#[test]
fn week_small_fleet_runs() {
    let (ok, out, _) = run(&["week", "--vms", "24"]);
    assert!(ok, "{out}");
    assert!(out.contains("EPACT"));
    assert!(out.contains("saving vs COAT"));
}

#[test]
fn week_csv_mode() {
    let (ok, out, _) = run(&["week", "--vms", "24", "--csv"]);
    assert!(ok);
    assert!(out.starts_with("slot,epact_violations"));
}

#[test]
fn bad_option_value_fails_cleanly() {
    let (ok, _, err) = run(&["week", "--vms", "banana"]);
    assert!(!ok);
    assert!(err.contains("--vms"));
}

#[test]
fn fleet_stats_prints_classes() {
    let (ok, out, _) = run(&["fleet-stats", "--vms", "30"]);
    assert!(ok);
    assert!(out.contains("classes (low/mid/high):  10/10/10"), "{out}");
}

#[test]
fn emit_spec_carries_the_new_axes() {
    let (ok, out, _) = run(&[
        "sweep",
        "--seeds",
        "1,2,3",
        "--static-power-scales",
        "0.5,1.0",
        "--emit-spec",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("\"fleets\""), "{out}");
    assert!(out.contains("\"static_power_scales\": [0.5, 1]"), "{out}");
    // 3 fleets in the set
    assert_eq!(out.matches("\"seed\"").count(), 3, "{out}");
}

#[test]
fn seed_averaged_sweep_prints_mean_std_groups() {
    let (ok, out, _) = run(&[
        "sweep",
        "--vms",
        "10",
        "--seeds",
        "1,2",
        "--max-servers",
        "100",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("seed-averaged over 2 fleets"), "{out}");
    assert!(out.contains("±"), "{out}");
    // 2 seeds x 6 configs = 12 cells
    assert!(out.contains("12 cells"), "{out}");
}

#[test]
fn sweep_json_mode_emits_cells_and_groups() {
    let (ok, out, _) = run(&[
        "sweep",
        "--vms",
        "8",
        "--seeds",
        "1,2",
        "--static-power-scales",
        "1.0,1.5",
        "--max-servers",
        "80",
        "--json",
    ]);
    assert!(ok, "{out}");
    assert!(out.trim_start().starts_with('{'), "{out}");
    assert!(out.contains("\"cells\""), "{out}");
    assert!(out.contains("\"groups\""), "{out}");
    assert!(out.contains("\"static_power_scale\": 1.5"), "{out}");
}

#[test]
fn legacy_single_fleet_spec_file_still_runs() {
    let dir = std::env::temp_dir();
    let path = dir.join("ntcdc_legacy_spec.json");
    std::fs::write(
        &path,
        r#"{
  "name": "legacy",
  "fleet": {"num_vms": 10, "seed": 3, "weeks": 2},
  "policies": ["epact"],
  "servers": ["ntc"],
  "max_servers": 100
}"#,
    )
    .unwrap();
    let (ok, out, err) = run(&["sweep", "--spec", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert!(ok, "{out}\n{err}");
    assert!(out.contains("1 cells"), "{out}");
    assert!(out.contains("EPACT/NTC"), "{out}");
}
