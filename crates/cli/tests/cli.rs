//! End-to-end tests of the `ntcdc` binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ntcdc"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn no_command_fails_with_usage() {
    let (ok, _, err) = run(&[]);
    assert!(!ok);
    assert!(err.contains("commands:"));
}

#[test]
fn unknown_command_fails() {
    let (ok, _, err) = run(&["fig99"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn help_succeeds() {
    let (ok, out, _) = run(&["--help"]);
    assert!(ok);
    assert!(out.contains("Consolidating or Not"));
}

#[test]
fn table1_prints_all_classes() {
    let (ok, out, _) = run(&["table1"]);
    assert!(ok);
    for class in ["low-mem", "mid-mem", "high-mem"] {
        assert!(out.contains(class), "missing {class}:\n{out}");
    }
}

#[test]
fn validate_reports_zero_deviation() {
    let (ok, out, _) = run(&["validate"]);
    assert!(ok);
    assert!(out.contains("F_NTC_opt off by 0 MHz"), "{out}");
}

#[test]
fn fig2_emits_csv() {
    let (ok, out, _) = run(&["fig2"]);
    assert!(ok);
    assert!(out.starts_with("workload,freq_mhz,normalized_time"));
    assert!(out.lines().count() > 20);
}

#[test]
fn week_small_fleet_runs() {
    let (ok, out, _) = run(&["week", "--vms", "24"]);
    assert!(ok, "{out}");
    assert!(out.contains("EPACT"));
    assert!(out.contains("saving vs COAT"));
}

#[test]
fn week_csv_mode() {
    let (ok, out, _) = run(&["week", "--vms", "24", "--csv"]);
    assert!(ok);
    assert!(out.starts_with("slot,epact_violations"));
}

#[test]
fn bad_option_value_fails_cleanly() {
    let (ok, _, err) = run(&["week", "--vms", "banana"]);
    assert!(!ok);
    assert!(err.contains("--vms"));
}

#[test]
fn fleet_stats_prints_classes() {
    let (ok, out, _) = run(&["fleet-stats", "--vms", "30"]);
    assert!(ok);
    assert!(out.contains("classes (low/mid/high):  10/10/10"), "{out}");
}
