//! Property-based tests of the power models.

use ntc_power::{proportionality, DataCenterPowerModel, ServerLoad, ServerPowerModel, VfCurve};
use ntc_units::{Frequency, Percent, Voltage};
use proptest::prelude::*;

proptest! {
    #[test]
    fn vf_interpolation_stays_between_knots(mhz in 100.0f64..3100.0) {
        let c = VfCurve::fdsoi_28nm_ntc();
        let v = c.voltage_at(Frequency::from_mhz(mhz));
        prop_assert!(v >= Voltage::from_volts(0.46));
        prop_assert!(v <= Voltage::from_volts(1.15));
    }

    #[test]
    fn vf_is_monotone(m1 in 100.0f64..3100.0, m2 in 100.0f64..3100.0) {
        let c = VfCurve::fdsoi_28nm_ntc();
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        prop_assert!(
            c.voltage_at(Frequency::from_mhz(lo)) <= c.voltage_at(Frequency::from_mhz(hi))
        );
    }

    #[test]
    fn breakdown_components_sum_to_total(
        ghz in 0.1f64..3.1,
        cpu in 0.0f64..100.0,
        wfm_share in 0.0f64..1.0,
        mem in 0.0f64..100.0,
    ) {
        let m = ServerPowerModel::ntc();
        let f = Frequency::from_ghz(ghz);
        let load = ServerLoad::mixed(Percent::new(cpu), wfm_share, Percent::new(mem), m.peak_read_bw());
        let b = m.breakdown(f, &load);
        let total = m.power_at(f, &load);
        prop_assert!((b.total().as_watts() - total.as_watts()).abs() < 1e-9);
        prop_assert!(b.cores.as_watts() >= 0.0);
        prop_assert!(b.uncore.as_watts() > 0.0);
    }

    #[test]
    fn wfm_never_increases_power(
        ghz in 0.1f64..3.1,
        cpu in 10.0f64..100.0,
        wfm_share in 0.0f64..1.0,
    ) {
        // At a fixed CPU busy level, shifting busy cycles into the WFM
        // state can only lower core power (24% discount).
        let m = ServerPowerModel::ntc();
        let f = Frequency::from_ghz(ghz);
        let dry = m.power_at(f, &ServerLoad::cpu_bound(Percent::new(cpu)));
        let wet_load = ServerLoad::mixed(Percent::new(cpu), wfm_share, Percent::ZERO, 0.0);
        let wet = m.power_at(f, &wet_load);
        prop_assert!(wet.as_watts() <= dry.as_watts() + 1e-9);
    }

    #[test]
    fn required_servers_monotone_in_utilization(
        u1 in 0.1f64..100.0,
        u2 in 0.1f64..100.0,
        level in 0usize..13,
    ) {
        let dc = DataCenterPowerModel::new(ServerPowerModel::ntc(), 80);
        let levels = dc.server().dvfs_levels();
        let f = levels[level.min(levels.len() - 1)];
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let n_lo = dc.required_servers(Percent::new(lo), f);
        let n_hi = dc.required_servers(Percent::new(hi), f);
        match (n_lo, n_hi) {
            (Some(a), Some(b)) => prop_assert!(a <= b),
            (None, Some(_)) => prop_assert!(false, "higher demand feasible but lower not"),
            _ => {}
        }
    }

    #[test]
    fn optimal_frequency_is_feasible_and_no_worse_than_fmax(u in 1.0f64..100.0) {
        let dc = DataCenterPowerModel::new(ServerPowerModel::ntc(), 80);
        let util = Percent::new(u);
        let (f, p) = dc.optimal_frequency(util);
        let at_fmax = dc
            .worst_case_power(util, dc.server().fmax())
            .expect("Fmax always feasible");
        prop_assert!(dc.required_servers(util, f).is_some());
        prop_assert!(p <= at_fmax);
    }

    #[test]
    fn ep_index_in_unit_interval(level in 0usize..13) {
        let m = ServerPowerModel::ntc();
        let levels = m.dvfs_levels();
        let f = levels[level.min(levels.len() - 1)];
        let ep = proportionality::ep_index(&m, f, 25);
        prop_assert!((0.0..=1.0).contains(&ep));
    }

    #[test]
    fn static_power_knob_is_exact(extra in 0.0f64..60.0) {
        let base = ServerPowerModel::ntc();
        let bumped = ServerPowerModel::ntc()
            .with_static_power(ntc_units::Power::from_watts(15.0 + extra));
        let f = Frequency::from_ghz(1.9);
        let d = bumped.power(f, Percent::FULL, Percent::ZERO).as_watts()
            - base.power(f, Percent::FULL, Percent::ZERO).as_watts();
        prop_assert!((d - extra).abs() < 1e-9);
    }
}
