use ntc_units::{Frequency, Percent, Power};
use serde::{Deserialize, Serialize};

use crate::{ServerLoad, ServerPowerModel};

/// Data-center-level power model (§IV-5 and §V-A of the paper).
///
/// Total data-center power is the sum of the powers of the turned-on
/// servers. For a *worst-case* (fully CPU-bound, maximum-utilization)
/// workload demanding a given share of the data center's total CPU
/// capacity, this type answers the paper's motivating question: *how many
/// servers should be on, and at what frequency?*
///
/// For the NTC server the answer is the Fig. 1(a) surface with a sweet
/// spot at `F_NTC_opt ≈ 1.9 GHz`; for the conventional server it is
/// Fig. 1(b), monotonically rewarding consolidation at `Fmax`.
///
/// # Examples
///
/// ```
/// use ntc_power::{DataCenterPowerModel, ServerPowerModel};
/// use ntc_units::{Frequency, Percent};
///
/// let dc = DataCenterPowerModel::new(ServerPowerModel::ntc(), 80);
/// let u = Percent::new(30.0);
/// let p_opt = dc.worst_case_power(u, dc.ntc_optimal_frequency()).unwrap();
/// let p_max = dc.worst_case_power(u, Frequency::from_ghz(3.1)).unwrap();
/// assert!(p_opt < p_max); // consolidation at Fmax is NOT optimal
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataCenterPowerModel {
    server: ServerPowerModel,
    num_servers: usize,
}

impl DataCenterPowerModel {
    /// Builds a data-center model of `num_servers` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `num_servers == 0`.
    pub fn new(server: ServerPowerModel, num_servers: usize) -> Self {
        assert!(num_servers > 0, "a data center needs at least one server");
        Self {
            server,
            num_servers,
        }
    }

    /// The per-server power model.
    pub fn server(&self) -> &ServerPowerModel {
        &self.server
    }

    /// Number of servers installed.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Total CPU capacity of the data center in MHz-equivalents
    /// (`num_servers × Fmax`), the denominator of the paper's data-center
    /// utilization rate.
    pub fn total_capacity_mhz(&self) -> f64 {
        self.num_servers as f64 * self.server.fmax().as_mhz()
    }

    /// The number of servers that must be on to serve `util` of total
    /// capacity when each runs at frequency `f`, or `None` if even all
    /// servers at `f` cannot meet the demand.
    pub fn required_servers(&self, util: Percent, f: Frequency) -> Option<usize> {
        let demand_mhz = util.as_fraction() * self.total_capacity_mhz();
        if demand_mhz <= 0.0 {
            return Some(0);
        }
        let n = (demand_mhz / f.as_mhz()).ceil() as usize;
        if n > self.num_servers {
            None
        } else {
            Some(n)
        }
    }

    /// Worst-case data-center power when serving a CPU-bound demand of
    /// `util` with every active server at frequency `f` (Fig. 1).
    ///
    /// Active servers run fully busy (worst case, maximum CPU
    /// utilization, no dynamic memory power); turned-off servers draw
    /// nothing. Returns `None` if the demand is infeasible at `f`.
    pub fn worst_case_power(&self, util: Percent, f: Frequency) -> Option<Power> {
        let n = self.required_servers(util, f)?;
        let per_server = self
            .server
            .power_at(f, &ServerLoad::cpu_bound(Percent::FULL));
        Some(per_server * n as f64)
    }

    /// Sweeps the DVFS levels and returns the frequency minimizing
    /// worst-case power for `util`, together with that power.
    ///
    /// For utilizations above ~`Fopt/Fmax` the demand forces frequencies
    /// above the unconstrained optimum, reproducing the right-shifting
    /// minima of Fig. 1(a).
    ///
    /// # Panics
    ///
    /// Panics if `util` exceeds 100% (infeasible even at `Fmax`).
    pub fn optimal_frequency(&self, util: Percent) -> (Frequency, Power) {
        assert!(
            util.value() <= 100.0,
            "data-center utilization cannot exceed 100%"
        );
        self.server
            .dvfs_levels()
            .into_iter()
            .filter_map(|f| self.worst_case_power(util, f).map(|p| (f, p)))
            .min_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("power values are finite")
                    // tie-break toward the lower frequency
                    .then(a.0.partial_cmp(&b.0).expect("frequencies are finite"))
            })
            .expect("at Fmax any util <= 100% is feasible")
    }

    /// `F_NTC_opt`: the unconstrained energy-optimal frequency — the
    /// DVFS level minimizing *power per unit of served capacity*
    /// `P(f)/f`, i.e. the continuum limit of [`Self::optimal_frequency`]
    /// where server-count rounding vanishes (§V-A reports ≈1.9 GHz for
    /// the NTC server).
    pub fn ntc_optimal_frequency(&self) -> Frequency {
        self.server
            .dvfs_levels()
            .into_iter()
            .min_by(|&a, &b| {
                let pa = self
                    .server
                    .power_at(a, &ServerLoad::cpu_bound(Percent::FULL))
                    .as_watts()
                    / a.as_mhz();
                let pb = self
                    .server
                    .power_at(b, &ServerLoad::cpu_bound(Percent::FULL))
                    .as_watts()
                    / b.as_mhz();
                pa.partial_cmp(&pb).expect("finite power values")
            })
            .expect("the DVFS table is never empty")
    }

    /// The full Fig. 1 surface: worst-case power for every `(util, f)`
    /// pair, `None` where infeasible.
    pub fn power_surface(&self, utils: &[Percent], freqs: &[Frequency]) -> Vec<Vec<Option<Power>>> {
        utils
            .iter()
            .map(|&u| freqs.iter().map(|&f| self.worst_case_power(u, f)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ntc_dc() -> DataCenterPowerModel {
        DataCenterPowerModel::new(ServerPowerModel::ntc(), 80)
    }

    #[test]
    fn ntc_optimum_is_near_1_9_ghz() {
        let f = ntc_dc().ntc_optimal_frequency();
        assert!(
            (1.5..=2.2).contains(&f.as_ghz()),
            "paper reports F_NTC_opt ~ 1.9 GHz, model gives {f}"
        );
    }

    #[test]
    fn conventional_optimum_is_fmax() {
        let dc = DataCenterPowerModel::new(ServerPowerModel::conventional_e5_2620(), 80);
        let (f, _) = dc.optimal_frequency(Percent::new(20.0));
        assert_eq!(
            f,
            dc.server().fmax(),
            "consolidation at Fmax must be optimal for the non-NTC data center"
        );
    }

    #[test]
    fn high_utilization_forces_minimum_feasible_frequency() {
        // Above ~61% utilization (1.9/3.1), Fopt becomes the lowest
        // frequency that still meets demand (paper §V-A).
        let dc = ntc_dc();
        let (f, _) = dc.optimal_frequency(Percent::new(80.0));
        assert!(f.as_ghz() >= 0.8 * 3.1 - 0.2);
        // and it is the smallest feasible DVFS level
        let feasible_min = dc
            .server()
            .dvfs_levels()
            .into_iter()
            .find(|&l| dc.required_servers(Percent::new(80.0), l).is_some())
            .unwrap();
        assert_eq!(f, feasible_min);
    }

    #[test]
    fn required_servers_counts_ceil() {
        let dc = ntc_dc();
        // 50% of 80 servers' capacity at Fmax needs exactly 40 servers.
        assert_eq!(
            dc.required_servers(Percent::new(50.0), dc.server().fmax()),
            Some(40)
        );
        // at half Fmax it needs all 80
        assert_eq!(
            dc.required_servers(Percent::new(50.0), Frequency::from_mhz(1550.0)),
            Some(80)
        );
        // and slightly below that it is infeasible
        assert_eq!(
            dc.required_servers(Percent::new(50.0), Frequency::from_mhz(1500.0)),
            None
        );
        // zero demand needs zero servers
        assert_eq!(
            dc.required_servers(Percent::ZERO, dc.server().fmax()),
            Some(0)
        );
    }

    #[test]
    fn fig1a_magnitude() {
        // Fig 1a tops out around 11-12 kW for 90% utilization at 3.1 GHz.
        let dc = ntc_dc();
        let p = dc
            .worst_case_power(Percent::new(90.0), Frequency::from_ghz(3.1))
            .unwrap();
        assert!(
            (8.0..13.0).contains(&p.as_kilowatts()),
            "Fig 1a peak should be ~11 kW, got {p}"
        );
    }

    #[test]
    fn surface_shape_matches_fig1a() {
        let dc = ntc_dc();
        let utils: Vec<Percent> = (1..=9).map(|i| Percent::new(10.0 * i as f64)).collect();
        let freqs = dc.server().dvfs_levels();
        let surface = dc.power_surface(&utils, &freqs);
        assert_eq!(surface.len(), 9);
        // every row is feasible at fmax
        for row in &surface {
            assert!(row.last().unwrap().is_some());
        }
        // at 10% util, power at Fmax strictly exceeds power at Fopt
        let row0 = &surface[0];
        let p_fmax = row0.last().unwrap().unwrap();
        let p_opt = dc.optimal_frequency(Percent::new(10.0)).1;
        assert!(p_opt < p_fmax);
    }
}
