use ntc_units::{Frequency, Percent, Power, Voltage};
use serde::{Deserialize, Serialize};

use crate::VfCurve;

/// Power model of the *core region*: the CPU cores plus their private
/// L1/L2 caches (§IV-1 of the paper).
///
/// Per active core the model is
///
/// ```text
/// P_core(f) = Ceff · V(f)² · f  +  V(f) · I0 · exp(V(f)/V0)
///             └── dynamic ──┘      └──── leakage ────┘
/// ```
///
/// A core in the wait-for-memory (WFM) state consumes 24% less than an
/// active core (measured empirically on an Intel Xeon v3 in the paper);
/// an idle (clock-gated) core consumes only leakage.
///
/// # Examples
///
/// ```
/// use ntc_power::CoreRegionModel;
/// use ntc_units::{Frequency, Percent};
///
/// let cores = CoreRegionModel::ntc_a57(16);
/// let busy = cores.power(Frequency::from_ghz(1.9), Percent::FULL, Percent::ZERO);
/// let idle = cores.power(Frequency::from_ghz(1.9), Percent::ZERO, Percent::ZERO);
/// assert!(busy.as_watts() > 10.0 * idle.as_watts());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreRegionModel {
    vf: VfCurve,
    num_cores: usize,
    /// Effective switched capacitance per core, in farads.
    ceff_farads: f64,
    /// Leakage pre-factor `I0` in amperes.
    leak_i0_amps: f64,
    /// Leakage voltage scale `V0` in volts.
    leak_v0_volts: f64,
    /// Fractional discount while in wait-for-memory state (0.24 in the
    /// paper).
    wfm_discount: f64,
}

impl CoreRegionModel {
    /// The NTC server's core region: `num_cores` Cortex-A57-class OoO
    /// cores on the 28nm FD-SOI near-threshold curve.
    ///
    /// The capacitance is calibrated so a fully busy 16-core chip draws
    /// ≈85 W at 3.1 GHz / 1.15 V and ≈8 W at 1 GHz / 0.62 V, matching the
    /// energy-per-cycle scaling of the Exynos 5433 A57 cluster transposed
    /// to FD-SOI per §IV-1.
    pub fn ntc_a57(num_cores: usize) -> Self {
        Self::new(
            VfCurve::fdsoi_28nm_ntc(),
            num_cores,
            1.3e-9,
            2.0e-4,
            0.15,
            0.24,
        )
    }

    /// A conventional bulk-CMOS server core region (Intel E5-2620 class,
    /// 6 wide cores with high per-core capacitance and high leakage).
    pub fn conventional_xeon(num_cores: usize) -> Self {
        Self::new(
            VfCurve::bulk_conventional(),
            num_cores,
            2.5e-9,
            2.0e-2,
            0.30,
            0.24,
        )
    }

    /// Builds a core-region model from raw physical parameters.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores == 0`, any physical parameter is
    /// non-positive, or `wfm_discount` is outside `[0, 1)`.
    pub fn new(
        vf: VfCurve,
        num_cores: usize,
        ceff_farads: f64,
        leak_i0_amps: f64,
        leak_v0_volts: f64,
        wfm_discount: f64,
    ) -> Self {
        assert!(num_cores > 0, "a core region needs at least one core");
        assert!(ceff_farads > 0.0, "Ceff must be positive");
        assert!(leak_i0_amps > 0.0, "I0 must be positive");
        assert!(leak_v0_volts > 0.0, "V0 must be positive");
        assert!(
            (0.0..1.0).contains(&wfm_discount),
            "WFM discount must be in [0, 1)"
        );
        Self {
            vf,
            num_cores,
            ceff_farads,
            leak_i0_amps,
            leak_v0_volts,
            wfm_discount,
        }
    }

    /// Number of cores in the region.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// The V–f curve driving this region.
    pub fn vf_curve(&self) -> &VfCurve {
        &self.vf
    }

    /// Dynamic power of one fully active core at frequency `f`.
    pub fn dynamic_per_core(&self, f: Frequency) -> Power {
        let v = self.vf.voltage_at(f);
        Power::from_watts(self.ceff_farads * v.squared() * f.as_hz())
    }

    /// Leakage power of one core at the voltage sustaining `f`.
    pub fn leakage_per_core(&self, f: Frequency) -> Power {
        let v = self.vf.voltage_at(f);
        self.leakage_at_voltage(v)
    }

    /// Leakage power of one core at supply voltage `v`.
    pub fn leakage_at_voltage(&self, v: Voltage) -> Power {
        let i = self.leak_i0_amps * (v.as_volts() / self.leak_v0_volts).exp();
        Power::from_watts(v.as_volts() * i)
    }

    /// Total core-region power.
    ///
    /// * `active` — fraction of total core-cycles doing useful work;
    /// * `wfm` — fraction of total core-cycles stalled waiting for memory
    ///   (these cycles burn `1 − 0.24 = 76%` of active power).
    ///
    /// The remaining `1 − active − wfm` fraction is idle and burns only
    /// leakage. All `num_cores` cores stay powered (leakage applies to
    /// every core); the utilization fractions scale only dynamic power.
    ///
    /// # Panics
    ///
    /// Panics if `active + wfm` exceeds 100%.
    pub fn power(&self, f: Frequency, active: Percent, wfm: Percent) -> Power {
        let a = active.as_fraction();
        let w = wfm.as_fraction();
        assert!(
            a + w <= 1.0 + 1e-9,
            "active ({a:.3}) + WFM ({w:.3}) fractions exceed 1"
        );
        let dyn_one = self.dynamic_per_core(f).as_watts();
        let leak_one = self.leakage_per_core(f).as_watts();
        let n = self.num_cores as f64;
        let dynamic = n * dyn_one * (a + w * (1.0 - self.wfm_discount));
        Power::from_watts(dynamic + n * leak_one)
    }

    /// Energy per clock cycle of one active core, in joules — the quantity
    /// the paper's Exynos-to-FD-SOI scaling operates on.
    pub fn energy_per_cycle(&self, f: Frequency) -> f64 {
        (self.dynamic_per_core(f).as_watts() + self.leakage_per_core(f).as_watts()) / f.as_hz()
    }

    /// The WFM discount factor (0.24 in the paper).
    pub fn wfm_discount(&self) -> f64 {
        self.wfm_discount
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_anchors() {
        let m = CoreRegionModel::ntc_a57(16);
        let busy_fmax = m.power(Frequency::from_ghz(3.1), Percent::FULL, Percent::ZERO);
        assert!(
            (70.0..110.0).contains(&busy_fmax.as_watts()),
            "16 busy A57 cores at 3.1 GHz should draw ~85 W, got {busy_fmax}"
        );
        let busy_1g = m.power(Frequency::from_ghz(1.0), Percent::FULL, Percent::ZERO);
        assert!(
            (6.0..12.0).contains(&busy_1g.as_watts()),
            "16 busy cores at 1 GHz (near-threshold) should draw ~8 W, got {busy_1g}"
        );
    }

    #[test]
    fn quadratic_voltage_dependence() {
        let m = CoreRegionModel::ntc_a57(1);
        // Moving from 1.0 GHz to 3.1 GHz raises frequency 3.1x but power
        // must rise much more (voltage scaling compounds).
        let p1 = m.dynamic_per_core(Frequency::from_ghz(1.0)).as_watts();
        let p3 = m.dynamic_per_core(Frequency::from_ghz(3.1)).as_watts();
        assert!(p3 / p1 > 6.0, "dynamic power must scale super-linearly");
    }

    #[test]
    fn wfm_discount_applies() {
        let m = CoreRegionModel::ntc_a57(16);
        let f = Frequency::from_ghz(2.0);
        let all_active = m.power(f, Percent::FULL, Percent::ZERO);
        let all_wfm = m.power(f, Percent::ZERO, Percent::FULL);
        let leak = m.power(f, Percent::ZERO, Percent::ZERO);
        let dyn_active = all_active.as_watts() - leak.as_watts();
        let dyn_wfm = all_wfm.as_watts() - leak.as_watts();
        assert!((dyn_wfm / dyn_active - 0.76).abs() < 1e-9);
    }

    #[test]
    fn leakage_grows_with_voltage() {
        let m = CoreRegionModel::ntc_a57(1);
        let lo = m.leakage_at_voltage(Voltage::from_volts(0.46)).as_watts();
        let hi = m.leakage_at_voltage(Voltage::from_volts(1.15)).as_watts();
        assert!(hi > 20.0 * lo, "leakage must grow steeply with voltage");
    }

    #[test]
    fn energy_per_cycle_has_minimum_below_fmax() {
        // The classic NTC result: energy/cycle is minimized well below
        // the maximum frequency.
        let m = CoreRegionModel::ntc_a57(1);
        let e_fmax = m.energy_per_cycle(Frequency::from_ghz(3.1));
        let e_mid = m.energy_per_cycle(Frequency::from_ghz(1.0));
        assert!(e_mid < e_fmax);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn overcommitted_fractions_rejected() {
        let m = CoreRegionModel::ntc_a57(4);
        let _ = m.power(
            Frequency::from_ghz(1.0),
            Percent::new(80.0),
            Percent::new(30.0),
        );
    }
}
