use ntc_units::{Frequency, Power};
use serde::{Deserialize, Serialize};

/// Power model of the memory controller, peripherals, IO subsystem and
/// motherboard (§IV-3 of the paper).
///
/// Measured on an Intel Xeon v3 and on the Cavium ThunderX board, the
/// uncore splits into:
///
/// * a **constant** component of 11.84 W (static + fixed dynamic cost of
///   keeping the subsystems on),
/// * a component **proportional to the operating condition**, ranging from
///   1.6 W at the lowest operating point to 9 W at the highest,
/// * **motherboard** power of 15 W (low fan speed, one SSD) — the "static
///   power" knob the paper sweeps from 5 W to 45 W in Fig. 7.
///
/// # Examples
///
/// ```
/// use ntc_power::UncoreModel;
/// use ntc_units::{Frequency, Power};
///
/// let uncore = UncoreModel::ntc_server();
/// let p_lo = uncore.power(Frequency::from_mhz(100.0));
/// let p_hi = uncore.power(Frequency::from_ghz(3.1));
/// assert!((p_lo.as_watts() - (11.84 + 1.6 + 15.0)).abs() < 1e-9);
/// assert!((p_hi.as_watts() - (11.84 + 9.0 + 15.0)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncoreModel {
    constant: Power,
    proportional_min: Power,
    proportional_max: Power,
    motherboard: Power,
    fmin: Frequency,
    fmax: Frequency,
}

impl UncoreModel {
    /// The NTC server's uncore, with the paper's measured constants.
    pub fn ntc_server() -> Self {
        Self::new(
            Power::from_watts(11.84),
            Power::from_watts(1.6),
            Power::from_watts(9.0),
            Power::from_watts(15.0),
            Frequency::from_mhz(100.0),
            Frequency::from_ghz(3.1),
        )
    }

    /// A conventional E5-2620-class uncore with a much larger constant
    /// component (chipset, fans, PSU inefficiency at low load).
    pub fn conventional_server() -> Self {
        Self::new(
            Power::from_watts(32.0),
            Power::from_watts(3.0),
            Power::from_watts(12.0),
            Power::from_watts(18.0),
            Frequency::from_mhz(1200.0),
            Frequency::from_mhz(2400.0),
        )
    }

    /// Builds an uncore model.
    ///
    /// # Panics
    ///
    /// Panics if `proportional_min > proportional_max` or
    /// `fmin >= fmax`.
    pub fn new(
        constant: Power,
        proportional_min: Power,
        proportional_max: Power,
        motherboard: Power,
        fmin: Frequency,
        fmax: Frequency,
    ) -> Self {
        assert!(
            proportional_min <= proportional_max,
            "proportional range inverted"
        );
        assert!(fmin < fmax, "frequency range inverted");
        Self {
            constant,
            proportional_min,
            proportional_max,
            motherboard,
            fmin,
            fmax,
        }
    }

    /// Replaces the motherboard ("static") power — the Fig. 7 sweep knob.
    pub fn with_motherboard(mut self, motherboard: Power) -> Self {
        self.motherboard = motherboard;
        self
    }

    /// The constant (always-on) component, motherboard included.
    pub fn static_power(&self) -> Power {
        self.constant + self.motherboard
    }

    /// The motherboard component alone.
    pub fn motherboard(&self) -> Power {
        self.motherboard
    }

    /// The operating-point-proportional component at frequency `f`
    /// (linear between `fmin` and `fmax`, clamped outside).
    pub fn proportional(&self, f: Frequency) -> Power {
        let t = ((f.as_mhz() - self.fmin.as_mhz()) / (self.fmax.as_mhz() - self.fmin.as_mhz()))
            .clamp(0.0, 1.0);
        Power::from_watts(
            self.proportional_min.as_watts()
                + t * (self.proportional_max.as_watts() - self.proportional_min.as_watts()),
        )
    }

    /// Total uncore power at operating point `f`.
    pub fn power(&self, f: Frequency) -> Power {
        self.static_power() + self.proportional(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let u = UncoreModel::ntc_server();
        assert_eq!(u.static_power().as_watts(), 11.84 + 15.0);
        assert_eq!(u.proportional(Frequency::from_mhz(100.0)).as_watts(), 1.6);
        assert_eq!(u.proportional(Frequency::from_ghz(3.1)).as_watts(), 9.0);
    }

    #[test]
    fn proportional_is_monotone_and_clamped() {
        let u = UncoreModel::ntc_server();
        let mid = u.proportional(Frequency::from_mhz(1600.0)).as_watts();
        assert!(mid > 1.6 && mid < 9.0);
        assert_eq!(u.proportional(Frequency::from_mhz(50.0)).as_watts(), 1.6);
        assert_eq!(u.proportional(Frequency::from_ghz(4.0)).as_watts(), 9.0);
    }

    #[test]
    fn fig7_knob_changes_static_only() {
        let base = UncoreModel::ntc_server();
        let heavy = base.clone().with_motherboard(Power::from_watts(45.0));
        let f = Frequency::from_ghz(1.9);
        let delta = heavy.power(f).as_watts() - base.power(f).as_watts();
        assert!((delta - 30.0).abs() < 1e-9);
        assert_eq!(heavy.proportional(f), base.proportional(f));
    }

    #[test]
    fn conventional_has_larger_static() {
        assert!(
            UncoreModel::conventional_server().static_power()
                > UncoreModel::ntc_server().static_power()
        );
    }
}
