use ntc_units::{Frequency, Percent, Power};
use serde::{Deserialize, Serialize};

use crate::{CoreRegionModel, DramModel, LlcModel, UncoreModel};

/// The activity vector of one server at one instant.
///
/// # Examples
///
/// ```
/// use ntc_power::ServerLoad;
/// use ntc_units::Percent;
///
/// let load = ServerLoad::cpu_bound(Percent::new(80.0));
/// assert_eq!(load.cpu_active.value(), 80.0);
/// assert_eq!(load.read_bytes_per_sec, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerLoad {
    /// Fraction of core-cycles doing useful work.
    pub cpu_active: Percent,
    /// Fraction of core-cycles stalled in the wait-for-memory state.
    pub cpu_wfm: Percent,
    /// Fraction of DRAM with banks activated.
    pub mem_active: Percent,
    /// DRAM read bandwidth in bytes per second.
    pub read_bytes_per_sec: f64,
    /// LLC read accesses per second (128-bit each).
    pub llc_reads_per_sec: f64,
    /// LLC write accesses per second (128-bit each).
    pub llc_writes_per_sec: f64,
}

impl ServerLoad {
    /// An idle server: no activity anywhere.
    pub fn idle() -> Self {
        Self {
            cpu_active: Percent::ZERO,
            cpu_wfm: Percent::ZERO,
            mem_active: Percent::ZERO,
            read_bytes_per_sec: 0.0,
            llc_reads_per_sec: 0.0,
            llc_writes_per_sec: 0.0,
        }
    }

    /// A purely CPU-bound load (Fig. 1's "no dynamic memory power"
    /// scenario): cores active, memory quiet.
    pub fn cpu_bound(cpu: Percent) -> Self {
        Self {
            cpu_active: cpu.clamp_full(),
            ..Self::idle()
        }
    }

    /// A mixed load: `cpu` busy cores of which `wfm_share` of the busy
    /// cycles stall on memory, with `mem` of DRAM active and a read
    /// stream proportional to `mem`.
    ///
    /// `peak_read_bw` is the server's peak DRAM read bandwidth; the
    /// realized stream is `mem/100 × peak_read_bw`.
    pub fn mixed(cpu: Percent, wfm_share: f64, mem: Percent, peak_read_bw: f64) -> Self {
        let cpu = cpu.clamp_full();
        let wfm = Percent::new(cpu.value() * wfm_share.clamp(0.0, 1.0));
        let active = cpu - wfm;
        let bw = peak_read_bw * mem.as_fraction().min(1.0);
        Self {
            cpu_active: active,
            cpu_wfm: wfm,
            mem_active: mem.clamp_full(),
            read_bytes_per_sec: bw,
            // one 128-bit LLC access per 16 bytes moved, as a first-order
            // coupling between DRAM traffic and LLC traffic
            llc_reads_per_sec: bw / 16.0,
            llc_writes_per_sec: bw / 64.0,
        }
    }
}

/// Per-component decomposition of server power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Core region (cores + L1/L2).
    pub cores: Power,
    /// Last-level cache.
    pub llc: Power,
    /// Memory controller, peripherals, IO and motherboard.
    pub uncore: Power,
    /// DRAM banks and access energy.
    pub dram: Power,
}

impl PowerBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> Power {
        self.cores + self.llc + self.uncore + self.dram
    }
}

/// A complete server power model (§IV of the paper): core region + LLC +
/// uncore + DRAM.
///
/// Two presets are provided:
///
/// * [`ServerPowerModel::ntc`] — the proposed 16-core A57-class NTC server
///   in 28nm FD-SOI (100 MHz – 3.1 GHz);
/// * [`ServerPowerModel::conventional_e5_2620`] — a 6-core Intel
///   E5-2620-class server (1.2 – 2.4 GHz) whose narrow voltage range and
///   large static power make consolidation-at-Fmax optimal (Fig. 1b).
///
/// # Examples
///
/// ```
/// use ntc_power::ServerPowerModel;
/// use ntc_units::{Frequency, Percent};
///
/// let ntc = ServerPowerModel::ntc();
/// let busy = ntc.power(Frequency::from_ghz(1.9), Percent::FULL, Percent::ZERO);
/// let idle = ntc.power(Frequency::from_mhz(100.0), Percent::ZERO, Percent::ZERO);
/// // NTC servers are energy-proportional: busy/idle ratio is large.
/// assert!(busy.as_watts() / idle.as_watts() > 1.8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerPowerModel {
    cores: CoreRegionModel,
    llc: LlcModel,
    uncore: UncoreModel,
    dram: DramModel,
    /// Peak DRAM read bandwidth in bytes/s, used to translate a memory
    /// utilization percentage into a read stream.
    peak_read_bw: f64,
    /// Average share of busy cycles spent in WFM per unit of memory
    /// utilization (couples memory intensity to core stalls).
    wfm_per_mem: f64,
}

impl ServerPowerModel {
    /// The proposed NTC server: 16 Cortex-A57-class cores in 28nm FD-SOI,
    /// 16 MB LLC, 16 GB DDR4-2400 (19.2 GB/s), paper §III-A.
    pub fn ntc() -> Self {
        Self {
            cores: CoreRegionModel::ntc_a57(16),
            llc: LlcModel::fdsoi_16mb(),
            uncore: UncoreModel::ntc_server(),
            dram: DramModel::ddr4_16gb(),
            peak_read_bw: 19.2e9,
            wfm_per_mem: 0.5,
        }
    }

    /// A conventional 6-core Intel E5-2620-class server (Fig. 1b).
    pub fn conventional_e5_2620() -> Self {
        Self {
            cores: CoreRegionModel::conventional_xeon(6),
            llc: LlcModel::bulk_15mb(),
            uncore: UncoreModel::conventional_server(),
            dram: DramModel::ddr3_32gb(),
            peak_read_bw: 21.3e9,
            wfm_per_mem: 0.5,
        }
    }

    /// Builds a server model from explicit components.
    pub fn from_parts(
        cores: CoreRegionModel,
        llc: LlcModel,
        uncore: UncoreModel,
        dram: DramModel,
        peak_read_bw: f64,
    ) -> Self {
        assert!(peak_read_bw > 0.0, "peak read bandwidth must be positive");
        Self {
            cores,
            llc,
            uncore,
            dram,
            peak_read_bw,
            wfm_per_mem: 0.5,
        }
    }

    /// Replaces the motherboard/fan/disk ("static") power — the knob the
    /// paper sweeps from 5 W to 45 W in Fig. 7.
    pub fn with_static_power(mut self, motherboard: Power) -> Self {
        self.uncore = self.uncore.with_motherboard(motherboard);
        self
    }

    /// Highest sustainable core frequency.
    pub fn fmax(&self) -> Frequency {
        self.cores.vf_curve().fmax()
    }

    /// Lowest DVFS level.
    pub fn fmin(&self) -> Frequency {
        self.cores.vf_curve().fmin()
    }

    /// The discrete DVFS levels of this server.
    pub fn dvfs_levels(&self) -> Vec<Frequency> {
        self.cores.vf_curve().dvfs_levels()
    }

    /// The core-region model.
    pub fn cores(&self) -> &CoreRegionModel {
        &self.cores
    }

    /// The LLC model.
    pub fn llc(&self) -> &LlcModel {
        &self.llc
    }

    /// The uncore model.
    pub fn uncore(&self) -> &UncoreModel {
        &self.uncore
    }

    /// The DRAM model.
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// Peak DRAM read bandwidth in bytes per second.
    pub fn peak_read_bw(&self) -> f64 {
        self.peak_read_bw
    }

    /// Full power evaluation for an explicit [`ServerLoad`].
    pub fn power_at(&self, f: Frequency, load: &ServerLoad) -> Power {
        self.breakdown(f, load).total()
    }

    /// Per-component power for an explicit [`ServerLoad`].
    pub fn breakdown(&self, f: Frequency, load: &ServerLoad) -> PowerBreakdown {
        let v = self.cores.vf_curve().voltage_at(f);
        PowerBreakdown {
            cores: self.cores.power(f, load.cpu_active, load.cpu_wfm),
            llc: self
                .llc
                .power(v, load.llc_reads_per_sec, load.llc_writes_per_sec),
            uncore: self.uncore.power(f),
            dram: self.dram.power(load.mem_active, load.read_bytes_per_sec),
        }
    }

    /// Convenience power evaluation from the two utilization numbers the
    /// allocation policies track per server: CPU utilization and memory
    /// utilization (both as a share of server capacity at frequency `f`).
    ///
    /// Memory utilization drives both the DRAM bank-active fraction and a
    /// proportional read stream, and couples back into core WFM stalls.
    pub fn power(&self, f: Frequency, cpu_util: Percent, mem_util: Percent) -> Power {
        let load = ServerLoad::mixed(
            cpu_util,
            self.wfm_per_mem * mem_util.as_fraction().min(1.0),
            mem_util,
            self.peak_read_bw,
        );
        self.power_at(f, &load)
    }

    /// Power of an idle-but-on server at its lowest operating point.
    pub fn idle_power(&self) -> Power {
        self.power_at(self.fmin(), &ServerLoad::idle())
    }

    /// Power of a fully loaded (CPU-bound) server at `fmax`.
    pub fn peak_power(&self) -> Power {
        self.power_at(self.fmax(), &ServerLoad::cpu_bound(Percent::FULL))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ntc_magnitudes_match_fig1a() {
        // Fig 1a: 80 fully-busy servers at 3.1 GHz draw ~11 kW, i.e.
        // ~130-145 W per server.
        let m = ServerPowerModel::ntc();
        let peak = m.peak_power().as_watts();
        assert!(
            (110.0..160.0).contains(&peak),
            "NTC peak power should be ~130 W, got {peak}"
        );
        // And the static floor is the uncore constant + DRAM idle.
        let idle = m.idle_power().as_watts();
        assert!(
            (26.0..34.0).contains(&idle),
            "NTC idle power should be ~28 W, got {idle}"
        );
    }

    #[test]
    fn conventional_is_not_proportional() {
        let c = ServerPowerModel::conventional_e5_2620();
        let dyn_range = c.peak_power().as_watts() / c.idle_power().as_watts();
        let ntc_range = ServerPowerModel::ntc().peak_power().as_watts()
            / ServerPowerModel::ntc().idle_power().as_watts();
        assert!(
            ntc_range > dyn_range,
            "the NTC server must be more energy-proportional: ntc {ntc_range:.2} vs conv {dyn_range:.2}"
        );
    }

    #[test]
    fn memory_power_is_linear_in_utilization() {
        let m = ServerPowerModel::ntc();
        let f = Frequency::from_ghz(1.9);
        let p0 = m.power(f, Percent::new(50.0), Percent::ZERO).as_watts();
        let p1 = m
            .power(f, Percent::new(50.0), Percent::new(20.0))
            .as_watts();
        let p2 = m
            .power(f, Percent::new(50.0), Percent::new(40.0))
            .as_watts();
        let d1 = p1 - p0;
        let d2 = p2 - p1;
        // The DRAM contribution is linear; the WFM coupling makes core
        // power *fall* slightly, but the increments stay near-equal.
        assert!(d1 > 0.0, "memory activity must add power");
        assert!((d2 - d1).abs() < 0.35 * d1.abs() + 0.2);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = ServerPowerModel::ntc();
        let load = ServerLoad::mixed(
            Percent::new(70.0),
            0.2,
            Percent::new(25.0),
            m.peak_read_bw(),
        );
        let f = Frequency::from_ghz(2.4);
        let b = m.breakdown(f, &load);
        assert!((b.total().as_watts() - m.power_at(f, &load).as_watts()).abs() < 1e-12);
        assert!(b.cores.as_watts() > 0.0);
        assert!(b.llc.as_watts() > 0.0);
        assert!(b.uncore.as_watts() > 0.0);
        assert!(b.dram.as_watts() > 0.0);
    }

    #[test]
    fn static_power_knob() {
        let base = ServerPowerModel::ntc();
        let heavy = ServerPowerModel::ntc().with_static_power(Power::from_watts(45.0));
        let f = Frequency::from_ghz(1.9);
        let delta = heavy.power(f, Percent::FULL, Percent::ZERO).as_watts()
            - base.power(f, Percent::FULL, Percent::ZERO).as_watts();
        assert!((delta - 30.0).abs() < 1e-9);
    }

    #[test]
    fn wfm_coupling_reduces_core_power() {
        let m = ServerPowerModel::ntc();
        let f = Frequency::from_ghz(2.0);
        let cpu = Percent::new(80.0);
        let b_dry = m.breakdown(f, &ServerLoad::cpu_bound(cpu));
        let b_wet = m.breakdown(
            f,
            &ServerLoad::mixed(cpu, 0.5, Percent::new(40.0), m.peak_read_bw()),
        );
        assert!(b_wet.cores < b_dry.cores, "WFM cycles must burn less");
        assert!(b_wet.dram > b_dry.dram, "memory activity must cost power");
    }
}
