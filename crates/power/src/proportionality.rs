//! Energy-proportionality metrics.
//!
//! A perfectly proportional server draws power linearly in utilization
//! with zero idle power; a constant-power server is the opposite extreme.
//! The index computed here summarizes where a [`ServerPowerModel`] falls
//! between the two, and is used by the ablation benches to quantify the
//! claim that FD-SOI NTC servers are dramatically more proportional than
//! conventional ones.

use ntc_units::{Frequency, Percent};

use crate::ServerPowerModel;

/// The energy-proportionality index of a server at a fixed frequency,
/// in `[0, 1]`:
///
/// ```text
/// EP = 2 − 2 · mean_u( P(u) / P(100%) ),   u ∈ [0, 100%]
/// ```
///
/// `EP = 1` for an ideally proportional machine (power linear in load,
/// zero at idle) and `EP = 0` for a machine whose power never varies.
/// Values are clamped to `[0, 1]`.
///
/// # Examples
///
/// ```
/// use ntc_power::proportionality::ep_index;
/// use ntc_power::ServerPowerModel;
///
/// let ntc = ServerPowerModel::ntc();
/// let conv = ServerPowerModel::conventional_e5_2620();
/// let f_ntc = ntc.fmax();
/// let f_conv = conv.fmax();
/// assert!(ep_index(&ntc, f_ntc, 50) > ep_index(&conv, f_conv, 50));
/// ```
pub fn ep_index(server: &ServerPowerModel, f: Frequency, steps: usize) -> f64 {
    assert!(steps >= 2, "EP index needs at least two utilization steps");
    let peak = server.power(f, Percent::FULL, Percent::ZERO).as_watts();
    if peak <= 0.0 {
        return 0.0;
    }
    let mean_ratio: f64 = (0..=steps)
        .map(|i| {
            let u = Percent::new(100.0 * i as f64 / steps as f64);
            server.power(f, u, Percent::ZERO).as_watts() / peak
        })
        .sum::<f64>()
        / (steps + 1) as f64;
    (2.0 - 2.0 * mean_ratio).clamp(0.0, 1.0)
}

/// The *dynamic range* of a server: peak power over idle power at the
/// same frequency. Higher is more proportional.
///
/// # Examples
///
/// ```
/// use ntc_power::proportionality::dynamic_range;
/// use ntc_power::ServerPowerModel;
///
/// let ntc = ServerPowerModel::ntc();
/// assert!(dynamic_range(&ntc, ntc.fmax()) > 2.0);
/// ```
pub fn dynamic_range(server: &ServerPowerModel, f: Frequency) -> f64 {
    let peak = server.power(f, Percent::FULL, Percent::ZERO).as_watts();
    let idle = server.power(f, Percent::ZERO, Percent::ZERO).as_watts();
    if idle <= 0.0 {
        f64::INFINITY
    } else {
        peak / idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ep_index_bounds() {
        let ntc = ServerPowerModel::ntc();
        for f in ntc.dvfs_levels() {
            let ep = ep_index(&ntc, f, 20);
            assert!((0.0..=1.0).contains(&ep), "EP index out of bounds at {f}");
        }
    }

    #[test]
    fn ntc_more_proportional_than_conventional() {
        let ntc = ServerPowerModel::ntc();
        let conv = ServerPowerModel::conventional_e5_2620();
        let ep_ntc = ep_index(&ntc, ntc.fmax(), 50);
        let ep_conv = ep_index(&conv, conv.fmax(), 50);
        assert!(
            ep_ntc > ep_conv + 0.05,
            "NTC EP {ep_ntc:.3} must clearly exceed conventional EP {ep_conv:.3}"
        );
    }

    #[test]
    fn dynamic_range_ordering() {
        let ntc = ServerPowerModel::ntc();
        let conv = ServerPowerModel::conventional_e5_2620();
        assert!(dynamic_range(&ntc, ntc.fmax()) > dynamic_range(&conv, conv.fmax()));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn too_few_steps_rejected() {
        let ntc = ServerPowerModel::ntc();
        let _ = ep_index(&ntc, ntc.fmax(), 1);
    }
}
