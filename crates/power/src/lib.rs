//! Server and data-center power models for near-threshold computing (NTC)
//! servers in 28nm UTBB FD-SOI, plus a conventional (Intel E5-2620 class)
//! comparison model.
//!
//! The model structure follows §IV of the paper, with four contributors to
//! server power:
//!
//! 1. **Core region** ([`CoreRegionModel`]) — Cortex-A57 cores with L1/L2
//!    caches: dynamic power `Ceff·V²·f`, exponential-in-V leakage, and a
//!    24% discount while in the wait-for-memory (WFM) state.
//! 2. **Last-level cache** ([`LlcModel`]) — leakage per 256 KB SRAM block
//!    plus per-access read/write energy for 128-bit accesses.
//! 3. **Uncore** ([`UncoreModel`]) — memory controller, peripherals, IO and
//!    motherboard: an 11.84 W constant component, a 1.6–9 W component
//!    proportional to the operating point, and 15 W of motherboard/fan/SSD
//!    (the "static power" knob swept by Fig. 7).
//! 4. **DRAM** ([`DramModel`]) — 15.5 mW/GB idle, 155 mW/GB with banks
//!    active, and 800 pJ per byte read.
//!
//! [`ServerPowerModel`] composes the four; [`DataCenterPowerModel`] lifts a
//! server model to the data-center level and exposes the worst-case power
//! surface of Fig. 1 together with the frequency optimum
//! `F_NTC_opt ≈ 1.9 GHz` that motivates EPACT.
//!
//! # Examples
//!
//! ```
//! use ntc_power::{DataCenterPowerModel, ServerPowerModel};
//! use ntc_units::Percent;
//!
//! let dc = DataCenterPowerModel::new(ServerPowerModel::ntc(), 80);
//! let (f_opt, _) = dc.optimal_frequency(Percent::new(20.0));
//! assert!((f_opt.as_ghz() - 1.9).abs() < 0.35);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod core_region;
mod datacenter;
mod dram;
mod fdsoi;
mod llc;
pub mod proportionality;
pub mod psu;
mod server;
pub mod thermal;
mod uncore;
pub mod validation;
pub mod variation;

pub use core_region::CoreRegionModel;
pub use datacenter::DataCenterPowerModel;
pub use dram::DramModel;
pub use fdsoi::VfCurve;
pub use llc::LlcModel;
pub use server::{PowerBreakdown, ServerLoad, ServerPowerModel};
pub use uncore::UncoreModel;
