//! Validation of the power model against every constant the paper
//! publishes (§IV) — executable documentation of the calibration.
//!
//! Each function returns the relative error between the model and the
//! paper's figure; the test suite pins them all near zero. If a model
//! refactor drifts from the published characterization, these tests
//! fail first.

use ntc_units::{Frequency, Percent, Power};

use crate::{DataCenterPowerModel, ServerPowerModel};

/// Relative error of the uncore constant component vs the paper's
/// 11.84 W.
pub fn uncore_constant_error() -> f64 {
    let u = crate::UncoreModel::ntc_server();
    let constant = u.static_power().as_watts() - u.motherboard().as_watts();
    (constant - 11.84).abs() / 11.84
}

/// Relative errors of the proportional uncore component endpoints vs
/// the paper's 1.6 W and 9 W.
pub fn uncore_proportional_errors() -> (f64, f64) {
    let u = crate::UncoreModel::ntc_server();
    let lo = u.proportional(Frequency::from_mhz(100.0)).as_watts();
    let hi = u.proportional(Frequency::from_ghz(3.1)).as_watts();
    ((lo - 1.6).abs() / 1.6, (hi - 9.0).abs() / 9.0)
}

/// Relative errors of DRAM idle/active power per GB vs the paper's
/// 15.5 and 155 mW/GB.
pub fn dram_background_errors() -> (f64, f64) {
    let d = crate::DramModel::ddr4_16gb();
    let gb = d.capacity().as_gib();
    let idle = d.background(Percent::ZERO).as_milliwatts() / gb;
    let active = d.background(Percent::FULL).as_milliwatts() / gb;
    ((idle - 15.5).abs() / 15.5, (active - 155.0).abs() / 155.0)
}

/// Relative error of the DRAM read energy vs the paper's 800 pJ/B.
pub fn dram_read_energy_error() -> f64 {
    let d = crate::DramModel::ddr4_16gb();
    // 1 B/s stream costs exactly the per-byte energy in watts.
    let per_byte = d.access(1.0).as_watts() * 1e12;
    (per_byte - 800.0).abs() / 800.0
}

/// Relative error of the WFM discount vs the paper's 24%.
pub fn wfm_discount_error() -> f64 {
    let c = crate::CoreRegionModel::ntc_a57(16);
    (c.wfm_discount() - 0.24).abs() / 0.24
}

/// Relative error of the motherboard power vs the paper's 15 W.
pub fn motherboard_error() -> f64 {
    let u = crate::UncoreModel::ntc_server();
    (u.motherboard().as_watts() - 15.0).abs() / 15.0
}

/// Deviation of the model's data-center-optimal frequency from the
/// paper's 1.9 GHz, in MHz.
pub fn f_ntc_opt_deviation_mhz() -> f64 {
    let dc = DataCenterPowerModel::new(ServerPowerModel::ntc(), 80);
    (dc.ntc_optimal_frequency().as_mhz() - 1900.0).abs()
}

/// A one-line validation report.
pub fn report() -> String {
    let (p_lo, p_hi) = uncore_proportional_errors();
    let (d_idle, d_act) = dram_background_errors();
    format!(
        "uncore const {:.2}% | prop lo {:.2}% hi {:.2}% | motherboard {:.2}% | \
         dram idle {:.2}% active {:.2}% read-E {:.2}% | WFM {:.2}% | F_NTC_opt off by {:.0} MHz",
        uncore_constant_error() * 100.0,
        p_lo * 100.0,
        p_hi * 100.0,
        motherboard_error() * 100.0,
        d_idle * 100.0,
        d_act * 100.0,
        dram_read_energy_error() * 100.0,
        wfm_discount_error() * 100.0,
        f_ntc_opt_deviation_mhz()
    )
}

/// Worst-case power of a full 600-server NTC data center at Fmax —
/// a sanity anchor (600 × ~132 W ≈ 79 kW).
pub fn full_dc_peak() -> Power {
    DataCenterPowerModel::new(ServerPowerModel::ntc(), 600)
        .worst_case_power(Percent::new(100.0), Frequency::from_ghz(3.1))
        .expect("100% at Fmax is feasible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_constants_are_exact() {
        assert!(uncore_constant_error() < 1e-9);
        let (lo, hi) = uncore_proportional_errors();
        assert!(lo < 1e-9 && hi < 1e-9);
        let (idle, act) = dram_background_errors();
        assert!(idle < 1e-6 && act < 1e-6);
        assert!(dram_read_energy_error() < 1e-6);
        assert!(wfm_discount_error() < 1e-9);
        assert!(motherboard_error() < 1e-9);
    }

    #[test]
    fn optimal_frequency_matches_paper() {
        assert_eq!(f_ntc_opt_deviation_mhz(), 0.0, "F_NTC_opt must be 1.9 GHz");
    }

    #[test]
    fn report_is_informative() {
        let r = report();
        assert!(r.contains("F_NTC_opt"));
        assert!(r.contains("WFM"));
    }

    #[test]
    fn dc_peak_magnitude() {
        let p = full_dc_peak().as_kilowatts();
        assert!(
            (60.0..110.0).contains(&p),
            "600 NTC servers at Fmax should draw ~80 kW, got {p:.1} kW"
        );
    }
}
