//! Process-variation guardbands in the near-threshold regime.
//!
//! Near-threshold operation amplifies within-die parameter variation:
//! delay sensitivity to threshold-voltage spread grows steeply as Vdd
//! approaches Vth (the core challenge of the paper's reference [9],
//! EnergySmart). A practical NTC server must therefore add a voltage
//! *guardband* on top of the nominal V–f curve, and the guardband is
//! larger at low voltage. This module models that margin and exposes
//! how it erodes (but does not eliminate) the energy-proportionality
//! advantage — the NTC server's optimum stays far below Fmax.

use ntc_units::Voltage;
use serde::{Deserialize, Serialize};

use crate::VfCurve;

/// A voltage guardband model: the margin added to the nominal supply to
/// cover within-die variation, growing as the supply approaches the
/// threshold voltage:
///
/// ```text
/// ΔV(V) = sigma_mv · k / (V − Vth)
/// ```
///
/// # Examples
///
/// ```
/// use ntc_power::variation::GuardbandModel;
/// use ntc_units::Voltage;
///
/// let g = GuardbandModel::fdsoi_28nm_typical();
/// let near = g.margin(Voltage::from_volts(0.46));
/// let nominal = g.margin(Voltage::from_volts(1.15));
/// assert!(near > nominal, "NTC operation needs larger margins");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardbandModel {
    /// Device threshold voltage.
    pub vth: Voltage,
    /// Vth standard deviation in millivolts (within-die).
    pub sigma_mv: f64,
    /// Sensitivity constant (dimensionless; ~3 sigma coverage).
    pub k: f64,
}

impl GuardbandModel {
    /// Typical 28nm FD-SOI corner: Vth ≈ 0.38 V, σ(Vth) ≈ 12 mV,
    /// 3σ coverage. FD-SOI's undoped channel keeps σ small — one of the
    /// reasons the paper picks the technology for NTC.
    pub fn fdsoi_28nm_typical() -> Self {
        Self {
            vth: Voltage::from_volts(0.38),
            sigma_mv: 12.0,
            k: 0.15,
        }
    }

    /// A bulk-CMOS corner with doubled Vth spread (random dopant
    /// fluctuation), for comparison.
    pub fn bulk_28nm_typical() -> Self {
        Self {
            vth: Voltage::from_volts(0.42),
            sigma_mv: 25.0,
            k: 0.15,
        }
    }

    /// The guardband at nominal supply `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is at or below the threshold voltage (no
    /// functional operating point exists there).
    pub fn margin(&self, v: Voltage) -> Voltage {
        assert!(
            v > self.vth,
            "supply {v} must exceed the threshold voltage {}",
            self.vth
        );
        let overdrive = v.as_volts() - self.vth.as_volts();
        Voltage::from_volts(self.sigma_mv * 1e-3 * self.k / overdrive * 3.0)
    }

    /// The guarded supply: nominal + margin.
    pub fn guarded(&self, v: Voltage) -> Voltage {
        v + self.margin(v)
    }

    /// Applies the guardband to a whole V–f curve, producing the curve
    /// a variation-aware integration would actually ship.
    pub fn apply(&self, curve: &VfCurve) -> VfCurve {
        let points = curve
            .dvfs_levels()
            .into_iter()
            .map(|f| (f, self.guarded(curve.voltage_at(f))))
            .collect();
        VfCurve::new(points)
    }

    /// Relative dynamic-power penalty of the guardband at supply `v`
    /// (`(V+ΔV)²/V² − 1`).
    pub fn power_penalty(&self, v: Voltage) -> f64 {
        let g = self.guarded(v);
        g.squared() / v.squared() - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreRegionModel, DataCenterPowerModel, LlcModel, ServerPowerModel, UncoreModel};
    use ntc_units::Percent;

    #[test]
    fn margin_grows_toward_threshold() {
        let g = GuardbandModel::fdsoi_28nm_typical();
        let m_ntc = g.margin(Voltage::from_volts(0.46)).as_millivolts();
        let m_mid = g.margin(Voltage::from_volts(0.78)).as_millivolts();
        let m_nom = g.margin(Voltage::from_volts(1.15)).as_millivolts();
        assert!(m_ntc > 3.0 * m_mid / 2.0);
        assert!(m_mid > m_nom);
        // near-threshold margins are tens of millivolts, not volts
        assert!((20.0..120.0).contains(&m_ntc), "margin {m_ntc:.1} mV");
    }

    #[test]
    fn fdsoi_needs_less_margin_than_bulk() {
        let fdsoi = GuardbandModel::fdsoi_28nm_typical();
        let bulk = GuardbandModel::bulk_28nm_typical();
        let v = Voltage::from_volts(0.55);
        assert!(fdsoi.margin(v) < bulk.margin(v));
    }

    #[test]
    fn guarded_curve_is_still_monotone() {
        let g = GuardbandModel::fdsoi_28nm_typical();
        let guarded = g.apply(&VfCurve::fdsoi_28nm_ntc());
        // VfCurve::new re-validates monotonicity; also spot-check levels
        for f in guarded.dvfs_levels() {
            assert!(
                guarded.voltage_at(f) >= VfCurve::fdsoi_28nm_ntc().voltage_at(f),
                "guardband can only raise the supply"
            );
        }
    }

    #[test]
    fn power_penalty_is_worst_in_deep_ntc() {
        let g = GuardbandModel::fdsoi_28nm_typical();
        let deep = g.power_penalty(Voltage::from_volts(0.46));
        let nominal = g.power_penalty(Voltage::from_volts(1.15));
        assert!(deep > 4.0 * nominal);
        assert!(deep < 0.6, "penalty stays a fraction, not a multiple");
    }

    #[test]
    fn guardbanded_dc_optimum_stays_well_below_fmax() {
        // The headline robustness check: variation margins shift the
        // data-center optimum slightly but do not restore
        // consolidation-at-Fmax.
        let g = GuardbandModel::fdsoi_28nm_typical();
        let guarded_curve = g.apply(&VfCurve::fdsoi_28nm_ntc());
        let cores = CoreRegionModel::new(guarded_curve, 16, 1.3e-9, 2.0e-4, 0.15, 0.24);
        let server = ServerPowerModel::from_parts(
            cores,
            LlcModel::fdsoi_16mb(),
            UncoreModel::ntc_server(),
            crate::DramModel::ddr4_16gb(),
            19.2e9,
        );
        let dc = DataCenterPowerModel::new(server, 80);
        let f = dc.ntc_optimal_frequency();
        assert!(
            (1.4..=2.4).contains(&f.as_ghz()),
            "guardbanded optimum must stay near 1.9 GHz, got {f}"
        );
        // and the optimum still beats Fmax comfortably at low util
        let u = Percent::new(20.0);
        let p_opt = dc.worst_case_power(u, f).expect("feasible");
        let p_max = dc
            .worst_case_power(u, dc.server().fmax())
            .expect("feasible");
        assert!(p_opt < p_max);
    }

    #[test]
    #[should_panic(expected = "must exceed the threshold")]
    fn below_threshold_rejected() {
        let g = GuardbandModel::fdsoi_28nm_typical();
        let _ = g.margin(Voltage::from_volts(0.3));
    }
}
