use ntc_units::{Energy, MemBytes, Power, Voltage};
use serde::{Deserialize, Serialize};

/// Power model of the last-level cache (§IV-2 of the paper).
///
/// The paper characterizes a 256 KB SRAM block in 28nm UTBB FD-SOI:
/// leakage power per block at each voltage level, plus read and write
/// energies per 128-bit access. A 16 MB LLC is 64 such blocks.
///
/// # Examples
///
/// ```
/// use ntc_power::LlcModel;
/// use ntc_units::{MemBytes, Voltage};
///
/// let llc = LlcModel::fdsoi_16mb();
/// assert_eq!(llc.capacity(), MemBytes::from_mib(16));
/// let leak = llc.leakage(Voltage::from_volts(0.78));
/// assert!(leak.as_watts() > 0.0 && leak.as_watts() < 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlcModel {
    capacity: MemBytes,
    block_size: MemBytes,
    /// Leakage of one block at the reference voltage, in watts.
    block_leak_ref_watts: f64,
    /// Reference voltage for the leakage characterization.
    ref_voltage: Voltage,
    /// Read energy per 128-bit access at the reference voltage.
    read_energy: Energy,
    /// Write energy per 128-bit access at the reference voltage.
    write_energy: Energy,
}

impl LlcModel {
    /// The NTC server's 16 MB FD-SOI LLC: 64 blocks of 256 KB,
    /// 50 pJ reads / 62 pJ writes per 128-bit access at 1.15 V.
    pub fn fdsoi_16mb() -> Self {
        Self::new(
            MemBytes::from_mib(16),
            MemBytes::from_kib(256),
            0.030,
            Voltage::from_volts(1.15),
            Energy::from_picojoules(50.0),
            Energy::from_picojoules(62.0),
        )
    }

    /// A conventional 15 MB bulk LLC (E5-2620 class) with substantially
    /// higher leakage per block.
    pub fn bulk_15mb() -> Self {
        Self::new(
            MemBytes::from_mib(15),
            MemBytes::from_kib(256),
            0.120,
            Voltage::from_volts(1.20),
            Energy::from_picojoules(80.0),
            Energy::from_picojoules(95.0),
        )
    }

    /// Builds an LLC model from raw parameters.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a whole number of blocks or any
    /// energy/leakage parameter is non-positive.
    pub fn new(
        capacity: MemBytes,
        block_size: MemBytes,
        block_leak_ref_watts: f64,
        ref_voltage: Voltage,
        read_energy: Energy,
        write_energy: Energy,
    ) -> Self {
        assert!(block_size.as_bytes() > 0, "block size must be positive");
        assert!(
            capacity.as_bytes().is_multiple_of(block_size.as_bytes()),
            "LLC capacity must be a whole number of SRAM blocks"
        );
        assert!(block_leak_ref_watts > 0.0, "block leakage must be positive");
        assert!(
            ref_voltage > Voltage::ZERO,
            "reference voltage must be positive"
        );
        Self {
            capacity,
            block_size,
            block_leak_ref_watts,
            ref_voltage,
            read_energy,
            write_energy,
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> MemBytes {
        self.capacity
    }

    /// Number of SRAM blocks.
    pub fn num_blocks(&self) -> u64 {
        self.capacity.as_bytes() / self.block_size.as_bytes()
    }

    /// Leakage power of the whole LLC at supply voltage `v`.
    ///
    /// SRAM leakage in FD-SOI scales roughly with the cube of the supply
    /// voltage over the operational range (combined DIBL and gate-leakage
    /// reduction), which matches the multi-voltage characterization the
    /// paper performed on the 256 KB block.
    pub fn leakage(&self, v: Voltage) -> Power {
        let scale = (v.as_volts() / self.ref_voltage.as_volts()).powi(3);
        Power::from_watts(self.block_leak_ref_watts * self.num_blocks() as f64 * scale)
    }

    /// Dynamic power from `reads_per_sec` and `writes_per_sec` 128-bit
    /// accesses at supply voltage `v` (access energy scales with `V²`).
    pub fn dynamic(&self, v: Voltage, reads_per_sec: f64, writes_per_sec: f64) -> Power {
        assert!(
            reads_per_sec >= 0.0 && writes_per_sec >= 0.0,
            "access rates must be non-negative"
        );
        let vscale = (v.as_volts() / self.ref_voltage.as_volts()).powi(2);
        let watts = (self.read_energy.as_joules() * reads_per_sec
            + self.write_energy.as_joules() * writes_per_sec)
            * vscale;
        Power::from_watts(watts)
    }

    /// Total LLC power for a given access mix.
    pub fn power(&self, v: Voltage, reads_per_sec: f64, writes_per_sec: f64) -> Power {
        self.leakage(v) + self.dynamic(v, reads_per_sec, writes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_count() {
        assert_eq!(LlcModel::fdsoi_16mb().num_blocks(), 64);
        assert_eq!(LlcModel::bulk_15mb().num_blocks(), 60);
    }

    #[test]
    fn leakage_scales_down_in_near_threshold() {
        let llc = LlcModel::fdsoi_16mb();
        let nominal = llc.leakage(Voltage::from_volts(1.15));
        let ntc = llc.leakage(Voltage::from_volts(0.46));
        assert!((nominal.as_watts() - 1.92).abs() < 1e-9);
        assert!(ntc.as_watts() < 0.2 * nominal.as_watts());
    }

    #[test]
    fn dynamic_power_from_access_rates() {
        let llc = LlcModel::fdsoi_16mb();
        // 1e9 reads/s at reference voltage = 50 pJ x 1e9 = 50 mW.
        let p = llc.dynamic(Voltage::from_volts(1.15), 1.0e9, 0.0);
        assert!((p.as_watts() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn total_power_is_sum() {
        let llc = LlcModel::fdsoi_16mb();
        let v = Voltage::from_volts(0.78);
        let total = llc.power(v, 1e8, 1e8);
        let parts = llc.leakage(v) + llc.dynamic(v, 1e8, 1e8);
        assert!((total.as_watts() - parts.as_watts()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_capacity_rejected() {
        let _ = LlcModel::new(
            MemBytes::from_kib(300),
            MemBytes::from_kib(256),
            0.03,
            Voltage::from_volts(1.0),
            Energy::from_picojoules(50.0),
            Energy::from_picojoules(60.0),
        );
    }
}
