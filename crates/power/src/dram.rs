use ntc_units::{Energy, MemBytes, Percent, Power};
use serde::{Deserialize, Serialize};

/// Power model of the DRAM banks (§IV-4 of the paper).
///
/// Characterized by direct measurement on an Intel Xeon v3 server and
/// interpolated with a linear model:
///
/// * **idle**: 15.5 mW per GB of installed DRAM,
/// * **active** (banks activated): 155 mW per GB,
/// * **read energy**: 800 pJ per byte read.
///
/// Memory power is therefore a linear function of the number of memory
/// accesses per second — the property that makes *consolidation* optimal
/// from the memory standpoint (§V-A), in tension with the CPU optimum.
///
/// # Examples
///
/// ```
/// use ntc_power::DramModel;
/// use ntc_units::{MemBytes, Percent};
///
/// let dram = DramModel::ddr4_16gb();
/// let idle = dram.power(Percent::ZERO, 0.0);
/// assert!((idle.as_watts() - 0.248).abs() < 1e-9); // 15.5 mW/GB x 16 GB
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    capacity: MemBytes,
    idle_mw_per_gb: f64,
    active_mw_per_gb: f64,
    read_energy_per_byte: Energy,
}

impl DramModel {
    /// The NTC server's 16 GB DDR4-2400 with the paper's constants.
    pub fn ddr4_16gb() -> Self {
        Self::new(
            MemBytes::from_gib(16),
            15.5,
            155.0,
            Energy::from_picojoules(800.0),
        )
    }

    /// A conventional server's 32 GB DDR3-1333 (higher idle power per GB,
    /// as measured on the 2012-era E5-2620 platforms).
    pub fn ddr3_32gb() -> Self {
        Self::new(
            MemBytes::from_gib(32),
            45.0,
            260.0,
            Energy::from_picojoules(1100.0),
        )
    }

    /// Builds a DRAM model from raw parameters.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero, any per-GB power is negative, or
    /// `active < idle`.
    pub fn new(
        capacity: MemBytes,
        idle_mw_per_gb: f64,
        active_mw_per_gb: f64,
        read_energy_per_byte: Energy,
    ) -> Self {
        assert!(capacity > MemBytes::ZERO, "DRAM capacity must be positive");
        assert!(idle_mw_per_gb >= 0.0, "idle power must be non-negative");
        assert!(
            active_mw_per_gb >= idle_mw_per_gb,
            "active power must be at least idle power"
        );
        Self {
            capacity,
            idle_mw_per_gb,
            active_mw_per_gb,
            read_energy_per_byte,
        }
    }

    /// Installed capacity.
    pub fn capacity(&self) -> MemBytes {
        self.capacity
    }

    /// Background (bank) power when `active_fraction` of the installed
    /// memory has its banks activated and the rest idles.
    pub fn background(&self, active_fraction: Percent) -> Power {
        let gb = self.capacity.as_gib();
        let a = active_fraction.as_fraction().min(1.0);
        let mw = gb * (self.idle_mw_per_gb * (1.0 - a) + self.active_mw_per_gb * a);
        Power::from_milliwatts(mw)
    }

    /// Access power for a read stream of `read_bytes_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if `read_bytes_per_sec` is negative or not finite.
    pub fn access(&self, read_bytes_per_sec: f64) -> Power {
        assert!(
            read_bytes_per_sec.is_finite() && read_bytes_per_sec >= 0.0,
            "read bandwidth must be finite and non-negative"
        );
        Power::from_watts(self.read_energy_per_byte.as_joules() * read_bytes_per_sec)
    }

    /// Total DRAM power for a given bank-activity fraction and read
    /// bandwidth.
    pub fn power(&self, active_fraction: Percent, read_bytes_per_sec: f64) -> Power {
        self.background(active_fraction) + self.access(read_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let d = DramModel::ddr4_16gb();
        assert!((d.background(Percent::ZERO).as_watts() - 16.0 * 0.0155).abs() < 1e-9);
        assert!((d.background(Percent::FULL).as_watts() - 16.0 * 0.155).abs() < 1e-9);
    }

    #[test]
    fn access_energy_is_800pj_per_byte() {
        let d = DramModel::ddr4_16gb();
        // 1 GB/s read stream: 800 pJ/B x 1e9 B/s = 0.8 W.
        let p = d.access(1.0e9);
        assert!((p.as_watts() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn linear_in_bandwidth() {
        let d = DramModel::ddr4_16gb();
        let p1 = d.access(2.0e9).as_watts();
        let p2 = d.access(4.0e9).as_watts();
        assert!((p2 - 2.0 * p1).abs() < 1e-12);
    }

    #[test]
    fn background_interpolates() {
        let d = DramModel::ddr4_16gb();
        let half = d.background(Percent::new(50.0)).as_watts();
        let idle = d.background(Percent::ZERO).as_watts();
        let full = d.background(Percent::FULL).as_watts();
        assert!((half - (idle + full) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn overcommitted_fraction_clamps() {
        let d = DramModel::ddr4_16gb();
        assert_eq!(
            d.background(Percent::new(150.0)),
            d.background(Percent::FULL)
        );
    }
}
