//! Temperature-dependent leakage scaling.
//!
//! The paper's measurements are taken at nominal operating temperature;
//! deployed data centers run servers across a band of inlet
//! temperatures, and sub-threshold leakage grows super-linearly with
//! junction temperature. This module provides the standard exponential
//! scaling used to transpose the FD-SOI leakage characterization to
//! other operating points — an extension hook for thermal-aware
//! follow-up studies (the paper's group's COMPUSAPIEN line of work).

use ntc_units::Power;
use serde::{Deserialize, Serialize};

/// Exponential leakage–temperature model:
/// `P_leak(T) = P_leak(T_ref) · exp((T − T_ref)/T_0)`.
///
/// # Examples
///
/// ```
/// use ntc_power::thermal::LeakageThermalModel;
/// use ntc_units::Power;
///
/// let m = LeakageThermalModel::fdsoi_28nm();
/// let at_ref = m.scale(Power::from_watts(1.0), 60.0);
/// assert!((at_ref.as_watts() - 1.0).abs() < 1e-12);
/// let hot = m.scale(Power::from_watts(1.0), 85.0);
/// assert!(hot.as_watts() > 1.3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageThermalModel {
    /// Reference junction temperature (°C) of the characterization.
    pub t_ref_celsius: f64,
    /// Exponential scale (°C per e-fold of leakage).
    pub t_scale_celsius: f64,
}

impl LeakageThermalModel {
    /// 28nm FD-SOI: leakage roughly doubles every ~45 °C around the
    /// 60 °C characterization point (FD-SOI's thin body suppresses the
    /// bulk junction component, flattening the slope vs bulk CMOS).
    pub fn fdsoi_28nm() -> Self {
        Self {
            t_ref_celsius: 60.0,
            t_scale_celsius: 65.0,
        }
    }

    /// Bulk 32nm (conventional server class): doubles every ~25 °C.
    pub fn bulk_32nm() -> Self {
        Self {
            t_ref_celsius: 60.0,
            t_scale_celsius: 36.0,
        }
    }

    /// Scales a leakage power characterized at `t_ref` to junction
    /// temperature `t_celsius`.
    ///
    /// # Panics
    ///
    /// Panics if `t_celsius` is not finite.
    pub fn scale(&self, leakage_at_ref: Power, t_celsius: f64) -> Power {
        assert!(t_celsius.is_finite(), "temperature must be finite");
        let factor = ((t_celsius - self.t_ref_celsius) / self.t_scale_celsius).exp();
        Power::from_watts(leakage_at_ref.as_watts() * factor)
    }

    /// The multiplicative factor alone.
    pub fn factor(&self, t_celsius: f64) -> f64 {
        ((t_celsius - self.t_ref_celsius) / self.t_scale_celsius).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_point_is_identity() {
        let m = LeakageThermalModel::fdsoi_28nm();
        assert!((m.factor(60.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_temperature() {
        let m = LeakageThermalModel::fdsoi_28nm();
        assert!(m.factor(40.0) < 1.0);
        assert!(m.factor(80.0) > m.factor(70.0));
    }

    #[test]
    fn fdsoi_flatter_than_bulk() {
        let fdsoi = LeakageThermalModel::fdsoi_28nm();
        let bulk = LeakageThermalModel::bulk_32nm();
        assert!(
            fdsoi.factor(90.0) < bulk.factor(90.0),
            "FD-SOI leakage must grow more slowly with temperature"
        );
    }

    #[test]
    fn scales_power_values() {
        let m = LeakageThermalModel::bulk_32nm();
        let p = m.scale(Power::from_watts(8.0), 96.0);
        assert!((p.as_watts() - 8.0 * (36.0f64 / 36.0).exp()).abs() < 1e-9);
    }
}
