use ntc_units::{Frequency, Voltage};
use serde::{Deserialize, Serialize};

/// A voltage–frequency operating curve.
///
/// The 28nm UTBB FD-SOI process sustains an ultra-wide voltage range: the
/// near-threshold region starts around 0.46 V (where the paper's prototype
/// measurements in [Rossi et al., IEEE Micro'17] live) and the nominal
/// overdrive point reaches 1.15 V at 3.1 GHz (matching the ultra-wide-range
/// Cortex-A9 silicon of [Jacquet et al., JSSC'14] scaled by the paper's
/// A57/A9 pipeline factor of 1.17×). Between table points the curve is
/// linearly interpolated; outside, it is clamped.
///
/// # Examples
///
/// ```
/// use ntc_power::VfCurve;
/// use ntc_units::Frequency;
///
/// let curve = VfCurve::fdsoi_28nm_ntc();
/// let v = curve.voltage_at(Frequency::from_ghz(1.9));
/// assert!(v.as_volts() > 0.7 && v.as_volts() < 0.9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VfCurve {
    /// `(frequency, voltage)` knots sorted by ascending frequency.
    points: Vec<(Frequency, Voltage)>,
}

impl VfCurve {
    /// Builds a curve from `(frequency, voltage)` knots.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two knots are given or if the knots are not
    /// strictly increasing in both frequency and voltage (a physical V–f
    /// curve is monotone).
    pub fn new(points: Vec<(Frequency, Voltage)>) -> Self {
        assert!(points.len() >= 2, "a V-f curve needs at least two knots");
        for w in points.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "V-f knots must be strictly increasing in frequency"
            );
            assert!(
                w[0].1 < w[1].1,
                "V-f knots must be strictly increasing in voltage"
            );
        }
        Self { points }
    }

    /// The 28nm UTBB FD-SOI near-threshold curve used for the NTC server
    /// (100 MHz @ 0.46 V … 3.1 GHz @ 1.15 V).
    pub fn fdsoi_28nm_ntc() -> Self {
        let mhz_v = [
            (100.0, 0.46),
            (300.0, 0.50),
            (500.0, 0.54),
            (800.0, 0.58),
            (1000.0, 0.62),
            (1200.0, 0.66),
            (1500.0, 0.70),
            (1700.0, 0.74),
            (1900.0, 0.78),
            (2100.0, 0.84),
            (2400.0, 0.92),
            (2700.0, 1.02),
            (3100.0, 1.15),
        ];
        Self::new(
            mhz_v
                .iter()
                .map(|&(m, v)| (Frequency::from_mhz(m), Voltage::from_volts(v)))
                .collect(),
        )
    }

    /// A conventional bulk-CMOS server curve (Intel E5-2620 class): a
    /// narrow voltage window, so power is nearly linear in frequency.
    pub fn bulk_conventional() -> Self {
        let mhz_v = [
            (1200.0, 0.95),
            (1600.0, 1.00),
            (2000.0, 1.08),
            (2400.0, 1.15),
        ];
        Self::new(
            mhz_v
                .iter()
                .map(|&(m, v)| (Frequency::from_mhz(m), Voltage::from_volts(v)))
                .collect(),
        )
    }

    /// The lowest frequency on the curve.
    pub fn fmin(&self) -> Frequency {
        self.points[0].0
    }

    /// The highest frequency on the curve.
    pub fn fmax(&self) -> Frequency {
        self.points[self.points.len() - 1].0
    }

    /// The supply voltage required to sustain `f`, linearly interpolated
    /// between knots and clamped to the curve's ends.
    pub fn voltage_at(&self, f: Frequency) -> Voltage {
        let fm = f.as_mhz();
        if fm <= self.points[0].0.as_mhz() {
            return self.points[0].1;
        }
        if fm >= self.points[self.points.len() - 1].0.as_mhz() {
            return self.points[self.points.len() - 1].1;
        }
        for w in self.points.windows(2) {
            let (f0, v0) = (w[0].0.as_mhz(), w[0].1.as_volts());
            let (f1, v1) = (w[1].0.as_mhz(), w[1].1.as_volts());
            if fm <= f1 {
                let t = (fm - f0) / (f1 - f0);
                return Voltage::from_volts(v0 + t * (v1 - v0));
            }
        }
        unreachable!("frequency within knot range must hit a segment")
    }

    /// The knot frequencies — the discrete DVFS levels exposed to the
    /// governor.
    pub fn dvfs_levels(&self) -> Vec<Frequency> {
        self.points.iter().map(|&(f, _)| f).collect()
    }

    /// The lowest DVFS level that is at least `f`, or `None` if `f`
    /// exceeds `fmax`.
    pub fn level_at_or_above(&self, f: Frequency) -> Option<Frequency> {
        self.points.iter().map(|&(lf, _)| lf).find(|&lf| lf >= f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ntc_curve_span() {
        let c = VfCurve::fdsoi_28nm_ntc();
        assert_eq!(c.fmin(), Frequency::from_mhz(100.0));
        assert_eq!(c.fmax(), Frequency::from_ghz(3.1));
        assert_eq!(
            c.voltage_at(Frequency::from_mhz(100.0)),
            Voltage::from_volts(0.46)
        );
        assert_eq!(
            c.voltage_at(Frequency::from_ghz(3.1)),
            Voltage::from_volts(1.15)
        );
    }

    #[test]
    fn interpolation_is_monotone() {
        let c = VfCurve::fdsoi_28nm_ntc();
        let mut last = Voltage::ZERO;
        for mhz in (100..=3100).step_by(50) {
            let v = c.voltage_at(Frequency::from_mhz(mhz as f64));
            assert!(v >= last, "voltage must not decrease with frequency");
            last = v;
        }
    }

    #[test]
    fn clamping_outside_range() {
        let c = VfCurve::fdsoi_28nm_ntc();
        assert_eq!(
            c.voltage_at(Frequency::from_mhz(10.0)),
            Voltage::from_volts(0.46)
        );
        assert_eq!(
            c.voltage_at(Frequency::from_ghz(9.9)),
            Voltage::from_volts(1.15)
        );
    }

    #[test]
    fn midpoint_interpolation() {
        let c = VfCurve::new(vec![
            (Frequency::from_mhz(1000.0), Voltage::from_volts(0.6)),
            (Frequency::from_mhz(2000.0), Voltage::from_volts(0.8)),
        ]);
        let v = c.voltage_at(Frequency::from_mhz(1500.0));
        assert!((v.as_volts() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn dvfs_levels_and_ceiling() {
        let c = VfCurve::fdsoi_28nm_ntc();
        assert_eq!(c.dvfs_levels().len(), 13);
        assert_eq!(
            c.level_at_or_above(Frequency::from_mhz(1850.0)),
            Some(Frequency::from_mhz(1900.0))
        );
        assert_eq!(c.level_at_or_above(Frequency::from_ghz(3.2)), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_rejected() {
        let _ = VfCurve::new(vec![
            (Frequency::from_mhz(2000.0), Voltage::from_volts(0.8)),
            (Frequency::from_mhz(1000.0), Voltage::from_volts(0.6)),
        ]);
    }
}
