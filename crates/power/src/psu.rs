//! Power-supply-unit efficiency: wall power vs DC power.
//!
//! Each NTC server has "its dedicated power supply" (§III-A). A PSU's
//! efficiency is load-dependent — poor at light load, peaking around
//! 50% of its rating (the 80 PLUS characteristic) — which *amplifies*
//! the energy-proportionality problem: an idle server's small DC draw
//! is divided by a small efficiency. The curve here lets data-center
//! studies report wall energy instead of DC energy.

use ntc_units::Power;
use serde::{Deserialize, Serialize};

/// A load-dependent PSU efficiency curve (piecewise-linear over load
/// fraction knots).
///
/// # Examples
///
/// ```
/// use ntc_power::psu::PsuModel;
/// use ntc_units::Power;
///
/// let psu = PsuModel::gold_200w();
/// let wall = psu.wall_power(Power::from_watts(100.0));
/// assert!(wall.as_watts() > 100.0 && wall.as_watts() < 120.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsuModel {
    rating: Power,
    /// `(load fraction, efficiency)` knots, ascending in load.
    knots: Vec<(f64, f64)>,
}

impl PsuModel {
    /// An 80 PLUS Gold 200 W unit — sized for the ~130 W NTC server.
    pub fn gold_200w() -> Self {
        Self::new(
            Power::from_watts(200.0),
            vec![
                (0.0, 0.60),
                (0.10, 0.82),
                (0.20, 0.87),
                (0.50, 0.92),
                (1.0, 0.89),
            ],
        )
    }

    /// An older 80 PLUS Bronze 450 W unit — typical of the E5-2620
    /// generation, oversized and inefficient at the light loads an
    /// energy-proportional fleet would impose.
    pub fn bronze_450w() -> Self {
        Self::new(
            Power::from_watts(450.0),
            vec![
                (0.0, 0.50),
                (0.10, 0.75),
                (0.20, 0.81),
                (0.50, 0.85),
                (1.0, 0.82),
            ],
        )
    }

    /// Builds a PSU from a rating and efficiency knots.
    ///
    /// # Panics
    ///
    /// Panics if the rating is zero, fewer than two knots are given,
    /// knots are not ascending in load, or any efficiency is outside
    /// `(0, 1]`.
    pub fn new(rating: Power, knots: Vec<(f64, f64)>) -> Self {
        assert!(rating > Power::ZERO, "PSU rating must be positive");
        assert!(knots.len() >= 2, "need at least two efficiency knots");
        for w in knots.windows(2) {
            assert!(w[0].0 < w[1].0, "knots must ascend in load fraction");
        }
        assert!(
            knots
                .iter()
                .all(|&(l, e)| (0.0..=1.0).contains(&l) && e > 0.0 && e <= 1.0),
            "knots must have load in [0,1] and efficiency in (0,1]"
        );
        Self { rating, knots }
    }

    /// Rated DC output power.
    pub fn rating(&self) -> Power {
        self.rating
    }

    /// Efficiency at a DC load (clamped to the knot range).
    pub fn efficiency(&self, dc_load: Power) -> f64 {
        let frac = (dc_load.as_watts() / self.rating.as_watts()).clamp(0.0, 1.0);
        let first = self.knots[0];
        if frac <= first.0 {
            return first.1;
        }
        for w in self.knots.windows(2) {
            let (l0, e0) = w[0];
            let (l1, e1) = w[1];
            if frac <= l1 {
                let t = (frac - l0) / (l1 - l0);
                return e0 + t * (e1 - e0);
            }
        }
        self.knots[self.knots.len() - 1].1
    }

    /// Wall (AC) power drawn to supply `dc_load`.
    pub fn wall_power(&self, dc_load: Power) -> Power {
        if dc_load == Power::ZERO {
            return Power::ZERO;
        }
        Power::from_watts(dc_load.as_watts() / self.efficiency(dc_load))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_peaks_midrange() {
        let psu = PsuModel::gold_200w();
        let light = psu.efficiency(Power::from_watts(10.0));
        let mid = psu.efficiency(Power::from_watts(100.0));
        let full = psu.efficiency(Power::from_watts(200.0));
        assert!(mid > light);
        assert!(mid > full);
        assert!((mid - 0.92).abs() < 1e-9);
    }

    #[test]
    fn wall_power_exceeds_dc_power() {
        let psu = PsuModel::gold_200w();
        for w in [5.0, 30.0, 100.0, 180.0] {
            let dc = Power::from_watts(w);
            assert!(psu.wall_power(dc) > dc);
        }
        assert_eq!(psu.wall_power(Power::ZERO), Power::ZERO);
    }

    #[test]
    fn light_load_penalty_amplifies_disproportionality() {
        // The same 28 W idle draw costs relatively more wall power on
        // the oversized bronze unit.
        let idle = Power::from_watts(28.0);
        let gold = PsuModel::gold_200w().wall_power(idle);
        let bronze = PsuModel::bronze_450w().wall_power(idle);
        assert!(bronze.as_watts() > gold.as_watts());
    }

    #[test]
    fn interpolation_is_continuous() {
        let psu = PsuModel::gold_200w();
        let e1 = psu.efficiency(Power::from_watts(39.9));
        let e2 = psu.efficiency(Power::from_watts(40.1));
        assert!((e1 - e2).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn unsorted_knots_rejected() {
        let _ = PsuModel::new(Power::from_watts(100.0), vec![(0.5, 0.9), (0.2, 0.8)]);
    }
}
