//! Property-based tests for the time-series substrate.

use ntc_trace::{stats, DayCache, TimeSeries};
use proptest::prelude::*;

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..100.0, len)
}

proptest! {
    #[test]
    fn correlation_is_bounded(a in finite_vec(32), b in finite_vec(32)) {
        let r = stats::pearson_correlation(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn correlation_is_symmetric(a in finite_vec(16), b in finite_vec(16)) {
        let r1 = stats::pearson_correlation(&a, &b);
        let r2 = stats::pearson_correlation(&b, &a);
        prop_assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn self_correlation_is_one_or_zero(a in finite_vec(16)) {
        let r = stats::pearson_correlation(&a, &a);
        // 1 for non-constant series, 0 for (numerically) constant ones.
        prop_assert!((r - 1.0).abs() < 1e-9 || r == 0.0);
    }

    #[test]
    fn distance_is_a_metric(a in finite_vec(16), b in finite_vec(16), c in finite_vec(16)) {
        let dab = stats::euclidean_distance(&a, &b);
        let dba = stats::euclidean_distance(&b, &a);
        let dac = stats::euclidean_distance(&a, &c);
        let dcb = stats::euclidean_distance(&c, &b);
        prop_assert!(dab >= 0.0);
        prop_assert!((dab - dba).abs() < 1e-9);
        // triangle inequality
        prop_assert!(dab <= dac + dcb + 1e-9);
        // identity of indiscernibles (one direction)
        prop_assert!(stats::euclidean_distance(&a, &a) < 1e-12);
    }

    #[test]
    fn complementary_inverts_shape(v in finite_vec(32)) {
        let s = TimeSeries::from_values(v);
        let c = s.complementary();
        // peak sample maps to zero headroom
        prop_assert!(c.floor() >= 0.0);
        let flat = s.add(&c);
        let peak = s.peak();
        prop_assert!(flat.values().iter().all(|&x| (x - peak).abs() < 1e-9));
        // and for non-constant series the correlation with the complement is -1
        let r = s.correlation(&c);
        prop_assert!(r == 0.0 || (r + 1.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_equals_sum_of_samples(a in finite_vec(8), b in finite_vec(8)) {
        let sa = TimeSeries::from_values(a.clone());
        let sb = TimeSeries::from_values(b.clone());
        let agg = TimeSeries::aggregate(8, [&sa, &sb]);
        for i in 0..8 {
            prop_assert!((agg.at(i) - (a[i] + b[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn peak_bounds_every_sample(v in finite_vec(32)) {
        let s = TimeSeries::from_values(v);
        let p = s.peak();
        prop_assert!(s.values().iter().all(|&x| x <= p));
        prop_assert!(s.floor() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= p + 1e-9);
    }

    #[test]
    fn quantile_monotone(v in finite_vec(32), p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(stats::quantile(&v, lo) <= stats::quantile(&v, hi));
    }

    /// The day cache's O(1) windowed moments must agree with the direct
    /// `stats` computations on the copied sub-window for every random
    /// window of a random day. Values are <= 100 and days are 64
    /// samples, so prefix-sum cancellation stays far below the 1e-6
    /// tolerance.
    #[test]
    fn windowed_moments_match_direct_stats(
        a in finite_vec(64),
        b in finite_vec(64),
        start in 0usize..60,
        width in 2usize..32,
    ) {
        let end = (start + width).min(64);
        let series = [TimeSeries::from_values(a.clone()), TimeSeries::from_values(b.clone())];
        let day = DayCache::new(&series);
        let wa = &a[start..end];
        let wb = &b[start..end];
        prop_assert!((day.window_mean(0, start..end) - stats::mean(wa)).abs() < 1e-6);
        prop_assert!((day.window_variance(1, start..end) - stats::variance(wb)).abs() < 1e-6);
        let direct = stats::covariance(wa, wb);
        let fast = day.window_covariance(0, 1, start..end);
        prop_assert!((fast - direct).abs() < 1e-6, "cov {fast} vs {direct} on [{start}, {end})");
        // covariance is symmetric through the triangular pair storage
        prop_assert!((day.window_covariance(1, 0, start..end) - fast).abs() == 0.0);
    }
}
