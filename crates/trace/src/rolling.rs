//! Rolling and exponentially weighted statistics over time series.
//!
//! Used by trace analysis and by smoothing front-ends to the
//! predictors: cloud utilization data carries sampling jitter that a
//! short EWMA removes without disturbing the daily structure.

use crate::TimeSeries;

/// Exponentially weighted moving average with smoothing factor
/// `alpha ∈ (0, 1]` (1 = no smoothing).
///
/// # Panics
///
/// Panics if `alpha` is outside `(0, 1]`.
///
/// # Examples
///
/// ```
/// use ntc_trace::{rolling, TimeSeries};
///
/// let noisy = TimeSeries::from_values(vec![0.0, 10.0, 0.0, 10.0]);
/// let smooth = rolling::ewma(&noisy, 0.5);
/// assert!(smooth.peak() < 10.0);
/// ```
pub fn ewma(series: &TimeSeries, alpha: f64) -> TimeSeries {
    assert!(
        alpha > 0.0 && alpha <= 1.0,
        "EWMA smoothing factor must be in (0, 1], got {alpha}"
    );
    let mut state: Option<f64> = None;
    series
        .values()
        .iter()
        .map(|&v| {
            let s = match state {
                None => v,
                Some(prev) => alpha * v + (1.0 - alpha) * prev,
            };
            state = Some(s);
            s
        })
        .collect()
}

/// Centered-free rolling mean over a trailing window of `window`
/// samples (shorter at the start).
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn rolling_mean(series: &TimeSeries, window: usize) -> TimeSeries {
    assert!(window > 0, "window must be positive");
    let v = series.values();
    let mut sum = 0.0;
    (0..v.len())
        .map(|i| {
            sum += v[i];
            if i >= window {
                sum -= v[i - window];
            }
            sum / window.min(i + 1) as f64
        })
        .collect()
}

/// Rolling maximum over a trailing window of `window` samples.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn rolling_max(series: &TimeSeries, window: usize) -> TimeSeries {
    assert!(window > 0, "window must be positive");
    let v = series.values();
    (0..v.len())
        .map(|i| {
            let start = i.saturating_sub(window - 1);
            v[start..=i].iter().copied().fold(f64::MIN, f64::max)
        })
        .collect()
}

/// Detects level shifts: sample indices where the trailing short-window
/// mean deviates from the long-window mean by more than `threshold`.
///
/// This is the detector used to study the abrupt changes that drive the
/// paper's Fig. 4 violations.
///
/// # Panics
///
/// Panics if either window is zero or `short >= long`.
pub fn level_shifts(series: &TimeSeries, short: usize, long: usize, threshold: f64) -> Vec<usize> {
    assert!(short > 0 && long > 0, "windows must be positive");
    assert!(short < long, "short window must be shorter than long");
    let s = rolling_mean(series, short);
    let l = rolling_mean(series, long);
    (long..series.len())
        .filter(|&i| (s.at(i) - l.at(i)).abs() > threshold)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::from_values(v.to_vec())
    }

    #[test]
    fn ewma_converges_to_constant() {
        let s = ewma(&TimeSeries::constant(50, 7.0), 0.3);
        assert!(s.values().iter().all(|&v| (v - 7.0).abs() < 1e-12));
    }

    #[test]
    fn ewma_alpha_one_is_identity() {
        let orig = ts(&[1.0, 5.0, 2.0]);
        assert_eq!(ewma(&orig, 1.0), orig);
    }

    #[test]
    fn rolling_mean_window_one_is_identity() {
        let orig = ts(&[1.0, 5.0, 2.0]);
        assert_eq!(rolling_mean(&orig, 1), orig);
    }

    #[test]
    fn rolling_mean_known_values() {
        let s = rolling_mean(&ts(&[2.0, 4.0, 6.0, 8.0]), 2);
        assert_eq!(s.values(), &[2.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn rolling_max_tracks_peaks() {
        let s = rolling_max(&ts(&[1.0, 9.0, 2.0, 3.0]), 2);
        assert_eq!(s.values(), &[1.0, 9.0, 9.0, 3.0]);
    }

    #[test]
    fn shift_detector_fires_on_steps() {
        let mut v = vec![10.0; 40];
        v.extend(vec![30.0; 40]);
        let hits = level_shifts(&ts(&v), 3, 12, 5.0);
        assert!(!hits.is_empty());
        assert!(hits.iter().any(|&i| (40..55).contains(&i)));
        // and stays quiet on the flat series
        assert!(level_shifts(&TimeSeries::constant(80, 10.0), 3, 12, 5.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn bad_alpha_rejected() {
        let _ = ewma(&TimeSeries::constant(3, 1.0), 0.0);
    }
}
