//! Day-level prefix-sum cache answering windowed moments in O(1).
//!
//! The `ntc_datacenter` week simulation produces one day-ahead forecast
//! per day and then re-plans EPACT on every hourly slot of that day —
//! 24 windows into the *same* underlying series. Rebuilding a
//! [`CorrelationCache`](crate::CorrelationCache) from scratch per slot
//! re-walks every series 24 times. [`DayCache`] hoists that work to the
//! day level with classic prefix-sum algebra: for series `x` it stores
//!
//! ```text
//! P[t]  = Σ_{s<t} x[s]          (value prefix sums)
//! Q[t]  = Σ_{s<t} x[s]²         (square prefix sums)
//! R[t]  = Σ_{s<t} x[s]·y[s]     (pairwise product prefix sums)
//! ```
//!
//! so any window `[a, b)` of width `w = b − a` answers
//!
//! ```text
//! mean      = (P[b] − P[a]) / w
//! variance  = (Q[b] − Q[a]) / w − mean²           (clamped at ≥ 0)
//! cov(x, y) = (R[b] − R[a]) / w − mean_x · mean_y
//! ```
//!
//! in O(1). Pairwise product rows are built on first use and memoized
//! (triangular storage, one row per unordered pair), so a day in which
//! the allocator never compares VMs `i` and `j` never pays for them.
//!
//! # Block planes
//!
//! The week simulation only ever asks for windows aligned to slot
//! boundaries (each window starts and ends on a multiple of the
//! samples-per-slot grid). [`DayCache::with_block_size`] exploits
//! that: per-pair product sums are kept as *per-block* partial sums in
//! slot-major planes — one contiguous `num_pairs`-wide plane per
//! block — so a slot's admit loop streams through one compact plane
//! (L1/L2-resident and reused by all re-plans of the day) instead of
//! hopping across one 8·(len+1)-byte prefix row per pair. Unaligned
//! windows transparently fall back to the full prefix rows.
//!
//! The uncentered forms trade a little precision for the O(1) window
//! query: on near-constant windows the subtraction can cancel
//! catastrophically, which is why variance is clamped at zero and why
//! [`CorrelationCache::from_day_window`](crate::CorrelationCache::from_day_window)
//! recomputes per-series means and variances exactly from the raw
//! window (see there).
//!
//! # Examples
//!
//! ```
//! use ntc_trace::{stats, DayCache, TimeSeries};
//!
//! let day = DayCache::new(&[
//!     TimeSeries::from_values(vec![1.0, 2.0, 3.0, 4.0]),
//!     TimeSeries::from_values(vec![4.0, 3.0, 2.0, 1.0]),
//! ]);
//! let direct = stats::covariance(&[2.0, 3.0], &[3.0, 2.0]);
//! assert!((day.window_covariance(0, 1, 1..3) - direct).abs() < 1e-12);
//! ```

use std::cell::RefCell;
use std::ops::Range;

use crate::TimeSeries;

/// Why a series set cannot back a cache.
///
/// [`std::fmt::Display`] reproduces the wording of the legacy assertion
/// messages so panicking wrappers stay drop-in compatible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The series set was empty.
    EmptySeriesSet,
    /// The series in the set have differing lengths.
    RaggedSeries,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::EmptySeriesSet => write!(f, "correlation cache needs a series set"),
            Error::RaggedSeries => write!(f, "all series must cover the same slot"),
        }
    }
}

impl std::error::Error for Error {}

/// Lazily-filled prefix sums and pairwise product sums. Everything in
/// here is built on first use: the simulation hot path only ever
/// touches the block planes, so it never pays for the per-series
/// prefixes, and vice versa for the generic windowed-moment API.
#[derive(Debug)]
struct PairStore {
    /// Row-major `num_series × (len + 1)` value prefix sums, plus the
    /// matching square prefix sums. Empty until the first
    /// `window_sum`/`window_mean`/`window_variance` query.
    prefix: Vec<f64>,
    sq_prefix: Vec<f64>,
    /// Triangular pairwise product prefix rows, built lazily: entry
    /// `hi·(hi+1)/2 + lo` (for `lo ≤ hi`) is empty until first use,
    /// then a `len + 1` prefix row. Serves arbitrary windows.
    rows: Vec<Vec<f64>>,
    /// Slot-major block-sum planes, `blocks × num_pairs`: entry
    /// `k·num_pairs + pair` is `Σ x·y` over block `k`. One plane is
    /// contiguous across pairs, so a block-aligned window's admit loop
    /// streams rather than gathers. Empty until the first aligned
    /// query; the fill is wholesale — the consolidation policies
    /// compare every pair anyway, and a plane-major batch fill writes
    /// each plane sequentially instead of scattering one store per
    /// plane per pair.
    block_sums: Vec<f64>,
}

/// See the [module docs](self).
#[derive(Debug)]
pub struct DayCache {
    num_series: usize,
    len: usize,
    /// Block granularity for slot-aligned product sums; 0 disables the
    /// block planes and every window uses the prefix rows.
    block: usize,
    /// Row-major `num_series × len` raw values.
    values: Vec<f64>,
    pairs: RefCell<PairStore>,
}

impl DayCache {
    /// Builds the day cache. Construction only copies the raw values;
    /// every derived sum is computed lazily on first use.
    ///
    /// Fails with [`Error::EmptySeriesSet`] on an empty slice and
    /// [`Error::RaggedSeries`] when the series lengths differ.
    pub fn try_new(series: &[TimeSeries]) -> Result<Self, Error> {
        Self::try_with_block_size(series, 0)
    }

    /// [`try_new`](Self::try_new) with slot-major block planes of
    /// granularity `block` (see the [module docs](self)). A `block`
    /// that is zero or does not divide the day length disables the
    /// planes; the cache then behaves exactly like [`try_new`].
    pub fn try_with_block_size(series: &[TimeSeries], block: usize) -> Result<Self, Error> {
        if series.is_empty() {
            return Err(Error::EmptySeriesSet);
        }
        let len = series[0].len();
        if series.iter().any(|s| s.len() != len) {
            return Err(Error::RaggedSeries);
        }
        let num_series = series.len();
        let mut values = Vec::with_capacity(num_series * len);
        for s in series {
            values.extend_from_slice(s.values());
        }
        let block = if block > 0 && len.is_multiple_of(block) {
            block
        } else {
            0
        };
        let num_pairs = num_series * (num_series + 1) / 2;
        Ok(Self {
            num_series,
            len,
            block,
            values,
            pairs: RefCell::new(PairStore {
                prefix: Vec::new(),
                sq_prefix: Vec::new(),
                rows: vec![Vec::new(); num_pairs],
                block_sums: Vec::new(),
            }),
        })
    }

    /// Panicking form of [`try_new`](Self::try_new).
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty or the series lengths differ.
    #[track_caller]
    pub fn new(series: &[TimeSeries]) -> Self {
        match Self::try_new(series) {
            Ok(cache) => cache,
            Err(e) => panic!("{e}"),
        }
    }

    /// Panicking form of
    /// [`try_with_block_size`](Self::try_with_block_size).
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty or the series lengths differ.
    #[track_caller]
    pub fn with_block_size(series: &[TimeSeries], block: usize) -> Self {
        match Self::try_with_block_size(series, block) {
            Ok(cache) => cache,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of series in the day.
    pub fn num_series(&self) -> usize {
        self.num_series
    }

    /// Number of samples per series (the day length).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the day holds zero samples per series.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw values of series `i`.
    pub fn series(&self, i: usize) -> &[f64] {
        &self.values[i * self.len..(i + 1) * self.len]
    }

    /// Sum of series `i` over `window`, in O(1) once the per-series
    /// prefix sums exist (built on first use).
    pub fn window_sum(&self, i: usize, window: Range<usize>) -> f64 {
        self.check_window(&window);
        let store = &mut *self.pairs.borrow_mut();
        self.ensure_prefixes(store);
        let row = &store.prefix[i * (self.len + 1)..(i + 1) * (self.len + 1)];
        row[window.end] - row[window.start]
    }

    /// Population mean of series `i` over `window`, in O(1). An empty
    /// window yields 0, matching [`stats::mean`](crate::stats::mean).
    pub fn window_mean(&self, i: usize, window: Range<usize>) -> f64 {
        let w = window.len();
        if w == 0 {
            return 0.0;
        }
        self.window_sum(i, window) / w as f64
    }

    /// Population variance of series `i` over `window`, in O(1) and
    /// clamped at ≥ 0 (the uncentered form can cancel to a tiny
    /// negative). Windows shorter than 2 yield 0, matching
    /// [`stats::variance`](crate::stats::variance).
    pub fn window_variance(&self, i: usize, window: Range<usize>) -> f64 {
        let w = window.len();
        if w < 2 {
            return 0.0;
        }
        self.check_window(&window);
        let mean = self.window_mean(i, window.clone());
        let store = &mut *self.pairs.borrow_mut();
        self.ensure_prefixes(store);
        let row = &store.sq_prefix[i * (self.len + 1)..(i + 1) * (self.len + 1)];
        let mean_sq = (row[window.end] - row[window.start]) / w as f64;
        (mean_sq - mean * mean).max(0.0)
    }

    /// Builds the per-series value and square prefix sums if absent.
    fn ensure_prefixes(&self, store: &mut PairStore) {
        if !store.prefix.is_empty() {
            return;
        }
        store.prefix.reserve_exact(self.num_series * (self.len + 1));
        store
            .sq_prefix
            .reserve_exact(self.num_series * (self.len + 1));
        for i in 0..self.num_series {
            let (mut p, mut q) = (0.0, 0.0);
            store.prefix.push(p);
            store.sq_prefix.push(q);
            for &v in self.series(i) {
                p += v;
                q += v * v;
                store.prefix.push(p);
                store.sq_prefix.push(q);
            }
        }
    }

    /// Population covariance of series `i` and `j` over `window`, in
    /// O(1) once the pair's product prefix row exists (built and
    /// memoized on first use). Windows shorter than 2 yield 0, matching
    /// [`stats::covariance`](crate::stats::covariance).
    pub fn window_covariance(&self, i: usize, j: usize, window: Range<usize>) -> f64 {
        let mi = self.window_mean(i, window.clone());
        let mj = self.window_mean(j, window.clone());
        self.window_covariance_with_means(i, j, window, mi, mj)
    }

    /// [`window_covariance`](Self::window_covariance) with the window
    /// means supplied by the caller — lets
    /// [`CorrelationCache::from_day_window`](crate::CorrelationCache::from_day_window)
    /// pair the O(1) product sums with exactly-computed means.
    pub fn window_covariance_with_means(
        &self,
        i: usize,
        j: usize,
        window: Range<usize>,
        mean_i: f64,
        mean_j: f64,
    ) -> f64 {
        let w = window.len();
        if w < 2 {
            return 0.0;
        }
        self.check_window(&window);
        let products = self.window_product_sum(i, j, &window);
        products * (1.0 / w as f64) - mean_i * mean_j
    }

    /// Adds `cov(u, v)` over `window` into `acc[v]` for every series
    /// `v`, with the window means supplied by the caller — the bulk
    /// form of
    /// [`window_covariance_with_means`](Self::window_covariance_with_means)
    /// behind the allocator's admit loop. A single `RefCell` borrow and
    /// one window-bound read serve the whole row, so the per-pair cost
    /// is two prefix loads and a handful of flops; the per-value
    /// arithmetic is identical to the scalar form. Windows shorter
    /// than 2 add zero everywhere.
    pub fn accumulate_window_covariances(
        &self,
        u: usize,
        window: Range<usize>,
        means: &[f64],
        acc: &mut [f64],
    ) {
        assert_eq!(means.len(), self.num_series, "one mean per series");
        assert_eq!(acc.len(), self.num_series, "one accumulator per series");
        let w = window.len();
        if w < 2 {
            return;
        }
        self.check_window(&window);
        let inv_w = 1.0 / w as f64;
        let mean_u = means[u];
        let store = &mut *self.pairs.borrow_mut();
        if self.aligned(&window) {
            if store.block_sums.is_empty() {
                self.fill_all_blocks(store);
            }
            let num_pairs = self.num_series * (self.num_series + 1) / 2;
            let (k0, k1) = (window.start / self.block, window.end / self.block);
            if k1 == k0 + 1 {
                // The hot shape: a one-slot window reads one plane.
                // Split at `u`: the `v ≤ u` half of the triangular row
                // is contiguous in the plane and vectorizes.
                let plane = &store.block_sums[k0 * num_pairs..(k0 + 1) * num_pairs];
                let base = u * (u + 1) / 2;
                for (v, (acc_v, &mean_v)) in acc[..=u].iter_mut().zip(means).enumerate() {
                    *acc_v += plane[base + v] * inv_w - mean_u * mean_v;
                }
                for (acc_v, (v, &mean_v)) in acc[u + 1..]
                    .iter_mut()
                    .zip(means.iter().enumerate().skip(u + 1))
                {
                    *acc_v += plane[v * (v + 1) / 2 + u] * inv_w - mean_u * mean_v;
                }
            } else {
                for (v, (acc_v, &mean_v)) in acc.iter_mut().zip(means).enumerate() {
                    let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
                    let idx = hi * (hi + 1) / 2 + lo;
                    let mut products = 0.0;
                    for k in k0..k1 {
                        products += store.block_sums[k * num_pairs + idx];
                    }
                    *acc_v += products * inv_w - mean_u * mean_v;
                }
            }
            return;
        }
        let (a, b) = (window.start, window.end);
        for (v, (acc_v, &mean_v)) in acc.iter_mut().zip(means).enumerate() {
            let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
            let row = &mut store.rows[hi * (hi + 1) / 2 + lo];
            if row.is_empty() {
                build_pair_row(self.series(lo), self.series(hi), self.len, row);
            }
            let products = row[b] - row[a];
            *acc_v += products * inv_w - mean_u * mean_v;
        }
    }

    /// `Σ x_i·x_j` over the window, from the block planes when the
    /// window is block-aligned and the memoized prefix rows otherwise
    /// (either representation is built on first use). Aligned windows
    /// always take the block path so the scalar and bulk queries agree
    /// bitwise.
    fn window_product_sum(&self, i: usize, j: usize, window: &Range<usize>) -> f64 {
        let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
        let idx = hi * (hi + 1) / 2 + lo;
        let store = &mut *self.pairs.borrow_mut();
        if self.aligned(window) {
            if store.block_sums.is_empty() {
                self.fill_all_blocks(store);
            }
            let num_pairs = self.num_series * (self.num_series + 1) / 2;
            let mut products = 0.0;
            for k in window.start / self.block..window.end / self.block {
                products += store.block_sums[k * num_pairs + idx];
            }
            return products;
        }
        let row = &mut store.rows[idx];
        if row.is_empty() {
            build_pair_row(self.series(lo), self.series(hi), self.len, row);
        }
        row[window.end] - row[window.start]
    }

    /// Whether `window` starts and ends on block boundaries (and the
    /// block planes exist at all).
    #[inline]
    fn aligned(&self, window: &Range<usize>) -> bool {
        self.block != 0
            && window.start.is_multiple_of(self.block)
            && window.end.is_multiple_of(self.block)
    }

    /// Computes every pair's per-block product sums, plane-major so
    /// each plane is written sequentially (a per-pair fill would
    /// scatter one store per plane per pair). The four-lane dot breaks
    /// the loop-carried fma chain of the naive running sum; the
    /// summation order differs from
    /// [`stats::covariance`](crate::stats::covariance) by design (the
    /// windowed covariances are ulp-tolerant, see the module docs).
    fn fill_all_blocks(&self, store: &mut PairStore) {
        let g = self.block;
        let num_pairs = self.num_series * (self.num_series + 1) / 2;
        store.block_sums.reserve_exact((self.len / g) * num_pairs);
        for k in 0..self.len / g {
            let span = k * g..(k + 1) * g;
            for hi in 0..self.num_series {
                let xb = &self.series(hi)[span.clone()];
                for lo in 0..=hi {
                    let xa = &self.series(lo)[span.clone()];
                    store.block_sums.push(block_dot(xa, xb));
                }
            }
        }
    }

    fn check_window(&self, window: &Range<usize>) {
        assert!(
            window.start <= window.end && window.end <= self.len,
            "window {}..{} outside day of {} samples",
            window.start,
            window.end,
            self.len
        );
    }
}

/// Dot product with four independent accumulator lanes, so the fma
/// chain pipelines instead of serializing on one running sum.
fn block_dot(a: &[f64], b: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (x, y) in (&mut ca).zip(&mut cb) {
        lanes[0] += x[0] * y[0];
        lanes[1] += x[1] * y[1];
        lanes[2] += x[2] * y[2];
        lanes[3] += x[3] * y[3];
    }
    let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x * y;
    }
    s
}

/// Fills `row` with the `len + 1` product prefix sums of `a` and `b`.
fn build_pair_row(a: &[f64], b: &[f64], len: usize, row: &mut Vec<f64>) {
    row.reserve_exact(len + 1);
    let mut acc = 0.0;
    row.push(acc);
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
        row.push(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    fn fixtures(n: usize, len: usize) -> Vec<TimeSeries> {
        (0..n)
            .map(|i| {
                TimeSeries::from_values(
                    (0..len)
                        .map(|t| {
                            let x = (i * 5 + t * 7) % 13;
                            3.0 + i as f64 + x as f64 * (0.5 + 0.3 * i as f64)
                        })
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn windowed_moments_match_stats_on_slices() {
        let series = fixtures(4, 48);
        let day = DayCache::new(&series);
        for (a, b) in [(0, 48), (0, 12), (12, 24), (36, 48), (5, 7), (20, 20)] {
            for i in 0..4 {
                let w = &series[i].values()[a..b];
                assert!(
                    (day.window_mean(i, a..b) - stats::mean(w)).abs() < 1e-9,
                    "mean series {i} window {a}..{b}"
                );
                assert!(
                    (day.window_variance(i, a..b) - stats::variance(w)).abs() < 1e-9,
                    "variance series {i} window {a}..{b}"
                );
                for (j, other) in series.iter().enumerate() {
                    let v = &other.values()[a..b];
                    assert!(
                        (day.window_covariance(i, j, a..b) - stats::covariance(w, v)).abs() < 1e-9,
                        "covariance ({i}, {j}) window {a}..{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_windows_are_zero() {
        let day = DayCache::new(&fixtures(2, 8));
        assert_eq!(day.window_mean(0, 3..3), 0.0);
        assert_eq!(day.window_variance(0, 3..4), 0.0);
        assert_eq!(day.window_covariance(0, 1, 3..4), 0.0);
    }

    #[test]
    fn variance_never_negative_on_constant_windows() {
        let series = vec![TimeSeries::constant(16, 123.456789)];
        let day = DayCache::new(&series);
        assert!(day.window_variance(0, 2..14) >= 0.0);
    }

    #[test]
    fn pair_rows_are_shared_across_orderings() {
        let series = fixtures(3, 10);
        let day = DayCache::new(&series);
        let ab = day.window_covariance(0, 2, 1..9);
        let ba = day.window_covariance(2, 0, 1..9);
        assert_eq!(ab, ba);
    }

    #[test]
    fn empty_set_is_rejected() {
        assert!(matches!(DayCache::try_new(&[]), Err(Error::EmptySeriesSet)));
    }

    #[test]
    fn ragged_set_is_rejected() {
        let series = vec![TimeSeries::zeros(4), TimeSeries::zeros(5)];
        assert!(matches!(
            DayCache::try_new(&series),
            Err(Error::RaggedSeries)
        ));
    }

    #[test]
    #[should_panic(expected = "same slot")]
    fn ragged_set_panics_via_new() {
        let series = vec![TimeSeries::zeros(4), TimeSeries::zeros(5)];
        let _ = DayCache::new(&series);
    }

    #[test]
    fn error_wording_matches_legacy_asserts() {
        assert_eq!(
            Error::EmptySeriesSet.to_string(),
            "correlation cache needs a series set"
        );
        assert_eq!(
            Error::RaggedSeries.to_string(),
            "all series must cover the same slot"
        );
    }
}
