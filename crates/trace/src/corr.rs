//! Memoized Pearson-correlation terms for the allocator hot loops.
//!
//! Algorithms 1 and 2 score every unallocated VM against the current
//! server pattern `Patt` by the correlation of the VM with the server's
//! *complementary* pattern `max(Patt) − Patt`. Done naively (as the
//! paper states it) every candidate scan materializes the complement and
//! re-walks both series. The terms involved are redundant across scans:
//!
//! * `corr(max(S) − S, v) = −cov(S, v) / (σ(S) · σ(v))` — the complement
//!   only flips the sign, so no complement series is ever needed;
//! * `cov(S, v) = Σ_{u ∈ S} cov(u, v)` — covariance is additive in the
//!   sum, so admitting a VM updates the running covariances with one
//!   pass over the pairwise terms;
//! * `var(S + u) = var(S) + var(u) + 2·cov(S, u)` — the pattern variance
//!   updates in O(1) from terms already on hand.
//!
//! [`CorrelationCache`] precomputes the per-series moments once per slot
//! and memoizes pairwise covariances on first use; [`PatternStats`]
//! carries the running `cov(S, ·)` vector and `var(S)` for one server
//! pattern. Together they reduce a candidate scan from O(len) per
//! candidate to O(1), with each pairwise covariance computed at most
//! once per slot — the redundancy hoist the `ntc_datacenter::Engine`
//! sweep relies on.
//!
//! The numerical contract mirrors [`stats`](crate::stats) exactly:
//! population moments, a `1e-12` degenerate-σ floor mapping to φ = 0,
//! and clamping into `[-1, 1]`.
//!
//! # Examples
//!
//! ```
//! use ntc_trace::{CorrelationCache, TimeSeries};
//!
//! let vms = vec![
//!     TimeSeries::from_values(vec![30.0, 30.0, 5.0, 5.0]),
//!     TimeSeries::from_values(vec![5.0, 5.0, 30.0, 30.0]),
//! ];
//! let mut cache = CorrelationCache::new(&vms);
//! let mut pattern = cache.pattern();
//! pattern.admit(&mut cache, 0);
//! // The night VM matches the day pattern's complement perfectly.
//! assert!((pattern.complement_correlation(&cache, 1) - 1.0).abs() < 1e-12);
//! ```

use crate::{stats, TimeSeries};

/// Not-yet-memoized marker for pairwise covariance slots. Input series
/// are asserted finite, so a genuine covariance can never be NaN.
const UNSET: f64 = f64::NAN;

/// Per-slot cache of the Pearson terms shared by every candidate scan:
/// per-series population moments (eager) and pairwise covariances
/// (memoized on first use).
///
/// Create one per allocation call and thread it through
/// [`PatternStats`]; see the [module docs](self) for the algebra.
#[derive(Debug, Clone)]
pub struct PatternStats {
    var: f64,
    cov_with: Vec<f64>,
}

/// See the [module docs](self).
#[derive(Debug, Clone)]
pub struct CorrelationCache {
    num_series: usize,
    /// Row-major `num_series × len` mean-centered values.
    centered: Vec<f64>,
    len: usize,
    vars: Vec<f64>,
    stds: Vec<f64>,
    /// Row-major `num_series × num_series`, `UNSET` until memoized.
    cov: Vec<f64>,
}

impl CorrelationCache {
    /// Builds the cache for a slot's per-VM series, computing each
    /// series' population mean, variance and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty or the series lengths differ.
    pub fn new(series: &[TimeSeries]) -> Self {
        assert!(!series.is_empty(), "correlation cache needs a series set");
        let len = series[0].len();
        assert!(
            series.iter().all(|s| s.len() == len),
            "all series must cover the same slot"
        );
        let num_series = series.len();
        let mut centered = Vec::with_capacity(num_series * len);
        let mut vars = Vec::with_capacity(num_series);
        let mut stds = Vec::with_capacity(num_series);
        for s in series {
            let mean = s.mean();
            centered.extend(s.values().iter().map(|&v| v - mean));
            let var = stats::variance(s.values());
            vars.push(var);
            stds.push(var.sqrt());
        }
        Self {
            num_series,
            centered,
            len,
            vars,
            stds,
            cov: vec![UNSET; num_series * num_series],
        }
    }

    /// Number of series the cache was built over.
    pub fn num_series(&self) -> usize {
        self.num_series
    }

    /// Population variance of series `i` (identical to
    /// [`stats::variance`]).
    pub fn variance(&self, i: usize) -> f64 {
        self.vars[i]
    }

    /// Population standard deviation of series `i`.
    pub fn std_dev(&self, i: usize) -> f64 {
        self.stds[i]
    }

    /// Population covariance of series `i` and `j` (identical to
    /// [`stats::covariance`]), computed on first use and memoized.
    pub fn covariance(&mut self, i: usize, j: usize) -> f64 {
        let slot = i * self.num_series + j;
        let cached = self.cov[slot];
        if !cached.is_nan() {
            return cached;
        }
        let a = &self.centered[i * self.len..(i + 1) * self.len];
        let b = &self.centered[j * self.len..(j + 1) * self.len];
        let c = if self.len < 2 {
            0.0
        } else {
            a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>() / self.len as f64
        };
        self.cov[slot] = c;
        self.cov[j * self.num_series + i] = c;
        c
    }

    /// Pearson correlation of series `i` and `j`, memoizing the
    /// covariance term. Matches [`stats::pearson_correlation`]: zero if
    /// either σ is below `1e-12`, clamped into `[-1, 1]`.
    pub fn correlation(&mut self, i: usize, j: usize) -> f64 {
        let (si, sj) = (self.stds[i], self.stds[j]);
        if si < 1e-12 || sj < 1e-12 {
            return 0.0;
        }
        (self.covariance(i, j) / (si * sj)).clamp(-1.0, 1.0)
    }

    /// An empty [`PatternStats`] accumulator sized for this cache.
    pub fn pattern(&self) -> PatternStats {
        PatternStats {
            var: 0.0,
            cov_with: vec![0.0; self.num_series],
        }
    }
}

impl PatternStats {
    /// Clears the accumulator back to the empty pattern (a new server).
    pub fn reset(&mut self) {
        self.var = 0.0;
        self.cov_with.fill(0.0);
    }

    /// Folds series `u` into the pattern sum, updating `var(S)` and the
    /// running `cov(S, ·)` vector from cached pairwise terms.
    pub fn admit(&mut self, cache: &mut CorrelationCache, u: usize) {
        // Read cov(S, u) *before* the cov_with update below folds
        // cov(u, u) into it.
        self.var += cache.variance(u) + 2.0 * self.cov_with[u];
        for v in 0..self.cov_with.len() {
            self.cov_with[v] += cache.covariance(u, v);
        }
    }

    /// Population variance of the pattern sum. Clamped at zero: the
    /// incremental update can dip a hair negative for near-constant
    /// sums.
    pub fn variance(&self) -> f64 {
        self.var.max(0.0)
    }

    /// Pearson correlation of candidate `v` with the pattern's
    /// *complementary* series `max(S) − S`, which is `−corr(S, v)`.
    ///
    /// Degenerate σ (below `1e-12`) on either side yields 0, matching
    /// [`stats::pearson_correlation`] on the materialized complement.
    pub fn complement_correlation(&self, cache: &CorrelationCache, v: usize) -> f64 {
        let std_s = self.variance().sqrt();
        let std_v = cache.std_dev(v);
        if std_s < 1e-12 || std_v < 1e-12 {
            return 0.0;
        }
        (-self.cov_with[v] / (std_s * std_v)).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic wiggly fixtures with varied phase/scale.
    fn fixtures(n: usize, len: usize) -> Vec<TimeSeries> {
        (0..n)
            .map(|i| {
                TimeSeries::from_values(
                    (0..len)
                        .map(|t| {
                            let x = (i * 7 + t * 3) % 11;
                            5.0 + i as f64 * 0.7 + x as f64 * (1.0 + 0.2 * i as f64)
                        })
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn covariance_matches_stats_bitwise() {
        let vms = fixtures(6, 24);
        let mut cache = CorrelationCache::new(&vms);
        for i in 0..6 {
            for j in 0..6 {
                let direct = stats::covariance(vms[i].values(), vms[j].values());
                assert_eq!(cache.covariance(i, j), direct, "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn correlation_matches_stats_bitwise() {
        let vms = fixtures(5, 16);
        let mut cache = CorrelationCache::new(&vms);
        for i in 0..5 {
            for j in 0..5 {
                let direct = stats::pearson_correlation(vms[i].values(), vms[j].values());
                assert_eq!(cache.correlation(i, j), direct, "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn complement_correlation_matches_materialized_complement() {
        let vms = fixtures(8, 24);
        let mut cache = CorrelationCache::new(&vms);
        let mut pattern = cache.pattern();
        let mut sum = TimeSeries::zeros(24);
        for &u in &[3, 0, 5] {
            pattern.admit(&mut cache, u);
            sum.add_in_place(&vms[u]);
        }
        for (v, vm) in vms.iter().enumerate() {
            let direct = sum.complementary().correlation(vm);
            let fast = pattern.complement_correlation(&cache, v);
            assert!(
                (fast - direct).abs() < 1e-9,
                "candidate {v}: {fast} vs {direct}"
            );
        }
    }

    #[test]
    fn pattern_variance_tracks_sum_variance() {
        let vms = fixtures(6, 12);
        let mut cache = CorrelationCache::new(&vms);
        let mut pattern = cache.pattern();
        let mut sum = TimeSeries::zeros(12);
        for u in [1, 4, 2, 0] {
            pattern.admit(&mut cache, u);
            sum.add_in_place(&vms[u]);
            let direct = stats::variance(sum.values());
            assert!(
                (pattern.variance() - direct).abs() < 1e-9 * direct.max(1.0),
                "after admitting {u}: {} vs {direct}",
                pattern.variance()
            );
        }
    }

    #[test]
    fn constant_pattern_is_degenerate() {
        let vms = vec![
            TimeSeries::constant(8, 10.0),
            TimeSeries::from_values((0..8).map(|t| t as f64).collect()),
        ];
        let mut cache = CorrelationCache::new(&vms);
        let mut pattern = cache.pattern();
        pattern.admit(&mut cache, 0);
        // σ(S) = 0 -> φ = 0 toward anything, as with the materialized
        // complement path.
        assert_eq!(pattern.complement_correlation(&cache, 1), 0.0);
        assert_eq!(cache.correlation(0, 1), 0.0);
    }

    #[test]
    fn anti_correlated_candidate_scores_plus_one() {
        let day = TimeSeries::from_values(vec![30.0, 30.0, 5.0, 5.0]);
        let night = TimeSeries::from_values(vec![5.0, 5.0, 30.0, 30.0]);
        let vms = vec![day, night];
        let mut cache = CorrelationCache::new(&vms);
        let mut pattern = cache.pattern();
        pattern.admit(&mut cache, 0);
        assert!((pattern.complement_correlation(&cache, 1) - 1.0).abs() < 1e-12);
        assert!((pattern.complement_correlation(&cache, 0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_the_pattern() {
        let vms = fixtures(4, 8);
        let mut cache = CorrelationCache::new(&vms);
        let mut pattern = cache.pattern();
        pattern.admit(&mut cache, 0);
        pattern.admit(&mut cache, 2);
        pattern.reset();
        assert_eq!(pattern.variance(), 0.0);
        pattern.admit(&mut cache, 1);
        let direct = vms[1].complementary().correlation(&vms[3]);
        assert!((pattern.complement_correlation(&cache, 3) - direct).abs() < 1e-9);
    }

    #[test]
    fn short_series_have_zero_moments() {
        let vms = vec![TimeSeries::constant(1, 5.0), TimeSeries::constant(1, 9.0)];
        let mut cache = CorrelationCache::new(&vms);
        assert_eq!(cache.variance(0), 0.0);
        assert_eq!(cache.covariance(0, 1), 0.0);
        assert_eq!(cache.correlation(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "same slot")]
    fn ragged_input_panics() {
        let vms = vec![TimeSeries::zeros(4), TimeSeries::zeros(5)];
        let _ = CorrelationCache::new(&vms);
    }
}
