//! Memoized Pearson-correlation terms for the allocator hot loops.
//!
//! Algorithms 1 and 2 score every unallocated VM against the current
//! server pattern `Patt` by the correlation of the VM with the server's
//! *complementary* pattern `max(Patt) − Patt`. Done naively (as the
//! paper states it) every candidate scan materializes the complement and
//! re-walks both series. The terms involved are redundant across scans:
//!
//! * `corr(max(S) − S, v) = −cov(S, v) / (σ(S) · σ(v))` — the complement
//!   only flips the sign, so no complement series is ever needed;
//! * `cov(S, v) = Σ_{u ∈ S} cov(u, v)` — covariance is additive in the
//!   sum, so admitting a VM updates the running covariances with one
//!   pass over the pairwise terms;
//! * `var(S + u) = var(S) + var(u) + 2·cov(S, u)` — the pattern variance
//!   updates in O(1) from terms already on hand.
//!
//! [`CorrelationCache`] precomputes the per-series moments once per slot
//! and memoizes pairwise covariances on first use; [`PatternStats`]
//! carries the running `cov(S, ·)` vector and `var(S)` for one server
//! pattern. Together they reduce a candidate scan from O(len) per
//! candidate to O(1), with each pairwise covariance computed at most
//! once per slot — the redundancy hoist the `ntc_datacenter::Engine`
//! sweep relies on.
//!
//! The numerical contract mirrors [`stats`](crate::stats) exactly:
//! population moments, a `1e-12` degenerate-σ floor mapping to φ = 0,
//! and clamping into `[-1, 1]`.
//!
//! # Day-level windows and the prefix-sum algebra
//!
//! A cache can also *borrow* a window of a [`DayCache`] (see
//! [`CorrelationCache::from_day_window`]), which hoists the per-slot
//! work one level further: the day cache stores prefix sums
//! `P[t] = Σ_{s<t} x[s]`, `Q[t] = Σ_{s<t} x[s]²` and, lazily per pair,
//! `R[t] = Σ_{s<t} x[s]·y[s]`, so a slot window `[a, b)` of width `w`
//! answers
//!
//! ```text
//! mean      = (P[b] − P[a]) / w
//! variance  = (Q[b] − Q[a]) / w − mean²
//! cov(x, y) = (R[b] − R[a]) / w − mean_x · mean_y
//! ```
//!
//! in O(1) instead of O(w) — one day of prefix work serves all 24
//! hourly re-plans. One numerical subtlety: the uncentered variance
//! form cancels catastrophically on near-constant windows (AR(1)
//! traces pinned at their floor), which can land σ on the wrong side
//! of the `1e-12` degeneracy floor relative to the exact two-pass
//! computation. A windowed cache therefore recomputes per-series means
//! and variances *exactly* (same two-pass code as the owning
//! constructor, over the same bits) and reserves the prefix trick for
//! the pairwise covariances, where ulp-level drift only matters on
//! exact score ties.
//!
//! # Examples
//!
//! ```
//! use ntc_trace::{CorrelationCache, TimeSeries};
//!
//! let vms = vec![
//!     TimeSeries::from_values(vec![30.0, 30.0, 5.0, 5.0]),
//!     TimeSeries::from_values(vec![5.0, 5.0, 30.0, 30.0]),
//! ];
//! let mut cache = CorrelationCache::new(&vms);
//! let mut pattern = cache.pattern();
//! pattern.admit(&mut cache, 0);
//! // The night VM matches the day pattern's complement perfectly.
//! assert!((pattern.complement_correlation(&cache, 1) - 1.0).abs() < 1e-12);
//! ```

use std::ops::Range;

use crate::windowed::Error;
use crate::{stats, DayCache, TimeSeries};

/// Not-yet-memoized marker for pairwise covariance slots. Input series
/// are asserted finite, so a genuine covariance can never be NaN.
const UNSET: f64 = f64::NAN;

/// Per-slot cache of the Pearson terms shared by every candidate scan:
/// per-series population moments (eager) and pairwise covariances
/// (memoized on first use).
///
/// Create one per allocation call and thread it through
/// [`PatternStats`]; see the [module docs](self) for the algebra.
#[derive(Debug, Clone)]
pub struct PatternStats {
    var: f64,
    cov_with: Vec<f64>,
}

/// Where a cache's series values and covariance terms live: owned and
/// centered per slot (the classic path), or borrowed as a window of a
/// day-level prefix-sum cache.
#[derive(Debug, Clone)]
enum Backing<'d> {
    Owned {
        /// Row-major `num_series × len` mean-centered values.
        centered: Vec<f64>,
        /// Row-major `num_series × num_series`, `UNSET` until memoized.
        cov: Vec<f64>,
    },
    Windowed {
        day: &'d DayCache,
        window: Range<usize>,
        /// Exact per-series window means (two-pass, not prefix-derived).
        means: Vec<f64>,
    },
}

/// See the [module docs](self).
#[derive(Debug, Clone)]
pub struct CorrelationCache<'d> {
    num_series: usize,
    len: usize,
    vars: Vec<f64>,
    stds: Vec<f64>,
    backing: Backing<'d>,
}

impl CorrelationCache<'static> {
    /// Builds the cache for a slot's per-VM series, computing each
    /// series' population mean, variance and standard deviation.
    ///
    /// Fails with [`Error::EmptySeriesSet`] on an empty slice and
    /// [`Error::RaggedSeries`] when the series lengths differ; the
    /// error converts into `ntc_core::Error`.
    pub fn try_new(series: &[TimeSeries]) -> Result<Self, Error> {
        if series.is_empty() {
            return Err(Error::EmptySeriesSet);
        }
        let len = series[0].len();
        if series.iter().any(|s| s.len() != len) {
            return Err(Error::RaggedSeries);
        }
        let num_series = series.len();
        let mut centered = Vec::with_capacity(num_series * len);
        let mut vars = Vec::with_capacity(num_series);
        let mut stds = Vec::with_capacity(num_series);
        for s in series {
            let mean = s.mean();
            centered.extend(s.values().iter().map(|&v| v - mean));
            let var = stats::variance(s.values());
            vars.push(var);
            stds.push(var.sqrt());
        }
        Ok(Self {
            num_series,
            len,
            vars,
            stds,
            backing: Backing::Owned {
                centered,
                cov: vec![UNSET; num_series * num_series],
            },
        })
    }

    /// Panicking form of [`try_new`](Self::try_new).
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty or the series lengths differ.
    #[track_caller]
    pub fn new(series: &[TimeSeries]) -> Self {
        match Self::try_new(series) {
            Ok(cache) => cache,
            Err(e) => panic!("{e}"),
        }
    }
}

impl<'d> CorrelationCache<'d> {
    /// Builds a cache over `window` of a [`DayCache`] without copying
    /// or re-centering the series: covariances come from the day's O(1)
    /// prefix sums, while per-series means and variances are recomputed
    /// exactly from the raw window so degenerate-σ decisions (the
    /// `1e-12` floor) are bit-identical to [`new`](Self::new) on the
    /// same values — see the [module docs](self).
    ///
    /// # Panics
    ///
    /// Panics if `window` reaches outside the day.
    pub fn from_day_window(day: &'d DayCache, window: Range<usize>) -> Self {
        assert!(
            window.start <= window.end && window.end <= day.len(),
            "window {}..{} outside day of {} samples",
            window.start,
            window.end,
            day.len()
        );
        let num_series = day.num_series();
        let mut means = Vec::with_capacity(num_series);
        let mut vars = Vec::with_capacity(num_series);
        let mut stds = Vec::with_capacity(num_series);
        for i in 0..num_series {
            let w = &day.series(i)[window.clone()];
            means.push(stats::mean(w));
            let var = stats::variance(w);
            vars.push(var);
            stds.push(var.sqrt());
        }
        Self {
            num_series,
            len: window.len(),
            vars,
            stds,
            backing: Backing::Windowed { day, window, means },
        }
    }

    /// Number of series the cache was built over.
    pub fn num_series(&self) -> usize {
        self.num_series
    }

    /// Population variance of series `i` (identical to
    /// [`stats::variance`]).
    pub fn variance(&self, i: usize) -> f64 {
        self.vars[i]
    }

    /// Population standard deviation of series `i`.
    pub fn std_dev(&self, i: usize) -> f64 {
        self.stds[i]
    }

    /// Population covariance of series `i` and `j` (matching
    /// [`stats::covariance`]), computed on first use and memoized —
    /// per-slot for an owning cache, per-day for a windowed one.
    pub fn covariance(&mut self, i: usize, j: usize) -> f64 {
        let (num_series, len) = (self.num_series, self.len);
        match &mut self.backing {
            Backing::Owned { centered, cov } => {
                let slot = i * num_series + j;
                let cached = cov[slot];
                if !cached.is_nan() {
                    return cached;
                }
                let a = &centered[i * len..(i + 1) * len];
                let b = &centered[j * len..(j + 1) * len];
                let c = if len < 2 {
                    0.0
                } else {
                    a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>() / len as f64
                };
                cov[slot] = c;
                cov[j * num_series + i] = c;
                c
            }
            Backing::Windowed { day, window, means } => {
                day.window_covariance_with_means(i, j, window.clone(), means[i], means[j])
            }
        }
    }

    /// Adds `cov(u, v)` into `acc[v]` for every series `v` — the bulk
    /// form of [`covariance`](Self::covariance) behind
    /// [`PatternStats::admit`]. The per-pair arithmetic is identical to
    /// the scalar calls in order and value; bulking only amortizes the
    /// dispatch, and for a windowed cache the day-cache borrow, across
    /// the whole row — the difference between the day-level cache
    /// winning and losing the EPACT hot loop.
    pub fn accumulate_covariance_row(&mut self, u: usize, acc: &mut [f64]) {
        assert_eq!(acc.len(), self.num_series, "one accumulator per series");
        if let Backing::Windowed { day, window, means } = &self.backing {
            day.accumulate_window_covariances(u, window.clone(), means, acc);
            return;
        }
        for (v, acc_v) in acc.iter_mut().enumerate() {
            *acc_v += self.covariance(u, v);
        }
    }

    /// Pearson correlation of series `i` and `j`, memoizing the
    /// covariance term. Matches [`stats::pearson_correlation`]: zero if
    /// either σ is below `1e-12`, clamped into `[-1, 1]`.
    pub fn correlation(&mut self, i: usize, j: usize) -> f64 {
        let (si, sj) = (self.stds[i], self.stds[j]);
        if si < 1e-12 || sj < 1e-12 {
            return 0.0;
        }
        (self.covariance(i, j) / (si * sj)).clamp(-1.0, 1.0)
    }

    /// An empty [`PatternStats`] accumulator sized for this cache.
    pub fn pattern(&self) -> PatternStats {
        PatternStats {
            var: 0.0,
            cov_with: vec![0.0; self.num_series],
        }
    }
}

impl PatternStats {
    /// Clears the accumulator back to the empty pattern (a new server).
    pub fn reset(&mut self) {
        self.var = 0.0;
        self.cov_with.fill(0.0);
    }

    /// Folds series `u` into the pattern sum, updating `var(S)` and the
    /// running `cov(S, ·)` vector from cached pairwise terms.
    pub fn admit(&mut self, cache: &mut CorrelationCache<'_>, u: usize) {
        // Read cov(S, u) *before* the cov_with update below folds
        // cov(u, u) into it.
        self.var += cache.variance(u) + 2.0 * self.cov_with[u];
        cache.accumulate_covariance_row(u, &mut self.cov_with);
    }

    /// Population variance of the pattern sum. Clamped at zero: the
    /// incremental update can dip a hair negative for near-constant
    /// sums.
    pub fn variance(&self) -> f64 {
        self.var.max(0.0)
    }

    /// Pearson correlation of candidate `v` with the pattern's
    /// *complementary* series `max(S) − S`, which is `−corr(S, v)`.
    ///
    /// Degenerate σ (below `1e-12`) on either side yields 0, matching
    /// [`stats::pearson_correlation`] on the materialized complement.
    pub fn complement_correlation(&self, cache: &CorrelationCache<'_>, v: usize) -> f64 {
        let std_s = self.variance().sqrt();
        let std_v = cache.std_dev(v);
        if std_s < 1e-12 || std_v < 1e-12 {
            return 0.0;
        }
        (-self.cov_with[v] / (std_s * std_v)).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic wiggly fixtures with varied phase/scale.
    fn fixtures(n: usize, len: usize) -> Vec<TimeSeries> {
        (0..n)
            .map(|i| {
                TimeSeries::from_values(
                    (0..len)
                        .map(|t| {
                            let x = (i * 7 + t * 3) % 11;
                            5.0 + i as f64 * 0.7 + x as f64 * (1.0 + 0.2 * i as f64)
                        })
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn covariance_matches_stats_bitwise() {
        let vms = fixtures(6, 24);
        let mut cache = CorrelationCache::new(&vms);
        for i in 0..6 {
            for j in 0..6 {
                let direct = stats::covariance(vms[i].values(), vms[j].values());
                assert_eq!(cache.covariance(i, j), direct, "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn correlation_matches_stats_bitwise() {
        let vms = fixtures(5, 16);
        let mut cache = CorrelationCache::new(&vms);
        for i in 0..5 {
            for j in 0..5 {
                let direct = stats::pearson_correlation(vms[i].values(), vms[j].values());
                assert_eq!(cache.correlation(i, j), direct, "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn complement_correlation_matches_materialized_complement() {
        let vms = fixtures(8, 24);
        let mut cache = CorrelationCache::new(&vms);
        let mut pattern = cache.pattern();
        let mut sum = TimeSeries::zeros(24);
        for &u in &[3, 0, 5] {
            pattern.admit(&mut cache, u);
            sum.add_in_place(&vms[u]);
        }
        for (v, vm) in vms.iter().enumerate() {
            let direct = sum.complementary().correlation(vm);
            let fast = pattern.complement_correlation(&cache, v);
            assert!(
                (fast - direct).abs() < 1e-9,
                "candidate {v}: {fast} vs {direct}"
            );
        }
    }

    #[test]
    fn pattern_variance_tracks_sum_variance() {
        let vms = fixtures(6, 12);
        let mut cache = CorrelationCache::new(&vms);
        let mut pattern = cache.pattern();
        let mut sum = TimeSeries::zeros(12);
        for u in [1, 4, 2, 0] {
            pattern.admit(&mut cache, u);
            sum.add_in_place(&vms[u]);
            let direct = stats::variance(sum.values());
            assert!(
                (pattern.variance() - direct).abs() < 1e-9 * direct.max(1.0),
                "after admitting {u}: {} vs {direct}",
                pattern.variance()
            );
        }
    }

    #[test]
    fn constant_pattern_is_degenerate() {
        let vms = vec![
            TimeSeries::constant(8, 10.0),
            TimeSeries::from_values((0..8).map(|t| t as f64).collect()),
        ];
        let mut cache = CorrelationCache::new(&vms);
        let mut pattern = cache.pattern();
        pattern.admit(&mut cache, 0);
        // σ(S) = 0 -> φ = 0 toward anything, as with the materialized
        // complement path.
        assert_eq!(pattern.complement_correlation(&cache, 1), 0.0);
        assert_eq!(cache.correlation(0, 1), 0.0);
    }

    #[test]
    fn anti_correlated_candidate_scores_plus_one() {
        let day = TimeSeries::from_values(vec![30.0, 30.0, 5.0, 5.0]);
        let night = TimeSeries::from_values(vec![5.0, 5.0, 30.0, 30.0]);
        let vms = vec![day, night];
        let mut cache = CorrelationCache::new(&vms);
        let mut pattern = cache.pattern();
        pattern.admit(&mut cache, 0);
        assert!((pattern.complement_correlation(&cache, 1) - 1.0).abs() < 1e-12);
        assert!((pattern.complement_correlation(&cache, 0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_the_pattern() {
        let vms = fixtures(4, 8);
        let mut cache = CorrelationCache::new(&vms);
        let mut pattern = cache.pattern();
        pattern.admit(&mut cache, 0);
        pattern.admit(&mut cache, 2);
        pattern.reset();
        assert_eq!(pattern.variance(), 0.0);
        pattern.admit(&mut cache, 1);
        let direct = vms[1].complementary().correlation(&vms[3]);
        assert!((pattern.complement_correlation(&cache, 3) - direct).abs() < 1e-9);
    }

    #[test]
    fn short_series_have_zero_moments() {
        let vms = vec![TimeSeries::constant(1, 5.0), TimeSeries::constant(1, 9.0)];
        let mut cache = CorrelationCache::new(&vms);
        assert_eq!(cache.variance(0), 0.0);
        assert_eq!(cache.covariance(0, 1), 0.0);
        assert_eq!(cache.correlation(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "same slot")]
    fn ragged_input_panics() {
        let vms = vec![TimeSeries::zeros(4), TimeSeries::zeros(5)];
        let _ = CorrelationCache::new(&vms);
    }

    #[test]
    fn try_new_reports_bad_input() {
        assert!(matches!(
            CorrelationCache::try_new(&[]),
            Err(crate::Error::EmptySeriesSet)
        ));
        let vms = vec![TimeSeries::zeros(4), TimeSeries::zeros(5)];
        assert!(matches!(
            CorrelationCache::try_new(&vms),
            Err(crate::Error::RaggedSeries)
        ));
        assert!(CorrelationCache::try_new(&fixtures(2, 4)).is_ok());
    }

    /// A windowed cache over `[a, b)` of a day must agree with an
    /// owning cache built on the copied window: means/variances/stds
    /// bitwise (same two-pass code over the same bits), covariances to
    /// ulp-level tolerance (prefix vs centered accumulation).
    #[test]
    fn day_window_matches_owned_cache_on_window_copy() {
        let series = fixtures(6, 48);
        let day = crate::DayCache::new(&series);
        for (a, b) in [(0, 12), (12, 24), (24, 36), (36, 48), (7, 19)] {
            let copies: Vec<TimeSeries> = series.iter().map(|s| s.window(a..b)).collect();
            let mut owned = CorrelationCache::new(&copies);
            let mut windowed = CorrelationCache::from_day_window(&day, a..b);
            assert_eq!(windowed.num_series(), owned.num_series());
            for i in 0..6 {
                assert_eq!(windowed.variance(i), owned.variance(i), "var {i} [{a},{b})");
                assert_eq!(windowed.std_dev(i), owned.std_dev(i), "std {i} [{a},{b})");
                for j in 0..6 {
                    let scale = owned.covariance(i, j).abs().max(1.0);
                    assert!(
                        (windowed.covariance(i, j) - owned.covariance(i, j)).abs() < 1e-9 * scale,
                        "cov ({i}, {j}) window [{a}, {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn day_window_pattern_scores_match_owned() {
        let series = fixtures(8, 24);
        let day = crate::DayCache::new(&series);
        let copies: Vec<TimeSeries> = series.iter().map(|s| s.window(6..18)).collect();
        let mut owned = CorrelationCache::new(&copies);
        let mut windowed = CorrelationCache::from_day_window(&day, 6..18);
        let mut p_owned = owned.pattern();
        let mut p_windowed = windowed.pattern();
        for u in [2, 5, 0] {
            p_owned.admit(&mut owned, u);
            p_windowed.admit(&mut windowed, u);
        }
        for v in 0..8 {
            let a = p_owned.complement_correlation(&owned, v);
            let b = p_windowed.complement_correlation(&windowed, v);
            assert!((a - b).abs() < 1e-9, "candidate {v}: {a} vs {b}");
        }
    }

    /// The degeneracy decision (σ below the `1e-12` floor → φ = 0) must
    /// not flip between the windowed and owning paths on constant
    /// windows — the reason a windowed cache recomputes σ exactly.
    #[test]
    fn day_window_degenerate_sigma_is_bitwise_zero() {
        let series = vec![
            TimeSeries::constant(24, 0.62),
            TimeSeries::from_values((0..24).map(|t| (t % 5) as f64).collect()),
        ];
        let day = crate::DayCache::new(&series);
        let mut windowed = CorrelationCache::from_day_window(&day, 3..15);
        assert_eq!(windowed.std_dev(0), 0.0);
        assert_eq!(windowed.correlation(0, 1), 0.0);
        let mut pattern = windowed.pattern();
        pattern.admit(&mut windowed, 0);
        assert_eq!(pattern.complement_correlation(&windowed, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside day")]
    fn day_window_out_of_range_panics() {
        let day = crate::DayCache::new(&fixtures(2, 8));
        let _ = CorrelationCache::from_day_window(&day, 4..9);
    }
}
