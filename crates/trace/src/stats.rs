//! Statistical primitives used by the allocation policies and the ARIMA
//! predictor: moments, Pearson correlation (the φ similarity of Eq. 2) and
//! Euclidean distance (the Dist term of Eq. 2).

/// Arithmetic mean; 0.0 for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(ntc_trace::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0.0 for slices with fewer than two samples.
///
/// # Examples
///
/// ```
/// assert!((ntc_trace::stats::variance(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
/// ```
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
///
/// # Examples
///
/// ```
/// assert!((ntc_trace::stats::std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
/// ```
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Population covariance of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(
        xs.len(),
        ys.len(),
        "covariance requires equal lengths: {} vs {}",
        xs.len(),
        ys.len()
    );
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.len() as f64
}

/// Pearson correlation coefficient in `[-1, 1]`.
///
/// Returns 0.0 when either input is (numerically) constant — a flat trace
/// carries no shape information, so the policies treat it as uncorrelated
/// rather than propagating a NaN.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// let up = [1.0, 2.0, 3.0];
/// let down = [3.0, 2.0, 1.0];
/// assert!((ntc_trace::stats::pearson_correlation(&up, &down) + 1.0).abs() < 1e-12);
/// ```
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let cov = covariance(xs, ys);
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    if sx < 1e-12 || sy < 1e-12 {
        return 0.0;
    }
    (cov / (sx * sy)).clamp(-1.0, 1.0)
}

/// Euclidean (L2) distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(ntc_trace::stats::euclidean_distance(&[0.0, 3.0], &[4.0, 3.0]), 4.0);
/// ```
pub fn euclidean_distance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(
        xs.len(),
        ys.len(),
        "distance requires equal lengths: {} vs {}",
        xs.len(),
        ys.len()
    );
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// The `p`-quantile (0 ≤ p ≤ 1) using nearest-rank on a sorted copy;
/// 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or any value is NaN.
///
/// # Examples
///
/// ```
/// let xs = [1.0, 9.0, 5.0];
/// assert_eq!(ntc_trace::stats::quantile(&xs, 0.5), 5.0);
/// ```
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "quantile level must be in [0,1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(covariance(&[], &[]), 0.0);
        assert_eq!(pearson_correlation(&[5.0, 5.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn correlation_signs() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_pos = [10.0, 20.0, 30.0, 40.0];
        let y_neg = [40.0, 30.0, 20.0, 10.0];
        assert!((pearson_correlation(&x, &y_pos) - 1.0).abs() < 1e-12);
        assert!((pearson_correlation(&x, &y_neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_is_scale_invariant() {
        let x = [1.0, 5.0, 2.0, 8.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        assert!((pearson_correlation(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_triangle_example() {
        assert_eq!(euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean_distance(&[], &[]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 10.0);
        assert_eq!(quantile(&xs, 0.5), 5.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn covariance_length_mismatch() {
        let _ = covariance(&[1.0], &[1.0, 2.0]);
    }
}
