use std::fmt;
use std::ops::Range;

use serde::{Deserialize, Serialize};

use crate::stats;

/// A sampled utilization trace (values are percentages or any scalar).
///
/// `TimeSeries` is the common currency between the workload generator, the
/// ARIMA predictor and the allocation policies. All element-wise operations
/// require equal lengths and panic otherwise — length mismatches are always
/// programming errors in this workspace.
///
/// # Examples
///
/// ```
/// use ntc_trace::TimeSeries;
///
/// let server_load = TimeSeries::from_values(vec![40.0, 70.0, 55.0]);
/// // "complementary pattern" of Algorithm 1, line 8: max(S) - S
/// let comp = server_load.complementary();
/// assert_eq!(comp.values(), &[30.0, 0.0, 15.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from raw values.
    ///
    /// # Panics
    ///
    /// Panics if any value is not finite.
    pub fn from_values(values: Vec<f64>) -> Self {
        assert!(
            values.iter().all(|v| v.is_finite()),
            "time series values must be finite"
        );
        Self { values }
    }

    /// Creates a series of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Self {
            values: vec![0.0; len],
        }
    }

    /// Creates a series of `len` copies of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn constant(len: usize, value: f64) -> Self {
        assert!(value.is_finite(), "time series values must be finite");
        Self {
            values: vec![value; len],
        }
    }

    /// The underlying values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn at(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Maximum value, or 0.0 for an empty series (utilizations are
    /// non-negative in this workspace).
    pub fn peak(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Minimum value, or 0.0 for an empty series.
    pub fn floor(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Arithmetic mean, or 0.0 for an empty series.
    pub fn mean(&self) -> f64 {
        stats::mean(&self.values)
    }

    /// A sub-series covering `range` (used for slot windows).
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    pub fn window(&self, range: Range<usize>) -> TimeSeries {
        TimeSeries {
            values: self.values[range].to_vec(),
        }
    }

    /// Overwrites `self` with `source[range]`, reusing the existing
    /// allocation — the buffer-recycling form of [`TimeSeries::window`]
    /// for hot loops that slice the same horizon slot after slot.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds for `source`.
    pub fn copy_window_from(&mut self, source: &TimeSeries, range: Range<usize>) {
        self.values.clear();
        self.values.extend_from_slice(&source.values[range]);
    }

    /// Resets `self` to `len` zeros, reusing the existing allocation.
    pub fn reset_zeros(&mut self, len: usize) {
        self.values.clear();
        self.values.resize(len, 0.0);
    }

    /// Element-wise sum with `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn add(&self, other: &TimeSeries) -> TimeSeries {
        self.zip_with(other, |a, b| a + b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn add_in_place(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.len(),
            other.len(),
            "series length mismatch: {} vs {}",
            self.len(),
            other.len()
        );
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
    }

    /// Subtracts `other` from `self` element-wise, clamping at zero.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn sub_clamped(&self, other: &TimeSeries) -> TimeSeries {
        self.zip_with(other, |a, b| (a - b).max(0.0))
    }

    /// Multiplies every sample by `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not finite.
    pub fn scale(&self, k: f64) -> TimeSeries {
        assert!(k.is_finite(), "scale factor must be finite");
        TimeSeries {
            values: self.values.iter().map(|v| v * k).collect(),
        }
    }

    /// The *complementary pattern* of Algorithms 1 and 2:
    /// `max(self) − self`, element-wise.
    ///
    /// A VM whose utilization trace correlates with this pattern fills the
    /// valleys of the current server load without raising its peak.
    pub fn complementary(&self) -> TimeSeries {
        let peak = self.peak();
        TimeSeries {
            values: self.values.iter().map(|v| peak - v).collect(),
        }
    }

    /// Remaining headroom to `cap`, element-wise, clamped at zero
    /// (the `S_rem` term of Algorithm 2).
    pub fn headroom_to(&self, cap: f64) -> TimeSeries {
        TimeSeries {
            values: self.values.iter().map(|v| (cap - v).max(0.0)).collect(),
        }
    }

    /// `true` if any sample exceeds `cap` by more than `eps`.
    pub fn exceeds(&self, cap: f64, eps: f64) -> bool {
        self.values.iter().any(|&v| v > cap + eps)
    }

    /// Peak of the element-wise sum with `other`, without materializing
    /// the sum — performs the same floating-point operations as
    /// `self.add(other).peak()`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn peak_of_sum(&self, other: &TimeSeries) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "series length mismatch: {} vs {}",
            self.len(),
            other.len()
        );
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| a + b)
            .fold(0.0, f64::max)
    }

    /// `true` if any sample of the element-wise sum with `other` exceeds
    /// `cap` by more than `eps` — the allocation-free form of
    /// `self.add(other).exceeds(cap, eps)` used by the per-candidate
    /// feasibility checks of Algorithms 1 and 2.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn sum_exceeds(&self, other: &TimeSeries, cap: f64, eps: f64) -> bool {
        assert_eq!(
            self.len(),
            other.len(),
            "series length mismatch: {} vs {}",
            self.len(),
            other.len()
        );
        self.values
            .iter()
            .zip(&other.values)
            .any(|(a, b)| a + b > cap + eps)
    }

    /// Euclidean distance from `other` to this series' remaining
    /// capacity under `cap` — the allocation-free form of
    /// `other.distance(&self.headroom_to(cap))` (the Dist term of
    /// Eq. 2).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn headroom_distance(&self, cap: f64, other: &TimeSeries) -> f64 {
        assert_eq!(self.len(), other.len(), "distance requires equal lengths");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(s, v)| {
                let d = (cap - s).max(0.0) - v;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Pearson correlation with `other` (the φ of Eq. 2); 0.0 when either
    /// series is constant.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn correlation(&self, other: &TimeSeries) -> f64 {
        stats::pearson_correlation(&self.values, &other.values)
    }

    /// Euclidean distance to `other` (the Dist of Eq. 2).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn distance(&self, other: &TimeSeries) -> f64 {
        stats::euclidean_distance(&self.values, &other.values)
    }

    /// Element-wise maximum of many equal-length series; `None` if `items`
    /// is empty.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn elementwise_max<'a, I>(items: I) -> Option<TimeSeries>
    where
        I: IntoIterator<Item = &'a TimeSeries>,
    {
        let mut iter = items.into_iter();
        let first = iter.next()?.clone();
        Some(iter.fold(first, |acc, s| acc.zip_with(s, f64::max)))
    }

    /// Element-wise sum of many equal-length series over a fresh
    /// zero-series of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if any series length differs from `len`.
    pub fn aggregate<'a, I>(len: usize, items: I) -> TimeSeries
    where
        I: IntoIterator<Item = &'a TimeSeries>,
    {
        let mut acc = TimeSeries::zeros(len);
        for s in items {
            acc.add_in_place(s);
        }
        acc
    }

    fn zip_with(&self, other: &TimeSeries, f: impl Fn(f64, f64) -> f64) -> TimeSeries {
        assert_eq!(
            self.len(),
            other.len(),
            "series length mismatch: {} vs {}",
            self.len(),
            other.len()
        );
        TimeSeries {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TimeSeries(len={}, mean={:.2}, peak={:.2})",
            self.len(),
            self.mean(),
            self.peak()
        )
    }
}

impl FromIterator<f64> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self::from_values(iter.into_iter().collect())
    }
}

impl Extend<f64> for TimeSeries {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            assert!(v.is_finite(), "time series values must be finite");
            self.values.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::from_values(v.to_vec())
    }

    #[test]
    fn sum_helpers_match_materialized_sum() {
        let a = ts(&[10.0, 40.0, 25.0, 5.0]);
        let b = ts(&[30.0, 10.0, 25.0, 50.0]);
        assert_eq!(a.peak_of_sum(&b), a.add(&b).peak());
        for cap in [40.0, 50.0, 55.0, 60.0] {
            assert_eq!(a.sum_exceeds(&b, cap, 1e-9), a.add(&b).exceeds(cap, 1e-9));
        }
    }

    #[test]
    fn headroom_distance_matches_materialized_headroom() {
        let srv = ts(&[50.0, 90.0, 110.0, 20.0]);
        let vm = ts(&[10.0, 5.0, 2.0, 30.0]);
        let direct = vm.distance(&srv.headroom_to(100.0));
        assert_eq!(srv.headroom_distance(100.0, &vm), direct);
    }

    #[test]
    fn copy_window_reuses_the_buffer() {
        let src = ts(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut dst = TimeSeries::zeros(3);
        dst.copy_window_from(&src, 2..5);
        assert_eq!(dst, src.window(2..5));
        dst.copy_window_from(&src, 0..2);
        assert_eq!(dst, src.window(0..2));
    }

    #[test]
    fn reset_zeros_resizes_and_clears() {
        let mut s = ts(&[7.0, 8.0]);
        s.reset_zeros(4);
        assert_eq!(s, TimeSeries::zeros(4));
        s.reset_zeros(1);
        assert_eq!(s, TimeSeries::zeros(1));
    }

    #[test]
    fn peaks_and_means() {
        let s = ts(&[10.0, 50.0, 30.0]);
        assert_eq!(s.peak(), 50.0);
        assert_eq!(s.floor(), 10.0);
        assert_eq!(s.mean(), 30.0);
    }

    #[test]
    fn empty_series_degenerate_stats() {
        let s = TimeSeries::zeros(0);
        assert!(s.is_empty());
        assert_eq!(s.peak(), 0.0);
        assert_eq!(s.floor(), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn complementary_pattern_matches_paper_definition() {
        let s = ts(&[40.0, 70.0, 55.0]);
        let c = s.complementary();
        assert_eq!(c.values(), &[30.0, 0.0, 15.0]);
        // The complement plus the original is flat at the peak.
        let flat = s.add(&c);
        assert!(flat.values().iter().all(|&v| (v - 70.0).abs() < 1e-12));
    }

    #[test]
    fn headroom_clamps_at_zero() {
        let s = ts(&[90.0, 120.0]);
        let h = s.headroom_to(100.0);
        assert_eq!(h.values(), &[10.0, 0.0]);
    }

    #[test]
    fn exceeds_detects_violations() {
        let s = ts(&[99.0, 100.0, 101.0]);
        assert!(s.exceeds(100.0, 1e-9));
        assert!(!s.exceeds(101.0, 1e-9));
    }

    #[test]
    fn aggregate_and_elementwise_max() {
        let a = ts(&[1.0, 2.0]);
        let b = ts(&[3.0, 1.0]);
        let sum = TimeSeries::aggregate(2, [&a, &b]);
        assert_eq!(sum.values(), &[4.0, 3.0]);
        let max = TimeSeries::elementwise_max([&a, &b]).unwrap();
        assert_eq!(max.values(), &[3.0, 2.0]);
        assert!(TimeSeries::elementwise_max(std::iter::empty()).is_none());
    }

    #[test]
    fn windows_are_slot_views() {
        let s = ts(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.window(1..3).values(), &[1.0, 2.0]);
    }

    #[test]
    fn scale_and_sub() {
        let s = ts(&[10.0, 20.0]);
        assert_eq!(s.scale(0.5).values(), &[5.0, 10.0]);
        assert_eq!(s.sub_clamped(&ts(&[15.0, 5.0])).values(), &[0.0, 15.0]);
    }

    #[test]
    fn collect_and_extend() {
        let mut s: TimeSeries = (0..3).map(|i| i as f64).collect();
        s.extend([3.0]);
        assert_eq!(s.values(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = ts(&[1.0]).add(&ts(&[1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rejected() {
        let _ = TimeSeries::from_values(vec![f64::NAN]);
    }
}
