use ntc_units::Seconds;
use serde::{Deserialize, Serialize};

/// The sampling layout shared by every trace in an experiment.
///
/// The paper samples utilization every 5 minutes (like the Google Cluster
/// traces), groups 12 samples into a one-hour allocation *time slot* `T`,
/// and evaluates a one-week horizon of 168 slots (2016 samples).
///
/// # Examples
///
/// ```
/// use ntc_trace::SampleGrid;
///
/// let grid = SampleGrid::google_week();
/// assert_eq!(grid.len(), 2016);
/// assert_eq!(grid.samples_per_slot(), 12);
/// assert_eq!(grid.slots(), 168);
/// assert_eq!(grid.slot_range(0), 0..12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SampleGrid {
    len: usize,
    sample_period_secs: u32,
    samples_per_slot: usize,
}

impl SampleGrid {
    /// Creates a grid with `len` samples of `sample_period`, grouped into
    /// slots of `samples_per_slot`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`, `samples_per_slot == 0`, or `len` is not a
    /// multiple of `samples_per_slot`.
    pub fn new(len: usize, sample_period: Seconds, samples_per_slot: usize) -> Self {
        assert!(len > 0, "grid must contain at least one sample");
        assert!(
            samples_per_slot > 0,
            "slot must contain at least one sample"
        );
        assert!(
            len.is_multiple_of(samples_per_slot),
            "grid length {len} is not a whole number of slots of {samples_per_slot}"
        );
        Self {
            len,
            sample_period_secs: sample_period.as_secs() as u32,
            samples_per_slot,
        }
    }

    /// The paper's evaluation grid: one week of 5-minute samples grouped
    /// into one-hour slots (2016 samples, 168 slots).
    pub fn google_week() -> Self {
        Self::new(7 * 24 * 12, Seconds::from_minutes(5.0), 12)
    }

    /// One day of 5-minute samples in one-hour slots (288 samples, 24
    /// slots) — the ARIMA forecast horizon.
    pub fn google_day() -> Self {
        Self::new(24 * 12, Seconds::from_minutes(5.0), 12)
    }

    /// Total number of samples.
    #[allow(clippy::len_without_is_empty)] // a grid is never empty by construction
    pub fn len(&self) -> usize {
        self.len
    }

    /// Duration of one sample.
    pub fn sample_period(&self) -> Seconds {
        Seconds::new(f64::from(self.sample_period_secs))
    }

    /// Number of samples per allocation slot.
    pub fn samples_per_slot(&self) -> usize {
        self.samples_per_slot
    }

    /// Number of allocation slots in the horizon.
    pub fn slots(&self) -> usize {
        self.len / self.samples_per_slot
    }

    /// Duration of one slot.
    pub fn slot_period(&self) -> Seconds {
        Seconds::new(f64::from(self.sample_period_secs) * self.samples_per_slot as f64)
    }

    /// Number of samples per day, assuming the grid covers whole days.
    pub fn samples_per_day(&self) -> usize {
        let per_day = 86_400 / self.sample_period_secs as usize;
        per_day.min(self.len)
    }

    /// The sample index range of slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.slots()`.
    pub fn slot_range(&self, slot: usize) -> std::ops::Range<usize> {
        assert!(
            slot < self.slots(),
            "slot {slot} out of range (grid has {} slots)",
            self.slots()
        );
        let start = slot * self.samples_per_slot;
        start..start + self.samples_per_slot
    }

    /// Total covered duration.
    pub fn horizon(&self) -> Seconds {
        Seconds::new(f64::from(self.sample_period_secs) * self.len as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn google_week_layout() {
        let g = SampleGrid::google_week();
        assert_eq!(g.len(), 2016);
        assert_eq!(g.slots(), 168);
        assert_eq!(g.sample_period(), Seconds::from_minutes(5.0));
        assert_eq!(g.slot_period(), Seconds::from_hours(1.0));
        assert_eq!(g.samples_per_day(), 288);
        assert_eq!(g.horizon(), Seconds::from_hours(168.0));
    }

    #[test]
    fn slot_ranges_tile_the_grid() {
        let g = SampleGrid::google_day();
        let mut covered = 0;
        for s in 0..g.slots() {
            let r = g.slot_range(s);
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, g.len());
    }

    #[test]
    #[should_panic(expected = "not a whole number of slots")]
    fn ragged_grid_rejected() {
        let _ = SampleGrid::new(13, Seconds::from_minutes(5.0), 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_out_of_range() {
        let _ = SampleGrid::google_day().slot_range(24);
    }
}
