//! Time-series substrate for utilization traces.
//!
//! The allocation policies of the paper operate on per-VM CPU and memory
//! utilization traces sampled every 5 minutes (the Google Cluster cadence)
//! and organized into one-hour *time slots* of 12 samples each. This crate
//! provides:
//!
//! * [`SampleGrid`] — the sampling layout (period, horizon, slot size);
//! * [`TimeSeries`] — a utilization trace with element-wise arithmetic,
//!   peaks, slot windows and the *complementary pattern* operator of
//!   Algorithms 1 and 2;
//! * [`stats`] — Pearson correlation (the φ similarity of Eq. 2),
//!   Euclidean distance (the Dist term of Eq. 2) and supporting moments;
//! * [`CorrelationCache`] / [`PatternStats`] — memoized pairwise Pearson
//!   terms and O(1) running-pattern correlations for the allocator
//!   candidate scans of Algorithms 1 and 2;
//! * [`DayCache`] — day-level prefix sums answering windowed
//!   mean/variance/covariance queries in O(1), so one cache serves all
//!   hourly re-plans of a day.
//!
//! # Examples
//!
//! ```
//! use ntc_trace::{stats, TimeSeries};
//!
//! let a = TimeSeries::from_values(vec![10.0, 20.0, 30.0]);
//! let b = TimeSeries::from_values(vec![1.0, 2.0, 3.0]);
//! let phi = stats::pearson_correlation(a.values(), b.values());
//! assert!((phi - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod corr;
mod grid;
pub mod rolling;
mod series;
pub mod stats;
mod windowed;

pub use corr::{CorrelationCache, PatternStats};
pub use grid::SampleGrid;
pub use series::TimeSeries;
pub use windowed::{DayCache, Error};
