//! Property-based tests of the architecture simulator.

use ntc_archsim::cache::{Cache, CacheConfig, Hierarchy};
use ntc_archsim::ddr::{DdrController, DdrTiming};
use ntc_archsim::{Kernel, Platform, ServerSim};
use ntc_units::{Frequency, MemBytes};
use proptest::prelude::*;

fn arb_kernel() -> impl Strategy<Value = Kernel> {
    (
        1_000_000u64..5_000_000_000,
        0.0f64..100.0,
        0.0f64..40.0,
        16u64..1024,
        0.0f64..0.9,
    )
        .prop_map(|(instr, apki, dpki, ws_mib, wf)| {
            Kernel::new("prop", instr, apki, dpki, MemBytes::from_mib(ws_mib), wf)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exec_time_positive_and_uips_consistent(k in arb_kernel(), ghz in 0.1f64..3.1) {
        let sim = ServerSim::new(Platform::ntc_server());
        let out = sim.run(&k, Frequency::from_ghz(ghz));
        prop_assert!(out.exec_time.as_secs() > 0.0);
        let expected_uips =
            16.0 * out.instructions_per_core as f64 / out.exec_time.as_secs();
        prop_assert!((out.uips - expected_uips).abs() / expected_uips < 1e-9);
        prop_assert!((0.0..=1.0).contains(&out.wfm_fraction));
        prop_assert!((0.0..=1.0).contains(&out.dram_utilization));
    }

    #[test]
    fn frequency_never_hurts(k in arb_kernel(), g1 in 0.1f64..3.1, g2 in 0.1f64..3.1) {
        let sim = ServerSim::new(Platform::ntc_server());
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        let t_lo = sim.run(&k, Frequency::from_ghz(lo)).exec_time;
        let t_hi = sim.run(&k, Frequency::from_ghz(hi)).exec_time;
        prop_assert!(t_hi.as_secs() <= t_lo.as_secs() * (1.0 + 1e-9));
    }

    #[test]
    fn more_dram_traffic_never_speeds_up(
        instr in 100_000_000u64..1_000_000_000,
        apki in 1.0f64..80.0,
        d1 in 0.1f64..30.0,
        d2 in 0.1f64..30.0,
    ) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let ws = MemBytes::from_mib(256);
        let k_lo = Kernel::new("lo", instr, apki, lo, ws, 0.3);
        let k_hi = Kernel::new("hi", instr, apki, hi, ws, 0.3);
        let sim = ServerSim::new(Platform::ntc_server());
        let f = Frequency::from_ghz(2.0);
        prop_assert!(
            sim.run(&k_hi, f).exec_time.as_secs()
                >= sim.run(&k_lo, f).exec_time.as_secs() - 1e-12
        );
    }

    #[test]
    fn cache_stats_are_consistent(addrs in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut c = Cache::new(CacheConfig::ntc_l1d());
        for &a in &addrs {
            c.access(a, a % 3 == 0);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert!(s.miss_ratio() >= 0.0 && s.miss_ratio() <= 1.0);
        prop_assert!(s.writebacks <= s.misses);
    }

    #[test]
    fn repeated_address_always_hits_after_first(addr in 0u64..1_000_000_000) {
        let mut c = Cache::new(CacheConfig::ntc_l1d());
        c.access(addr, false);
        for _ in 0..10 {
            prop_assert!(c.access(addr, false));
        }
    }

    #[test]
    fn hierarchy_filter_property(addrs in prop::collection::vec(0u64..10_000_000, 10..300)) {
        // Lower levels can never see more accesses than the level above
        // missed.
        let mut h = Hierarchy::ntc_per_core();
        for &a in &addrs {
            h.access(a, false);
        }
        let s = h.stats();
        prop_assert_eq!(s.l1d.accesses(), addrs.len() as u64);
        prop_assert!(s.l2.accesses() <= s.l1d.misses);
        prop_assert!(s.llc.accesses() <= s.l2.misses);
    }

    #[test]
    fn ddr_bandwidth_never_exceeds_peak(
        addrs in prop::collection::vec(0u64..(1u64 << 30), 64..512),
    ) {
        let timing = DdrTiming::ddr4_2400();
        let mut ctrl = DdrController::new(timing, 16);
        for &a in &addrs {
            ctrl.access(a, 0.0);
        }
        let s = ctrl.stats();
        prop_assert_eq!(s.requests(), addrs.len() as u64);
        prop_assert!(s.bandwidth() <= timing.peak_bandwidth() * 1.001);
        prop_assert!(s.mean_latency_ns() >= timing.hit_ns() - 1e-9);
    }

    #[test]
    fn ddr_completion_is_monotone_per_bank(
        offsets in prop::collection::vec(0u64..64u64, 16..64),
    ) {
        // Requests to one bank must complete in issue order.
        let mut ctrl = DdrController::new(DdrTiming::ddr4_2400(), 16);
        let mut last = 0.0;
        for (i, &o) in offsets.iter().enumerate() {
            let done = ctrl.access(o * 64, i as f64);
            prop_assert!(done >= last);
            last = done;
        }
    }
}
