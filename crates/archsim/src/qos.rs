//! Quality-of-service analysis (§III-C, §VI-A/B of the paper).
//!
//! The banking applications are virtualized batch jobs, so QoS is a bound
//! on execution-time *degradation*: a job may run at most
//! [`QOS_DEGRADATION_FACTOR`] (2×) slower than on the baseline Intel Xeon
//! X5650 at 2.66 GHz with one LXC container per core.

use ntc_units::{Frequency, Seconds};
use serde::{Deserialize, Serialize};

use crate::{Kernel, Platform, ServerSim};

/// The allowed execution-time degradation w.r.t. the x86 baseline (2×).
pub const QOS_DEGRADATION_FACTOR: f64 = 2.0;

/// The QoS reference: per-kernel baseline execution times on the x86
/// host.
///
/// # Examples
///
/// ```
/// use ntc_archsim::qos::QosBaseline;
/// use ntc_archsim::Kernel;
///
/// let baseline = QosBaseline::simulate_x86();
/// let limit = baseline.qos_limit(&Kernel::low_mem());
/// assert!(limit.as_secs() > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosBaseline {
    entries: Vec<(String, Seconds)>,
}

impl QosBaseline {
    /// Simulates the paper's three workload classes on the Xeon X5650 at
    /// its nominal 2.66 GHz and records the baseline times.
    pub fn simulate_x86() -> Self {
        let platform = Platform::xeon_x5650();
        let f = platform.nominal_freq;
        let sim = ServerSim::new(platform);
        let entries = Kernel::paper_classes()
            .into_iter()
            .map(|k| {
                let t = sim.run(&k, f).exec_time;
                (k.name().to_string(), t)
            })
            .collect();
        Self { entries }
    }

    /// Builds a baseline from externally measured `(kernel name, time)`
    /// pairs — e.g. the published Table I column.
    pub fn from_measurements(entries: Vec<(String, Seconds)>) -> Self {
        assert!(!entries.is_empty(), "baseline needs at least one entry");
        Self { entries }
    }

    /// The published Table I x86 column (0.437 / 1.564 / 3.455 s).
    pub fn paper_table1() -> Self {
        Self::from_measurements(vec![
            ("low-mem".into(), Seconds::new(0.437)),
            ("mid-mem".into(), Seconds::new(1.564)),
            ("high-mem".into(), Seconds::new(3.455)),
        ])
    }

    /// The baseline time of `kernel`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is not in the baseline (the baseline must be
    /// built from the same workload classes it is queried with).
    pub fn baseline_time(&self, kernel: &Kernel) -> Seconds {
        self.entries
            .iter()
            .find(|(n, _)| n == kernel.name())
            .map(|&(_, t)| t)
            .unwrap_or_else(|| panic!("kernel {:?} not in QoS baseline", kernel.name()))
    }

    /// The QoS limit for `kernel`: `2 × baseline`.
    pub fn qos_limit(&self, kernel: &Kernel) -> Seconds {
        self.baseline_time(kernel) * QOS_DEGRADATION_FACTOR
    }

    /// Execution time on `sim` at `f`, normalized to the QoS limit —
    /// the y-axis of Fig. 2 (≤ 1.0 means QoS is met).
    pub fn normalized_time(&self, sim: &ServerSim, kernel: &Kernel, f: Frequency) -> f64 {
        let t = sim.run(kernel, f).exec_time;
        t / self.qos_limit(kernel)
    }

    /// `true` if `kernel` meets QoS on `sim` at `f`.
    pub fn meets_qos(&self, sim: &ServerSim, kernel: &Kernel, f: Frequency) -> bool {
        self.normalized_time(sim, kernel, f) <= 1.0
    }

    /// The lowest of the given DVFS `levels` at which `kernel` still
    /// meets QoS on `sim`, or `None` if none does (Fig. 2's minimum
    /// frequencies: ~1.2–1.5 GHz for low-mem, ~1.8 GHz for mid/high-mem).
    pub fn min_qos_frequency(
        &self,
        sim: &ServerSim,
        kernel: &Kernel,
        levels: &[Frequency],
    ) -> Option<Frequency> {
        let mut sorted = levels.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("frequencies are finite"));
        sorted.into_iter().find(|&f| self.meets_qos(sim, kernel, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(g: f64) -> Frequency {
        Frequency::from_ghz(g)
    }

    #[test]
    fn baseline_simulation_close_to_table1() {
        let sim = QosBaseline::simulate_x86();
        let paper = QosBaseline::paper_table1();
        for k in Kernel::paper_classes() {
            let ours = sim.baseline_time(&k).as_secs();
            let theirs = paper.baseline_time(&k).as_secs();
            let err = (ours - theirs).abs() / theirs;
            assert!(
                err < 0.35,
                "{}: simulated {ours:.3}s vs paper {theirs:.3}s ({:.0}% off)",
                k.name(),
                err * 100.0
            );
        }
    }

    #[test]
    fn ntc_meets_qos_at_2ghz_for_all_classes() {
        // Table I: the proposed NTC server at 2 GHz is within the 2x
        // limit for all three classes.
        let baseline = QosBaseline::paper_table1();
        let sim = ServerSim::new(Platform::ntc_server());
        for k in Kernel::paper_classes() {
            assert!(
                baseline.meets_qos(&sim, &k, ghz(2.0)),
                "{} must meet QoS at 2 GHz (norm {:.3})",
                k.name(),
                baseline.normalized_time(&sim, &k, ghz(2.0))
            );
        }
    }

    #[test]
    fn low_mem_scales_lower_than_high_mem() {
        // Fig 2: low-mem can reduce frequency further than mid/high-mem
        // while staying within QoS.
        let baseline = QosBaseline::paper_table1();
        let sim = ServerSim::new(Platform::ntc_server());
        let levels: Vec<Frequency> = [0.1, 0.2, 0.5, 1.0, 1.2, 1.5, 1.8, 2.0, 2.5]
            .iter()
            .map(|&g| ghz(g))
            .collect();
        let f_low = baseline
            .min_qos_frequency(&sim, &Kernel::low_mem(), &levels)
            .expect("low-mem must meet QoS somewhere");
        let f_high = baseline
            .min_qos_frequency(&sim, &Kernel::high_mem(), &levels)
            .expect("high-mem must meet QoS somewhere");
        assert!(
            f_low < f_high,
            "low-mem ({f_low}) must tolerate lower frequency than high-mem ({f_high})"
        );
        assert!(
            (1.0..=1.6).contains(&f_low.as_ghz()),
            "paper: low-mem min ~1.2-1.5 GHz, got {f_low}"
        );
        assert!(
            (1.5..=2.1).contains(&f_high.as_ghz()),
            "paper: high-mem min ~1.8 GHz, got {f_high}"
        );
    }

    #[test]
    fn deep_near_threshold_violates_qos() {
        // Fig 2's left side: at 100-500 MHz every class is far beyond
        // the limit.
        let baseline = QosBaseline::paper_table1();
        let sim = ServerSim::new(Platform::ntc_server());
        for k in Kernel::paper_classes() {
            assert!(!baseline.meets_qos(&sim, &k, ghz(0.2)));
        }
    }

    #[test]
    #[should_panic(expected = "not in QoS baseline")]
    fn unknown_kernel_panics() {
        let baseline = QosBaseline::paper_table1();
        let alien = Kernel::new(
            "alien",
            1_000_000,
            1.0,
            1.0,
            ntc_units::MemBytes::from_mib(1),
            0.0,
        );
        let _ = baseline.baseline_time(&alien);
    }
}
