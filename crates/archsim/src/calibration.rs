//! Calibration record: the interval model vs the paper's Table I —
//! executable documentation of how close the gem5 substitute lands.

use ntc_units::{Frequency, Seconds};
use serde::{Deserialize, Serialize};

use crate::{Kernel, Platform, ServerSim};

/// One calibration cell: a (platform, workload) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationCell {
    /// Platform name.
    pub platform: String,
    /// Workload class name.
    pub workload: String,
    /// The paper's published execution time.
    pub paper: Seconds,
    /// Our simulated execution time.
    pub simulated: Seconds,
}

impl CalibrationCell {
    /// Signed relative error `(ours − paper)/paper`.
    pub fn relative_error(&self) -> f64 {
        (self.simulated.as_secs() - self.paper.as_secs()) / self.paper.as_secs()
    }
}

/// Every Table I cell, simulated and compared.
pub fn table1_calibration() -> Vec<CalibrationCell> {
    let paper: [(&str, Frequency, [f64; 3]); 3] = [
        (
            "Intel x86",
            Frequency::from_ghz(2.66),
            [0.437, 1.564, 3.455],
        ),
        (
            "Cavium ThunderX",
            Frequency::from_ghz(2.0),
            [0.733, 5.035, 11.943],
        ),
        (
            "NTC server",
            Frequency::from_ghz(2.0),
            [0.582, 2.926, 6.765],
        ),
    ];
    let platforms = [
        Platform::xeon_x5650(),
        Platform::thunderx(),
        Platform::ntc_server(),
    ];

    let mut out = Vec::new();
    for ((name, freq, times), platform) in paper.iter().zip(platforms) {
        let sim = ServerSim::new(platform);
        for (kernel, &paper_t) in Kernel::paper_classes().iter().zip(times) {
            out.push(CalibrationCell {
                platform: name.to_string(),
                workload: kernel.name().to_string(),
                paper: Seconds::new(paper_t),
                simulated: sim.run(kernel, *freq).exec_time,
            });
        }
    }
    out
}

/// Maximum absolute relative error across all nine Table I cells.
pub fn worst_case_error() -> f64 {
    table1_calibration()
        .iter()
        .map(|c| c.relative_error().abs())
        .fold(0.0, f64::max)
}

/// A printable calibration report.
pub fn report() -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<18} {:<10} {:>10} {:>10} {:>8}",
        "platform", "workload", "paper (s)", "ours (s)", "err %"
    );
    for c in table1_calibration() {
        let _ = writeln!(
            s,
            "{:<18} {:<10} {:>10.3} {:>10.3} {:>8.1}",
            c.platform,
            c.workload,
            c.paper.as_secs(),
            c.simulated.as_secs(),
            c.relative_error() * 100.0
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_cells() {
        assert_eq!(table1_calibration().len(), 9);
    }

    #[test]
    fn calibration_within_25_percent() {
        // The paper validated gem5 against hardware at <10%; our
        // interval model holds every Table I cell within 25%.
        for c in table1_calibration() {
            assert!(
                c.relative_error().abs() < 0.25,
                "{} / {}: {:.1}% off",
                c.platform,
                c.workload,
                c.relative_error() * 100.0
            );
        }
    }

    #[test]
    fn worst_case_is_reported() {
        let w = worst_case_error();
        assert!(w > 0.0 && w < 0.25, "worst case {w:.3}");
    }

    #[test]
    fn report_contains_all_platforms() {
        let r = report();
        assert!(r.contains("Intel x86"));
        assert!(r.contains("Cavium ThunderX"));
        assert!(r.contains("NTC server"));
    }
}
