//! Server energy efficiency: UIPS per watt (Fig. 3 of the paper).
//!
//! Efficiency couples the simulator to the power model: the simulator
//! yields UIPS, WFM share and DRAM traffic at each DVFS level; the power
//! model prices that activity. The paper reports the optimum around
//! 1.2 GHz for high-mem and 1.5 GHz for low/mid-mem — well below Fmax,
//! and the reason pure consolidation at Fmax wastes energy on NTC
//! hardware.

use ntc_power::{ServerLoad, ServerPowerModel};
use ntc_units::{Frequency, Percent, Power};

use crate::{Kernel, ServerSim, SimOutcome};

/// Converts a simulation outcome into the power model's activity vector.
///
/// All cores are busy for the whole run (one VM per core, worst case), so
/// CPU activity is split between useful/LLC-stall cycles (active) and
/// DRAM stalls (WFM); DRAM bank activity follows queue utilization.
pub fn outcome_to_load(outcome: &SimOutcome) -> ServerLoad {
    let wfm = Percent::from_fraction(outcome.wfm_fraction.clamp(0.0, 1.0));
    let active = Percent::from_fraction((1.0 - outcome.wfm_fraction).clamp(0.0, 1.0));
    ServerLoad {
        cpu_active: active,
        cpu_wfm: wfm,
        mem_active: Percent::from_fraction(outcome.dram_utilization.clamp(0.0, 1.0)),
        read_bytes_per_sec: outcome.dram_read_bytes_per_sec,
        llc_reads_per_sec: outcome.llc_accesses_per_sec * 0.7,
        llc_writes_per_sec: outcome.llc_accesses_per_sec * 0.3,
    }
}

/// Server power while running `outcome`'s activity at frequency `f`.
pub fn server_power(model: &ServerPowerModel, f: Frequency, outcome: &SimOutcome) -> Power {
    model.power_at(f, &outcome_to_load(outcome))
}

/// Efficiency in BUIPS/W (billions of user instructions per second per
/// watt) — Fig. 3's y-axis.
///
/// # Examples
///
/// ```
/// use ntc_archsim::{efficiency, Kernel, Platform, ServerSim};
/// use ntc_power::ServerPowerModel;
/// use ntc_units::Frequency;
///
/// let sim = ServerSim::new(Platform::ntc_server());
/// let model = ServerPowerModel::ntc();
/// let e = efficiency::buips_per_watt(&sim, &model, &Kernel::low_mem(), Frequency::from_ghz(1.5));
/// assert!(e > 0.0);
/// ```
pub fn buips_per_watt(
    sim: &ServerSim,
    model: &ServerPowerModel,
    kernel: &Kernel,
    f: Frequency,
) -> f64 {
    let outcome = sim.run(kernel, f);
    let p = server_power(model, f, &outcome);
    outcome.buips() / p.as_watts()
}

/// Sweeps DVFS levels and returns `(f, BUIPS/W)` pairs — one Fig. 3
/// series.
pub fn efficiency_curve(
    sim: &ServerSim,
    model: &ServerPowerModel,
    kernel: &Kernel,
    freqs: &[Frequency],
) -> Vec<(Frequency, f64)> {
    freqs
        .iter()
        .map(|&f| (f, buips_per_watt(sim, model, kernel, f)))
        .collect()
}

/// The frequency maximizing BUIPS/W over `freqs` (the per-workload
/// energy-efficiency sweet spot of §VI-B2).
///
/// # Panics
///
/// Panics if `freqs` is empty.
pub fn optimal_efficiency_frequency(
    sim: &ServerSim,
    model: &ServerPowerModel,
    kernel: &Kernel,
    freqs: &[Frequency],
) -> (Frequency, f64) {
    assert!(!freqs.is_empty(), "need at least one frequency");
    efficiency_curve(sim, model, kernel, freqs)
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("efficiencies are finite"))
        .expect("non-empty sweep")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Platform;

    fn sweep() -> Vec<Frequency> {
        [0.1, 0.2, 0.5, 0.8, 1.0, 1.2, 1.5, 1.7, 1.9, 2.1, 2.4, 2.5]
            .iter()
            .map(|&g| Frequency::from_ghz(g))
            .collect()
    }

    #[test]
    fn efficiency_peak_is_interior() {
        // Fig 3: the optimum lies strictly between the extremes —
        // neither deep near-threshold nor Fmax.
        let sim = ServerSim::new(Platform::ntc_server());
        let model = ServerPowerModel::ntc();
        for k in Kernel::paper_classes() {
            let (f_opt, e_opt) = optimal_efficiency_frequency(&sim, &model, &k, &sweep());
            assert!(
                f_opt.as_ghz() > 0.2 && f_opt.as_ghz() < 2.5,
                "{}: peak at boundary {f_opt}",
                k.name()
            );
            assert!(e_opt > 0.0);
            assert!(
                (0.8..=2.2).contains(&f_opt.as_ghz()),
                "{}: paper reports 1.2-1.5 GHz optimum, got {f_opt}",
                k.name()
            );
        }
    }

    #[test]
    fn high_mem_peak_not_above_low_mem_peak() {
        // Fig 3: high-mem peaks at ~1.2 GHz, low/mid at ~1.5 GHz.
        let sim = ServerSim::new(Platform::ntc_server());
        let model = ServerPowerModel::ntc();
        let (f_low, _) = optimal_efficiency_frequency(&sim, &model, &Kernel::low_mem(), &sweep());
        let (f_high, _) = optimal_efficiency_frequency(&sim, &model, &Kernel::high_mem(), &sweep());
        assert!(
            f_high <= f_low,
            "high-mem optimum ({f_high}) must not exceed low-mem optimum ({f_low})"
        );
    }

    #[test]
    fn efficiency_decreases_with_memory_intensity() {
        // Fig 3: more memory -> more active-DRAM power and more WFM
        // stalls -> lower peak efficiency.
        let sim = ServerSim::new(Platform::ntc_server());
        let model = ServerPowerModel::ntc();
        let f = Frequency::from_ghz(1.5);
        let e_low = buips_per_watt(&sim, &model, &Kernel::low_mem(), f);
        let e_high = buips_per_watt(&sim, &model, &Kernel::high_mem(), f);
        assert!(
            e_low > e_high,
            "low-mem must be more efficient: {e_low:.3} vs {e_high:.3}"
        );
    }

    #[test]
    fn load_fractions_are_valid() {
        let sim = ServerSim::new(Platform::ntc_server());
        let out = sim.run(&Kernel::high_mem(), Frequency::from_ghz(1.0));
        let load = outcome_to_load(&out);
        assert!(load.cpu_active.value() + load.cpu_wfm.value() <= 100.0 + 1e-9);
        assert!(load.mem_active.value() <= 100.0);
    }
}
