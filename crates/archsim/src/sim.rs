use ntc_units::{Frequency, Seconds};
use serde::{Deserialize, Serialize};

use crate::{Kernel, Platform};

/// Aggregate outputs of one simulation run — the quantities the paper
/// extracts from gem5 and feeds into the power model (§IV-5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Wall-clock execution time of the (symmetric) per-core kernel.
    pub exec_time: Seconds,
    /// Instructions retired per core.
    pub instructions_per_core: u64,
    /// Total user instructions per second across the chip.
    pub uips: f64,
    /// Fraction of wall-clock time each core spends waiting for memory
    /// (the WFM state of the power model).
    pub wfm_fraction: f64,
    /// Fraction of time spent in on-chip (LLC) stalls.
    pub llc_stall_fraction: f64,
    /// Chip-wide LLC accesses per second.
    pub llc_accesses_per_sec: f64,
    /// Chip-wide DRAM read bandwidth in bytes per second.
    pub dram_read_bytes_per_sec: f64,
    /// Chip-wide DRAM write bandwidth in bytes per second.
    pub dram_write_bytes_per_sec: f64,
    /// Memory-queue utilization ρ at the converged operating point.
    pub dram_utilization: f64,
    /// Whether the run was limited by the bandwidth wall rather than by
    /// latency.
    pub bandwidth_bound: bool,
}

impl SimOutcome {
    /// Total DRAM traffic (read + write) in bytes per second.
    pub fn dram_bytes_per_sec(&self) -> f64 {
        self.dram_read_bytes_per_sec + self.dram_write_bytes_per_sec
    }

    /// UIPS in billions — the numerator of the paper's Fig. 3 efficiency
    /// metric (BUIPS/Watt).
    pub fn buips(&self) -> f64 {
        self.uips / 1.0e9
    }
}

/// The interval-model server simulator.
///
/// Every core runs one instance of the same [`Kernel`] (the paper pins
/// one LXC container per core and runs the VMs in lock-step for the
/// worst case). Per-core execution time is solved self-consistently with
/// the shared-memory contention model:
///
/// ```text
/// T = (compute_cycles + llc_stall_cycles) / f
///   + dram_accesses × L_eff(ρ) / MLP                (latency term)
/// T ≥ total_bytes / usable_bandwidth                (bandwidth wall)
/// ρ = chip_traffic(T) / peak_bandwidth              (fixed point)
/// ```
///
/// # Examples
///
/// ```
/// use ntc_archsim::{Kernel, Platform, ServerSim};
/// use ntc_units::Frequency;
///
/// let sim = ServerSim::new(Platform::ntc_server());
/// let slow = sim.run(&Kernel::mid_mem(), Frequency::from_ghz(1.0));
/// let fast = sim.run(&Kernel::mid_mem(), Frequency::from_ghz(2.5));
/// assert!(slow.exec_time > fast.exec_time);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSim {
    platform: Platform,
}

impl ServerSim {
    /// Creates a simulator for `platform`.
    pub fn new(platform: Platform) -> Self {
        Self { platform }
    }

    /// The simulated platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Runs `kernel` on every core at core frequency `f` and returns the
    /// converged outcome.
    ///
    /// # Panics
    ///
    /// Panics if `f` is zero.
    pub fn run(&self, kernel: &Kernel, f: Frequency) -> SimOutcome {
        assert!(f > Frequency::ZERO, "core frequency must be positive");
        let p = &self.platform;
        let core = &p.core;
        let n = p.num_cores as f64;

        let compute_cycles = core.compute_cycles(kernel.instructions());
        let llc_accesses = kernel.llc_accesses();
        let llc_stall_cycles = core.llc_stall_cycles(llc_accesses, p.llc_latency_cycles);
        let dram_accesses = kernel.dram_accesses(p.llc_share_per_core());
        let bytes_per_core = dram_accesses * 64.0;

        let on_chip_secs = (compute_cycles + llc_stall_cycles) / f.as_hz();

        // Self-consistent execution time under shared-memory contention.
        // With b = on-chip seconds, S = unloaded DRAM stall seconds and
        // W = total-traffic seconds at peak bandwidth, the M/D/1-inflated
        // interval equation
        //
        //   T = b + S · (1 + ρ/(2(1−ρ))),   ρ = W/T
        //
        // reduces to the quadratic  T² − (b+S+W)·T + (b+S)·W − S·W/2 = 0
        // whose larger root is the (unique) solution above both b+S and W.
        let b = on_chip_secs;
        let s = core.dram_stall_seconds(dram_accesses, p.memory.base_latency_ns);
        let w = n * bytes_per_core / p.memory.peak_bandwidth;
        let t = if w <= 0.0 || s <= 0.0 {
            b + s
        } else {
            let sum = b + s + w;
            let disc = (sum * sum - 4.0 * ((b + s) * w - s * w / 2.0)).max(0.0);
            (sum + disc.sqrt()) / 2.0
        };

        // Bandwidth wall: the chip cannot move its total traffic faster
        // than the usable bandwidth allows.
        let wall = p.memory.min_transfer_time(n * bytes_per_core);
        let bandwidth_bound = wall > t;
        let exec = t.max(wall).max(f64::MIN_POSITIVE);
        let rho = p.memory.utilization(n * bytes_per_core / exec);

        let dram_stall = exec - on_chip_secs;
        let write_frac = kernel.write_fraction();
        SimOutcome {
            exec_time: Seconds::new(exec),
            instructions_per_core: kernel.instructions(),
            uips: n * kernel.instructions() as f64 / exec,
            wfm_fraction: (dram_stall / exec).clamp(0.0, 1.0),
            llc_stall_fraction: ((llc_stall_cycles / f.as_hz()) / exec).clamp(0.0, 1.0),
            llc_accesses_per_sec: n * llc_accesses / exec,
            dram_read_bytes_per_sec: n * bytes_per_core * (1.0 - write_frac) / exec,
            dram_write_bytes_per_sec: n * bytes_per_core * write_frac / exec,
            dram_utilization: rho,
            bandwidth_bound,
        }
    }

    /// Runs the kernel across a frequency sweep, returning `(f, outcome)`
    /// pairs — the raw material of Figs. 2 and 3.
    pub fn sweep(&self, kernel: &Kernel, freqs: &[Frequency]) -> Vec<(Frequency, SimOutcome)> {
        freqs.iter().map(|&f| (f, self.run(kernel, f))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(g: f64) -> Frequency {
        Frequency::from_ghz(g)
    }

    #[test]
    fn cpu_bound_time_scales_inverse_with_frequency() {
        let sim = ServerSim::new(Platform::ntc_server());
        let k = Kernel::low_mem();
        let t1 = sim.run(&k, ghz(1.0)).exec_time.as_secs();
        let t2 = sim.run(&k, ghz(2.0)).exec_time.as_secs();
        let ratio = t1 / t2;
        assert!(
            (1.8..=2.05).contains(&ratio),
            "CPU-bound kernel should scale ~linearly with f, ratio {ratio}"
        );
    }

    #[test]
    fn memory_bound_time_is_frequency_insensitive() {
        let sim = ServerSim::new(Platform::ntc_server());
        let k = Kernel::high_mem();
        let t1 = sim.run(&k, ghz(1.5)).exec_time.as_secs();
        let t2 = sim.run(&k, ghz(2.5)).exec_time.as_secs();
        let ratio = t1 / t2;
        assert!(
            ratio < 1.5,
            "high-mem kernel must be much less frequency-sensitive, ratio {ratio}"
        );
    }

    #[test]
    fn high_mem_hits_the_bandwidth_wall_on_ntc() {
        let sim = ServerSim::new(Platform::ntc_server());
        let out = sim.run(&Kernel::high_mem(), ghz(2.5));
        assert!(
            out.bandwidth_bound || out.dram_utilization > 0.65,
            "16 high-mem VMs must drive the single DDR4 channel into heavy contention, rho {}",
            out.dram_utilization
        );
    }

    #[test]
    fn x86_has_bandwidth_headroom() {
        let sim = ServerSim::new(Platform::xeon_x5650());
        let out = sim.run(&Kernel::high_mem(), ghz(2.66));
        assert!(
            !out.bandwidth_bound,
            "the six-channel Xeon must not be bandwidth-bound"
        );
    }

    #[test]
    fn wfm_fraction_orders_with_memory_intensity() {
        let sim = ServerSim::new(Platform::ntc_server());
        let f = ghz(2.0);
        let low = sim.run(&Kernel::low_mem(), f).wfm_fraction;
        let mid = sim.run(&Kernel::mid_mem(), f).wfm_fraction;
        let high = sim.run(&Kernel::high_mem(), f).wfm_fraction;
        assert!(low < mid && mid < high);
        assert!(low < 0.1, "low-mem is CPU-bound, WFM {low}");
        assert!(high > 0.3, "high-mem mostly waits for memory, WFM {high}");
    }

    #[test]
    fn uips_consistency() {
        let sim = ServerSim::new(Platform::ntc_server());
        let out = sim.run(&Kernel::mid_mem(), ghz(2.0));
        let expect = 16.0 * out.instructions_per_core as f64 / out.exec_time.as_secs();
        assert!((out.uips - expect).abs() < 1.0);
    }

    #[test]
    fn fraction_accounting() {
        let sim = ServerSim::new(Platform::thunderx());
        let out = sim.run(&Kernel::mid_mem(), ghz(2.0));
        assert!(out.wfm_fraction >= 0.0 && out.wfm_fraction <= 1.0);
        assert!(out.llc_stall_fraction >= 0.0 && out.llc_stall_fraction <= 1.0);
        assert!(out.wfm_fraction + out.llc_stall_fraction <= 1.0 + 1e-9);
    }

    #[test]
    fn sweep_returns_all_points() {
        let sim = ServerSim::new(Platform::ntc_server());
        let freqs: Vec<Frequency> = [0.5, 1.0, 1.5].iter().map(|&g| ghz(g)).collect();
        let pts = sim.sweep(&Kernel::low_mem(), &freqs);
        assert_eq!(pts.len(), 3);
        assert!(pts[0].1.exec_time > pts[2].1.exec_time);
    }
}
