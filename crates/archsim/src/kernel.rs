use ntc_units::MemBytes;
use serde::{Deserialize, Serialize};

/// A synthetic workload kernel — one VM's worth of a banking batch job.
///
/// The paper profiles its (confidential) banking batch applications into
/// three classes by memory footprint: *low-mem* (70 MB average usage),
/// *mid-mem* (255 MB) and *high-mem* (435 MB), all tuned to maximum CPU
/// utilization. A kernel abstracts one such job as:
///
/// * a dynamic instruction count,
/// * an LLC access rate (accesses per kilo-instruction, APKI) — work that
///   stalls the core for *cycle*-denominated latencies,
/// * a DRAM access rate (misses per kilo-instruction, DPKI) — work that
///   stalls for *nanosecond*-denominated latencies and consumes shared
///   bandwidth,
/// * the working-set size, which modulates how much of the DRAM traffic
///   a given LLC can absorb.
///
/// # Examples
///
/// ```
/// use ntc_archsim::Kernel;
///
/// let k = Kernel::high_mem();
/// assert!(k.dram_dpki() > Kernel::low_mem().dram_dpki());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    name: String,
    instructions: u64,
    llc_apki: f64,
    dram_dpki: f64,
    working_set: MemBytes,
    /// Fraction of DRAM accesses that are writes (write-backs).
    write_fraction: f64,
}

impl Kernel {
    /// Builds a kernel from raw characteristics.
    ///
    /// # Panics
    ///
    /// Panics if `instructions == 0`, any rate is negative, or
    /// `write_fraction` is outside `[0, 1]`.
    pub fn new(
        name: impl Into<String>,
        instructions: u64,
        llc_apki: f64,
        dram_dpki: f64,
        working_set: MemBytes,
        write_fraction: f64,
    ) -> Self {
        assert!(instructions > 0, "a kernel must retire instructions");
        assert!(llc_apki >= 0.0, "LLC APKI must be non-negative");
        assert!(dram_dpki >= 0.0, "DRAM DPKI must be non-negative");
        assert!(
            (0.0..=1.0).contains(&write_fraction),
            "write fraction must be in [0, 1]"
        );
        Self {
            name: name.into(),
            instructions,
            llc_apki,
            dram_dpki,
            working_set,
            write_fraction,
        }
    }

    /// The *low-mem* class: 70 MB average footprint (7% of a 1 GB VM),
    /// CPU-bound.
    pub fn low_mem() -> Self {
        Self::new(
            "low-mem",
            1_850_000_000,
            5.0,
            0.3,
            MemBytes::from_mib(70),
            0.25,
        )
    }

    /// The *mid-mem* class: 255 MB average footprint (25%).
    pub fn mid_mem() -> Self {
        Self::new(
            "mid-mem",
            3_000_000_000,
            60.0,
            12.0,
            MemBytes::from_mib(255),
            0.3,
        )
    }

    /// The *high-mem* class: 435 MB average footprint (43%),
    /// bandwidth-hungry.
    pub fn high_mem() -> Self {
        Self::new(
            "high-mem",
            4_000_000_000,
            80.0,
            22.0,
            MemBytes::from_mib(435),
            0.3,
        )
    }

    /// All three paper workload classes, in ascending memory intensity.
    pub fn paper_classes() -> Vec<Kernel> {
        vec![Self::low_mem(), Self::mid_mem(), Self::high_mem()]
    }

    /// Looks up a paper class by its display name (`"low-mem"`,
    /// `"mid-mem"`, `"high-mem"`); `None` for anything else. This is the
    /// bridge from workload-level class labels to simulatable kernels.
    pub fn by_name(name: &str) -> Option<Kernel> {
        Self::paper_classes().into_iter().find(|k| k.name() == name)
    }

    /// The kernel's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dynamic instruction count.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// LLC accesses per kilo-instruction.
    pub fn llc_apki(&self) -> f64 {
        self.llc_apki
    }

    /// DRAM accesses (LLC misses) per kilo-instruction, before capacity
    /// adjustment.
    pub fn dram_dpki(&self) -> f64 {
        self.dram_dpki
    }

    /// Working-set size.
    pub fn working_set(&self) -> MemBytes {
        self.working_set
    }

    /// Fraction of DRAM traffic that is write-backs.
    pub fn write_fraction(&self) -> f64 {
        self.write_fraction
    }

    /// Total LLC accesses over the kernel's lifetime.
    pub fn llc_accesses(&self) -> f64 {
        self.instructions as f64 * self.llc_apki / 1000.0
    }

    /// DRAM accesses over the kernel's lifetime, adjusted for the share
    /// of the working set a per-core slice of `llc_share` can capture.
    ///
    /// When the working set fits entirely in the cache slice the DRAM
    /// traffic collapses to cold misses (10% floor); when it vastly
    /// exceeds the slice, the full DPKI applies.
    pub fn dram_accesses(&self, llc_share: MemBytes) -> f64 {
        let capture = llc_share.as_fraction_of(self.working_set).min(1.0);
        let factor = (1.0 - capture).max(0.1);
        self.instructions as f64 * self.dram_dpki / 1000.0 * factor
    }

    /// Bytes moved to/from DRAM over the kernel's lifetime, assuming
    /// 64-byte lines.
    pub fn dram_bytes(&self, llc_share: MemBytes) -> f64 {
        self.dram_accesses(llc_share) * 64.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_ordered_by_memory_intensity() {
        let ks = Kernel::paper_classes();
        assert_eq!(ks.len(), 3);
        for w in ks.windows(2) {
            assert!(w[0].dram_dpki() < w[1].dram_dpki());
            assert!(w[0].working_set() < w[1].working_set());
        }
    }

    #[test]
    fn footprints_match_paper() {
        assert_eq!(Kernel::low_mem().working_set(), MemBytes::from_mib(70));
        assert_eq!(Kernel::mid_mem().working_set(), MemBytes::from_mib(255));
        assert_eq!(Kernel::high_mem().working_set(), MemBytes::from_mib(435));
    }

    #[test]
    fn capacity_adjustment() {
        let k = Kernel::mid_mem();
        let full = k.dram_accesses(MemBytes::from_mib(1));
        let half = k.dram_accesses(MemBytes::from_mib(128));
        let tiny = k.dram_accesses(MemBytes::from_gib(1));
        assert!(full > half, "bigger cache slice must absorb traffic");
        assert!(half > tiny);
        // the floor keeps cold misses alive
        assert!(tiny >= 0.1 * k.instructions() as f64 * k.dram_dpki() / 1000.0 - 1.0);
    }

    #[test]
    fn byte_accounting() {
        let k = Kernel::high_mem();
        let share = MemBytes::from_mib(1);
        assert!((k.dram_bytes(share) - k.dram_accesses(share) * 64.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "retire instructions")]
    fn zero_instructions_rejected() {
        let _ = Kernel::new("bad", 0, 1.0, 1.0, MemBytes::from_mib(1), 0.0);
    }
}
