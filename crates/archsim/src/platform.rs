use ntc_units::{Frequency, MemBytes};
use serde::{Deserialize, Serialize};

use crate::{CoreParams, MemoryParams};

/// A complete server platform configuration for the simulator.
///
/// Four presets cover the paper's evaluation (§VI-A):
///
/// * [`Platform::xeon_x5650`] — the QoS baseline host (16 cores at
///   2.66 GHz, 12 MB LLC, DDR3-1333);
/// * [`Platform::thunderx`] — the original Cavium server with in-order
///   cores and a weak memory path;
/// * [`Platform::ntc_server`] — the proposed architecture: A57-class OoO
///   cores, 64 KB I$ / 32 KB D$, 16 MB LLC, 16 GB DDR4-2400;
/// * [`Platform::e5_2620`] — the conventional server of Fig. 1(b).
///
/// # Examples
///
/// ```
/// use ntc_archsim::Platform;
///
/// let p = Platform::ntc_server();
/// assert_eq!(p.num_cores, 16);
/// assert_eq!(p.llc_capacity.as_mib(), 16.0 * 1024.0 / 1024.0 * 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Display name.
    pub name: String,
    /// Core microarchitecture.
    pub core: CoreParams,
    /// Number of cores (and VMs — one LXC container per core).
    pub num_cores: usize,
    /// Nominal operating frequency.
    pub nominal_freq: Frequency,
    /// Shared last-level-cache capacity.
    pub llc_capacity: MemBytes,
    /// LLC access latency in core cycles.
    pub llc_latency_cycles: f64,
    /// Shared memory subsystem.
    pub memory: MemoryParams,
}

impl Platform {
    /// The Intel Xeon X5650 baseline (§III-C): QoS is defined as 2× the
    /// execution time on this machine at 2.66 GHz.
    pub fn xeon_x5650() -> Self {
        Self {
            name: "Intel x86 (Xeon X5650)".into(),
            core: CoreParams::xeon_westmere(),
            num_cores: 16,
            nominal_freq: Frequency::from_ghz(2.66),
            llc_capacity: MemBytes::from_mib(12),
            llc_latency_cycles: 40.0,
            memory: MemoryParams::ddr3_1333_hex(),
        }
    }

    /// The Cavium ThunderX as shipped: in-order cores and a slow on-chip
    /// memory path. Modeled at 16 cores like the paper's scaled-down
    /// configuration.
    pub fn thunderx() -> Self {
        Self {
            name: "Cavium ThunderX".into(),
            core: CoreParams::cortex_a53(),
            num_cores: 16,
            nominal_freq: Frequency::from_ghz(2.0),
            llc_capacity: MemBytes::from_mib(16),
            llc_latency_cycles: 45.0,
            memory: MemoryParams::thunderx(),
        }
    }

    /// The proposed NTC server (§III-A): ThunderX modified with
    /// Cortex-A57 OoO cores and an improved memory subsystem.
    pub fn ntc_server() -> Self {
        Self {
            name: "NTC server (A57, FD-SOI)".into(),
            core: CoreParams::cortex_a57(),
            num_cores: 16,
            nominal_freq: Frequency::from_ghz(2.0),
            llc_capacity: MemBytes::from_mib(16),
            llc_latency_cycles: 40.0,
            memory: MemoryParams::ddr4_2400_single(),
        }
    }

    /// The conventional Intel E5-2620 server of Fig. 1(b).
    pub fn e5_2620() -> Self {
        Self {
            name: "Intel E5-2620".into(),
            core: CoreParams::xeon_sandy_bridge(),
            num_cores: 6,
            nominal_freq: Frequency::from_ghz(2.0),
            llc_capacity: MemBytes::from_mib(15),
            llc_latency_cycles: 42.0,
            memory: MemoryParams::ddr3_1333_quad(),
        }
    }

    /// The LLC capacity available to one core's VM when all cores run.
    pub fn llc_share_per_core(&self) -> MemBytes {
        MemBytes::from_bytes(self.llc_capacity.as_bytes() / self.num_cores as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreKind;

    #[test]
    fn presets_match_paper_configs() {
        let ntc = Platform::ntc_server();
        assert_eq!(ntc.num_cores, 16);
        assert_eq!(ntc.llc_capacity, MemBytes::from_mib(16));
        assert_eq!(ntc.core.kind, CoreKind::OutOfOrder);

        let tx = Platform::thunderx();
        assert_eq!(tx.core.kind, CoreKind::InOrder);

        let x86 = Platform::xeon_x5650();
        assert_eq!(x86.nominal_freq, Frequency::from_ghz(2.66));
        assert_eq!(x86.llc_capacity, MemBytes::from_mib(12));
    }

    #[test]
    fn llc_share_divides_evenly() {
        let ntc = Platform::ntc_server();
        assert_eq!(ntc.llc_share_per_core(), MemBytes::from_mib(1));
    }

    #[test]
    fn ntc_improves_on_thunderx() {
        let ntc = Platform::ntc_server();
        let tx = Platform::thunderx();
        assert!(ntc.core.base_ipc > tx.core.base_ipc);
        assert!(ntc.core.mlp_mem > tx.core.mlp_mem);
        assert!(ntc.memory.base_latency_ns < tx.memory.base_latency_ns);
    }
}
