//! Synthetic memory address streams with controllable locality.
//!
//! The generator produces addresses whose *stack distances* (reuse
//! distances) follow a truncated power law — the empirical shape of most
//! transactional/batch workloads. Small exponents yield cache-friendly
//! streams; exponents near zero approach uniform (streaming) behaviour.
//! Driving the [`crate::cache::Hierarchy`] with these streams is how the
//! analytic APKI/DPKI rates baked into [`crate::Kernel`] were derived.

use ntc_units::MemBytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded generator of synthetic data addresses over a working set.
///
/// # Examples
///
/// ```
/// use ntc_archsim::stream::AddressStream;
/// use ntc_units::MemBytes;
///
/// let mut s = AddressStream::new(MemBytes::from_mib(4), 1.2, 7);
/// let a = s.next_address();
/// assert!(a < MemBytes::from_mib(4).as_bytes());
/// ```
#[derive(Debug, Clone)]
pub struct AddressStream {
    working_set: MemBytes,
    /// Power-law exponent for reuse distance (larger = more locality).
    locality: f64,
    rng: StdRng,
    /// Recently touched line addresses, most recent first (bounded).
    history: Vec<u64>,
    history_cap: usize,
    line_bytes: u64,
}

impl AddressStream {
    /// Creates a stream over `working_set` with power-law `locality`
    /// exponent (≥ 0; 0 means uniform random) and RNG `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the working set is smaller than one cache line or
    /// `locality` is negative or not finite.
    pub fn new(working_set: MemBytes, locality: f64, seed: u64) -> Self {
        assert!(
            working_set.as_bytes() >= 64,
            "working set must hold at least one line"
        );
        assert!(
            locality.is_finite() && locality >= 0.0,
            "locality exponent must be finite and non-negative"
        );
        Self {
            working_set,
            locality,
            rng: StdRng::seed_from_u64(seed),
            history: Vec::new(),
            history_cap: 4096,
            line_bytes: 64,
        }
    }

    /// The working-set size.
    pub fn working_set(&self) -> MemBytes {
        self.working_set
    }

    /// Draws the next address.
    ///
    /// With probability governed by the locality exponent, a recently
    /// used line is revisited (stack-distance draw); otherwise a fresh
    /// uniform address within the working set is touched.
    pub fn next_address(&mut self) -> u64 {
        let lines = self.working_set.as_bytes() / self.line_bytes;
        let reuse_p = 1.0 - 1.0 / (1.0 + self.locality);
        let addr = if !self.history.is_empty() && self.rng.gen::<f64>() < reuse_p {
            // Power-law stack distance: index ~ U^(1+alpha) biases toward
            // the most recently used entries.
            let u: f64 = self.rng.gen();
            let idx = (u.powf(1.0 + self.locality) * self.history.len() as f64) as usize;
            self.history[idx.min(self.history.len() - 1)]
        } else {
            self.rng.gen_range(0..lines) * self.line_bytes
        };
        self.touch(addr);
        addr
    }

    /// Generates `n` addresses.
    pub fn take_addresses(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_address()).collect()
    }

    fn touch(&mut self, addr: u64) {
        if let Some(pos) = self.history.iter().position(|&a| a == addr) {
            self.history.remove(pos);
        } else if self.history.len() == self.history_cap {
            self.history.pop();
        }
        self.history.insert(0, addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Hierarchy;

    #[test]
    fn addresses_stay_in_working_set() {
        let ws = MemBytes::from_mib(1);
        let mut s = AddressStream::new(ws, 1.0, 42);
        for _ in 0..10_000 {
            assert!(s.next_address() < ws.as_bytes());
        }
    }

    #[test]
    fn determinism_under_seed() {
        let mut a = AddressStream::new(MemBytes::from_mib(2), 1.5, 7);
        let mut b = AddressStream::new(MemBytes::from_mib(2), 1.5, 7);
        assert_eq!(a.take_addresses(1000), b.take_addresses(1000));
    }

    #[test]
    fn locality_reduces_miss_ratio() {
        let ws = MemBytes::from_mib(8);
        let n = 60_000;

        let run = |locality: f64| {
            let mut h = Hierarchy::ntc_per_core();
            let mut s = AddressStream::new(ws, locality, 11);
            for _ in 0..n {
                let a = s.next_address();
                h.access(a, false);
            }
            h.stats().l1d.miss_ratio()
        };

        let streaming = run(0.0);
        let local = run(4.0);
        assert!(
            local < streaming,
            "higher locality must hit more: local {local:.3} vs streaming {streaming:.3}"
        );
    }

    #[test]
    fn derived_dpki_orders_with_working_set() {
        // The larger the working set relative to the hierarchy, the more
        // DRAM traffic per access — the relationship the Kernel presets
        // encode analytically.
        let run = |ws: MemBytes| {
            let mut h = Hierarchy::ntc_per_core();
            let mut s = AddressStream::new(ws, 1.0, 3);
            let n = 50_000u64;
            for _ in 0..n {
                let a = s.next_address();
                h.access(a, false);
            }
            // pretend 1 memory access per 3 instructions
            h.stats().dram_dpki(n * 3)
        };
        let small = run(MemBytes::from_mib(1));
        let large = run(MemBytes::from_mib(64));
        assert!(
            large > small,
            "bigger working sets must produce more DPKI: {large:.2} vs {small:.2}"
        );
    }
}
