use serde::{Deserialize, Serialize};

/// Parameters of a server's shared memory subsystem.
///
/// The contention model is M/D/1-flavoured: as the aggregate demand of
/// all cores approaches the peak bandwidth, the effective access latency
/// inflates by `1 + ρ / (2(1 − ρ))`, and throughput is hard-capped at
/// `saturation × peak` (queueing prevents reaching the theoretical peak).
///
/// # Examples
///
/// ```
/// use ntc_archsim::MemoryParams;
///
/// let ddr4 = MemoryParams::ddr4_2400_single();
/// assert_eq!(ddr4.peak_bandwidth, 19.2e9);
/// let quiet = ddr4.effective_latency_ns(1.0e9);
/// let busy = ddr4.effective_latency_ns(17.0e9);
/// assert!(busy > quiet);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryParams {
    /// Unloaded (idle-queue) access latency in nanoseconds.
    pub base_latency_ns: f64,
    /// Theoretical peak bandwidth in bytes per second.
    pub peak_bandwidth: f64,
    /// Achievable fraction of the peak before hard saturation (0.9–0.95
    /// for realistic FR-FCFS controllers).
    pub saturation: f64,
}

impl MemoryParams {
    /// The NTC server's memory: single-channel DDR4-2400, 19.2 GB/s peak,
    /// as configured in §III-A.
    pub fn ddr4_2400_single() -> Self {
        Self {
            base_latency_ns: 80.0,
            peak_bandwidth: 19.2e9,
            saturation: 0.94,
        }
    }

    /// The Cavium ThunderX memory subsystem — same DDR4 channel but a
    /// slower on-chip path (the "inappropriate memory subsystem design"
    /// of §III-A).
    pub fn thunderx() -> Self {
        Self {
            base_latency_ns: 95.0,
            peak_bandwidth: 19.2e9,
            saturation: 0.88,
        }
    }

    /// The Xeon X5650 baseline host: triple-channel DDR3-1333 per socket,
    /// two sockets (the paper's 128 GB @ 1333 MHz machine).
    pub fn ddr3_1333_hex() -> Self {
        Self {
            base_latency_ns: 80.0,
            peak_bandwidth: 64.0e9,
            saturation: 0.92,
        }
    }

    /// An E5-2620's quad-channel DDR3-1333.
    pub fn ddr3_1333_quad() -> Self {
        Self {
            base_latency_ns: 82.0,
            peak_bandwidth: 42.6e9,
            saturation: 0.92,
        }
    }

    /// Queue utilization ρ for a given aggregate demand, clamped just
    /// below 1.
    pub fn utilization(&self, demand_bytes_per_sec: f64) -> f64 {
        assert!(demand_bytes_per_sec >= 0.0, "demand must be non-negative");
        (demand_bytes_per_sec / self.peak_bandwidth).min(0.999)
    }

    /// Effective access latency under an aggregate demand, in
    /// nanoseconds: `base × (1 + ρ/(2(1−ρ)))`, with ρ capped at the
    /// saturation point so latency stays finite.
    pub fn effective_latency_ns(&self, demand_bytes_per_sec: f64) -> f64 {
        let rho = self.utilization(demand_bytes_per_sec).min(self.saturation);
        self.base_latency_ns * (1.0 + rho / (2.0 * (1.0 - rho)))
    }

    /// The minimum wall-clock time to move `total_bytes` through the
    /// controller (the bandwidth wall).
    pub fn min_transfer_time(&self, total_bytes: f64) -> f64 {
        assert!(total_bytes >= 0.0, "byte count must be non-negative");
        total_bytes / (self.peak_bandwidth * self.saturation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_inflates_with_load() {
        let m = MemoryParams::ddr4_2400_single();
        let l0 = m.effective_latency_ns(0.0);
        let l50 = m.effective_latency_ns(9.6e9);
        let l90 = m.effective_latency_ns(17.3e9);
        assert_eq!(l0, 80.0);
        assert!(l50 > l0 && l90 > l50);
        // M/D/1 at rho=0.5: 1 + 0.5/1.0 = 1.5x
        assert!((l50 - 120.0).abs() < 1.0);
    }

    #[test]
    fn latency_is_finite_at_overload() {
        let m = MemoryParams::ddr4_2400_single();
        let l = m.effective_latency_ns(100.0e9);
        assert!(l.is_finite());
        // capped at the saturation point
        let cap = 80.0 * (1.0 + 0.94 / (2.0 * 0.06));
        assert!((l - cap).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_wall() {
        let m = MemoryParams::ddr4_2400_single();
        // 100 GB through a 19.2 GB/s channel at 94% efficiency
        let t = m.min_transfer_time(100.0e9);
        assert!((t - 100.0e9 / (19.2e9 * 0.94)).abs() < 1e-9);
    }

    #[test]
    fn platform_presets_ordering() {
        assert!(
            MemoryParams::ddr3_1333_hex().peak_bandwidth
                > MemoryParams::ddr4_2400_single().peak_bandwidth
        );
        assert!(
            MemoryParams::thunderx().base_latency_ns
                > MemoryParams::ddr4_2400_single().base_latency_ns
        );
    }
}
