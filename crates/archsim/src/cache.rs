//! A set-associative, LRU, write-back cache simulator.
//!
//! The interval model uses analytic per-kilo-instruction access rates;
//! this module provides the detailed machinery to *derive and validate*
//! those rates: drive a [`Hierarchy`] with a synthetic address stream
//! (see [`crate::stream`]) and read back per-level hit/miss statistics.

use ntc_units::MemBytes;
use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
///
/// # Examples
///
/// ```
/// use ntc_archsim::cache::CacheConfig;
/// use ntc_units::MemBytes;
///
/// let l1d = CacheConfig::new(MemBytes::from_kib(32), 4, 64);
/// assert_eq!(l1d.num_sets(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    capacity: MemBytes,
    associativity: usize,
    line_bytes: usize,
}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not divisible into
    /// `associativity × line_bytes` sets, or if the set count is not a
    /// power of two.
    pub fn new(capacity: MemBytes, associativity: usize, line_bytes: usize) -> Self {
        assert!(associativity > 0, "associativity must be positive");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let way_bytes = associativity as u64 * line_bytes as u64;
        assert!(
            capacity.as_bytes().is_multiple_of(way_bytes),
            "capacity must be a whole number of sets"
        );
        let sets = capacity.as_bytes() / way_bytes;
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        Self {
            capacity,
            associativity,
            line_bytes,
        }
    }

    /// The NTC server's 64 KB L1 instruction cache.
    pub fn ntc_l1i() -> Self {
        Self::new(MemBytes::from_kib(64), 4, 64)
    }

    /// The NTC server's 32 KB L1 data cache.
    pub fn ntc_l1d() -> Self {
        Self::new(MemBytes::from_kib(32), 4, 64)
    }

    /// A 512 KB unified L2.
    pub fn ntc_l2() -> Self {
        Self::new(MemBytes::from_kib(512), 8, 64)
    }

    /// The 16 MB shared LLC (as one core's 1 MB slice use
    /// [`CacheConfig::new`] directly).
    pub fn ntc_llc() -> Self {
        Self::new(MemBytes::from_mib(16), 16, 64)
    }

    /// Total capacity.
    pub fn capacity(&self) -> MemBytes {
        self.capacity
    }

    /// Ways per set.
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.capacity.as_bytes() / (self.associativity as u64 * self.line_bytes as u64)
    }
}

/// Hit/miss counters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio; 0.0 before any access.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// One set-associative LRU write-back cache.
///
/// # Examples
///
/// ```
/// use ntc_archsim::cache::{Cache, CacheConfig};
/// use ntc_units::MemBytes;
///
/// let mut c = Cache::new(CacheConfig::new(MemBytes::from_kib(4), 2, 64));
/// assert!(!c.access(0x1000, false)); // cold miss
/// assert!(c.access(0x1000, false));  // now a hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Per-set vectors of `(tag, dirty)` ordered most-recently-used
    /// first.
    sets: Vec<Vec<(u64, bool)>>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            sets: vec![Vec::with_capacity(config.associativity); config.num_sets() as usize],
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (contents are kept — useful for warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn index_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes as u64;
        let set = (line % self.config.num_sets()) as usize;
        let tag = line / self.config.num_sets();
        (set, tag)
    }

    /// Performs one access; returns `true` on hit. `write` marks the
    /// line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        let (set_idx, tag) = self.index_tag(addr);
        let assoc = self.config.associativity;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&(t, _)| t == tag) {
            let (t, dirty) = set.remove(pos);
            set.insert(0, (t, dirty || write));
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if set.len() == assoc {
            let (_, dirty) = set.pop().expect("set is full");
            if dirty {
                self.stats.writebacks += 1;
            }
        }
        set.insert(0, (tag, write));
        false
    }
}

/// Per-level statistics of a [`Hierarchy`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 data cache.
    pub l1d: CacheStats,
    /// Unified L2.
    pub l2: CacheStats,
    /// Last-level cache (or slice).
    pub llc: CacheStats,
}

impl HierarchyStats {
    /// DRAM accesses per kilo-instruction given the retired instruction
    /// count (LLC misses + write-backs reach memory).
    pub fn dram_dpki(&self, instructions: u64) -> f64 {
        assert!(instructions > 0, "instruction count must be positive");
        (self.llc.misses + self.llc.writebacks) as f64 * 1000.0 / instructions as f64
    }

    /// LLC accesses per kilo-instruction.
    pub fn llc_apki(&self, instructions: u64) -> f64 {
        assert!(instructions > 0, "instruction count must be positive");
        self.llc.accesses() as f64 * 1000.0 / instructions as f64
    }
}

/// A three-level inclusive-enough hierarchy: L1D → L2 → LLC slice.
///
/// Instruction fetch is not modeled (the banking kernels are loop-heavy
/// and fit their I-caches, per the paper's choice of a 64 KB I$).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1d: Cache,
    l2: Cache,
    llc: Cache,
}

impl Hierarchy {
    /// Builds a hierarchy from three geometries.
    pub fn new(l1d: CacheConfig, l2: CacheConfig, llc: CacheConfig) -> Self {
        Self {
            l1d: Cache::new(l1d),
            l2: Cache::new(l2),
            llc: Cache::new(llc),
        }
    }

    /// The NTC server's per-core view: 32 KB L1D, 512 KB L2, 1 MB LLC
    /// slice (16 MB shared across 16 cores).
    pub fn ntc_per_core() -> Self {
        Self::new(
            CacheConfig::ntc_l1d(),
            CacheConfig::ntc_l2(),
            CacheConfig::new(MemBytes::from_mib(1), 16, 64),
        )
    }

    /// One access walking down the hierarchy.
    pub fn access(&mut self, addr: u64, write: bool) {
        if self.l1d.access(addr, write) {
            return;
        }
        if self.l2.access(addr, write) {
            return;
        }
        let _ = self.llc.access(addr, write);
    }

    /// Per-level statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            llc: self.llc.stats(),
        }
    }

    /// Clears statistics on every level.
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_order() {
        // 2-way, 1 set: capacity = 2 lines of 64 B.
        let mut c = Cache::new(CacheConfig::new(MemBytes::from_bytes(128), 2, 64));
        assert!(!c.access(0, false));
        assert!(!c.access(64, false));
        // touch 0 so 64 becomes LRU
        assert!(c.access(0, false));
        // 128 evicts 64
        assert!(!c.access(128, false));
        assert!(c.access(0, false), "0 must survive");
        assert!(!c.access(64, false), "64 must have been evicted");
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = Cache::new(CacheConfig::new(MemBytes::from_bytes(64), 1, 64));
        c.access(0, true); // dirty
        c.access(64, false); // evicts dirty line
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn sequential_within_line_hits() {
        let mut c = Cache::new(CacheConfig::ntc_l1d());
        c.access(100, false);
        assert!(c.access(101, false), "same line must hit");
        assert!(c.access(163, false).eq(&false), "next line misses");
    }

    #[test]
    fn small_working_set_fits() {
        let mut h = Hierarchy::ntc_per_core();
        // 16 KB working set walked 8 times: first pass cold, rest hot.
        for _ in 0..8 {
            for addr in (0..16 * 1024).step_by(64) {
                h.access(addr, false);
            }
        }
        let s = h.stats();
        assert!(
            s.l1d.miss_ratio() < 0.2,
            "16 KB must mostly live in the 32 KB L1D, miss ratio {}",
            s.l1d.miss_ratio()
        );
        assert_eq!(s.llc.misses, 256, "only cold misses reach the LLC");
    }

    #[test]
    fn streaming_working_set_misses_everywhere() {
        let mut h = Hierarchy::ntc_per_core();
        // a 64 MB stream touches every line once: no reuse at all
        for addr in (0..64 * 1024 * 1024u64).step_by(4096) {
            h.access(addr, false);
        }
        let s = h.stats();
        assert!(s.l1d.miss_ratio() > 0.95);
        assert!(s.llc.miss_ratio() > 0.95);
    }

    #[test]
    fn stats_reset_keeps_contents() {
        let mut c = Cache::new(CacheConfig::ntc_l1d());
        c.access(0, false);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(0, false), "contents must survive a stats reset");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = CacheConfig::new(MemBytes::from_bytes(3 * 64), 1, 64);
    }
}
