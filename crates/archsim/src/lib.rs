//! An interval-model multicore server simulator — the workspace's
//! substitute for the gem5 runs of §VI-A of the paper.
//!
//! The paper uses gem5 only to obtain, per workload and DVFS level:
//! execution time, user instructions per second (UIPS), the share of
//! cycles spent waiting for memory (WFM), and DRAM traffic. An interval
//! model (in the style of Sniper) reproduces those first-order quantities
//! from a handful of microarchitectural parameters:
//!
//! * compute time scales as `1/f` (core cycles at the dispatch rate);
//! * on-chip (LLC) stall time also scales as `1/f` (cycle-denominated
//!   latency), divided by the core's memory-level parallelism (MLP);
//! * DRAM stall time is frequency-*independent* (nanosecond-denominated)
//!   and inflates under bandwidth contention — which is why memory-heavy
//!   workloads tolerate lower frequencies *until* the shared-bandwidth
//!   wall bites;
//! * in-order cores (Cavium ThunderX's A53-class) cannot overlap misses
//!   (low MLP) — the deficiency that motivated the paper's A57-based NTC
//!   server.
//!
//! The crate also contains a real set-associative cache simulator
//! ([`cache`]) driven by synthetic address streams ([`stream`]) with
//! power-law stack-distance locality; it is used to validate the analytic
//! per-kilo-instruction access rates baked into the workload [`Kernel`]s.
//!
//! # Examples
//!
//! ```
//! use ntc_archsim::{Kernel, Platform, ServerSim};
//! use ntc_units::Frequency;
//!
//! let sim = ServerSim::new(Platform::ntc_server());
//! let outcome = sim.run(&Kernel::low_mem(), Frequency::from_ghz(2.0));
//! assert!(outcome.exec_time.as_secs() > 0.1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod calibration;
mod coremodel;
pub mod ddr;
pub mod detailed;
mod dramsim;
pub mod efficiency;
mod kernel;
pub mod pipeline;
mod platform;
pub mod qos;
mod sim;
pub mod stream;

pub use coremodel::{CoreKind, CoreParams};
pub use dramsim::MemoryParams;
pub use kernel::Kernel;
pub use platform::Platform;
pub use sim::{ServerSim, SimOutcome};
