use serde::{Deserialize, Serialize};

/// The pipeline discipline of a core.
///
/// The paper replaced the Cavium ThunderX's in-order cores with
/// out-of-order Cortex-A57s precisely because in-order pipelines cannot
/// overlap independent misses: their effective memory-level parallelism
/// is near 1, so every stall is serialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreKind {
    /// In-order issue (Cortex-A53 class): no miss overlap.
    InOrder,
    /// Out-of-order issue (Cortex-A57 / Xeon class): overlapping misses.
    OutOfOrder,
}

/// Interval-model parameters of one core.
///
/// # Examples
///
/// ```
/// use ntc_archsim::{CoreKind, CoreParams};
///
/// let a57 = CoreParams::cortex_a57();
/// assert_eq!(a57.kind, CoreKind::OutOfOrder);
/// assert!(a57.mlp_mem > CoreParams::cortex_a53().mlp_mem);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreParams {
    /// Pipeline discipline.
    pub kind: CoreKind,
    /// Base instructions per cycle on cache-resident code.
    pub base_ipc: f64,
    /// Memory-level parallelism exploitable on DRAM misses.
    pub mlp_mem: f64,
    /// Overlap factor for on-chip (LLC) accesses.
    pub mlp_llc: f64,
}

impl CoreParams {
    /// An ARM Cortex-A57-class out-of-order core — the NTC server's core.
    pub fn cortex_a57() -> Self {
        Self {
            kind: CoreKind::OutOfOrder,
            base_ipc: 2.0,
            mlp_mem: 4.0,
            mlp_llc: 4.0,
        }
    }

    /// An ARM Cortex-A53-class in-order core — the original ThunderX
    /// pipeline the paper found inadequate. Dual-issue in-order: decent
    /// IPC on cache-resident code, but little miss overlap.
    pub fn cortex_a53() -> Self {
        Self {
            kind: CoreKind::InOrder,
            base_ipc: 1.2,
            mlp_mem: 1.7,
            mlp_llc: 2.5,
        }
    }

    /// An Intel Westmere-class (Xeon X5650) wide out-of-order core.
    pub fn xeon_westmere() -> Self {
        Self {
            kind: CoreKind::OutOfOrder,
            base_ipc: 2.0,
            mlp_mem: 6.0,
            mlp_llc: 4.0,
        }
    }

    /// An Intel Sandy-Bridge-class (E5-2620) out-of-order core.
    pub fn xeon_sandy_bridge() -> Self {
        Self {
            kind: CoreKind::OutOfOrder,
            base_ipc: 2.2,
            mlp_mem: 6.0,
            mlp_llc: 4.0,
        }
    }

    /// Core cycles to retire `instructions` of cache-resident work.
    pub fn compute_cycles(&self, instructions: u64) -> f64 {
        instructions as f64 / self.base_ipc
    }

    /// Core cycles stalled on `accesses` LLC hits of `llc_latency_cycles`
    /// each, after MLP overlap.
    pub fn llc_stall_cycles(&self, accesses: f64, llc_latency_cycles: f64) -> f64 {
        accesses * llc_latency_cycles / self.mlp_llc
    }

    /// Wall-clock seconds stalled on `accesses` DRAM misses of
    /// `effective_latency_ns` each, after MLP overlap. This term does not
    /// scale with core frequency — the root of the NTC advantage for
    /// memory-heavy workloads.
    pub fn dram_stall_seconds(&self, accesses: f64, effective_latency_ns: f64) -> f64 {
        accesses * effective_latency_ns * 1e-9 / self.mlp_mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_serializes_misses() {
        let a53 = CoreParams::cortex_a53();
        let a57 = CoreParams::cortex_a57();
        let stall_a53 = a53.dram_stall_seconds(1e8, 80.0);
        let stall_a57 = a57.dram_stall_seconds(1e8, 80.0);
        assert!(
            stall_a53 > 2.0 * stall_a57,
            "in-order cores must pay far more stall time"
        );
    }

    #[test]
    fn compute_cycles_scale_with_ipc() {
        let a57 = CoreParams::cortex_a57();
        let a53 = CoreParams::cortex_a53();
        assert!(a53.compute_cycles(1_000_000) > a57.compute_cycles(1_000_000));
    }

    #[test]
    fn llc_stalls_divide_by_overlap() {
        let a57 = CoreParams::cortex_a57();
        assert!((a57.llc_stall_cycles(1000.0, 40.0) - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn presets_are_distinct() {
        assert_ne!(CoreParams::cortex_a57(), CoreParams::cortex_a53());
        assert_ne!(CoreParams::xeon_westmere(), CoreParams::xeon_sandy_bridge());
    }
}
