//! A cycle-driven pipeline model of one core — the detailed counterpart
//! of the analytic interval model in [`crate::CoreParams`].
//!
//! The paper simulates its server in gem5 (cycle-accurate, with an
//! out-of-order Cortex-A57 and the in-order A53 it replaces). This
//! module reproduces the pipeline-level mechanism behind the interval
//! model's parameters: a reorder window of configurable depth, a
//! dispatch width, and load instructions with latencies. An in-order
//! window (depth = issue width) serializes every miss; a deep window
//! overlaps independent misses up to the machine's memory-level
//! parallelism — which is exactly the `mlp_mem` the interval model uses.
//! The `interval_model_agrees_*` tests close the loop between the two.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One micro-op in the synthetic stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Uop {
    /// Single-cycle ALU work.
    Alu,
    /// A load with the given completion latency in cycles.
    Load {
        /// Cycles until the value returns.
        latency: u32,
    },
}

/// Pipeline geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Micro-ops dispatched per cycle.
    pub width: u32,
    /// Reorder-buffer depth (in-order cores: equal to the width).
    pub rob: u32,
    /// Maximum loads in flight (MSHR count).
    pub max_outstanding_loads: u32,
}

impl PipelineConfig {
    /// A Cortex-A57-class out-of-order core: 3-wide, 128-entry ROB,
    /// up to 6 outstanding loads.
    pub fn cortex_a57() -> Self {
        Self {
            width: 3,
            rob: 128,
            max_outstanding_loads: 6,
        }
    }

    /// A Cortex-A53-class in-order core: dual-issue, no reorder window,
    /// a single outstanding miss.
    pub fn cortex_a53() -> Self {
        Self {
            width: 2,
            rob: 2,
            max_outstanding_loads: 1,
        }
    }
}

/// Result of a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineOutcome {
    /// Micro-ops retired.
    pub retired: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Peak loads simultaneously in flight (the realized MLP).
    pub peak_outstanding_loads: u32,
}

impl PipelineOutcome {
    /// Retired micro-ops per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

/// A simplified cycle-driven pipeline: dispatch in order into a reorder
/// window, execute loads with latency, retire in order.
///
/// Dependences are modeled statistically: each load blocks retirement
/// (and, for an in-order machine, dispatch) until complete; ALU ops are
/// independent. This captures the MLP mechanism without a full register
/// renamer.
///
/// # Examples
///
/// ```
/// use ntc_archsim::pipeline::{Pipeline, PipelineConfig, Uop};
///
/// let mut p = Pipeline::new(PipelineConfig::cortex_a57());
/// let stream = vec![Uop::Alu; 3000];
/// let out = p.run(&stream);
/// assert!(out.ipc() > 2.9); // ALU-only code sustains the full width
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the width is zero or the ROB is narrower than the
    /// width.
    pub fn new(config: PipelineConfig) -> Self {
        assert!(config.width > 0, "dispatch width must be positive");
        assert!(
            config.rob >= config.width,
            "ROB must hold at least one dispatch group"
        );
        assert!(config.max_outstanding_loads > 0, "need at least one MSHR");
        Self { config }
    }

    /// Runs the micro-op stream to completion.
    pub fn run(&mut self, stream: &[Uop]) -> PipelineOutcome {
        // Window entries: completion cycle of each in-flight uop, in
        // program order.
        let mut window: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        let mut outstanding_loads: Vec<u64> = Vec::new(); // completion cycles
        let mut peak_mlp = 0u32;
        let mut cycle = 0u64;
        let mut next = 0usize;
        let mut retired = 0u64;

        while retired < stream.len() as u64 {
            // retire completed uops in order
            while let Some(&done) = window.front() {
                if done <= cycle {
                    window.pop_front();
                    retired += 1;
                } else {
                    break;
                }
            }
            outstanding_loads.retain(|&d| d > cycle);

            // dispatch up to `width` uops if the window has room
            let mut dispatched = 0;
            while dispatched < self.config.width
                && next < stream.len()
                && (window.len() as u32) < self.config.rob
            {
                match stream[next] {
                    Uop::Alu => {
                        window.push_back(cycle + 1);
                    }
                    Uop::Load { latency } => {
                        if outstanding_loads.len() as u32 >= self.config.max_outstanding_loads {
                            break; // structural stall: MSHRs full
                        }
                        let done = cycle + u64::from(latency);
                        window.push_back(done);
                        outstanding_loads.push(done);
                        peak_mlp = peak_mlp.max(outstanding_loads.len() as u32);
                    }
                }
                next += 1;
                dispatched += 1;
            }

            cycle += 1;
            // Fast-forward through long stalls: if nothing can retire or
            // dispatch until the oldest completion, jump there.
            if dispatched == 0 {
                if let Some(&done) = window.front() {
                    if done > cycle {
                        cycle = done;
                    }
                }
            }
        }

        PipelineOutcome {
            retired,
            cycles: cycle,
            peak_outstanding_loads: peak_mlp,
        }
    }
}

/// Generates a synthetic micro-op stream with the given load fraction
/// and miss profile (deterministic under `seed`).
///
/// `miss_rate` of the loads take `miss_latency` cycles; the rest hit in
/// `hit_latency`.
///
/// # Panics
///
/// Panics if the fractions are outside `[0, 1]`.
pub fn synth_stream(
    n: usize,
    load_fraction: f64,
    miss_rate: f64,
    hit_latency: u32,
    miss_latency: u32,
    seed: u64,
) -> Vec<Uop> {
    assert!(
        (0.0..=1.0).contains(&load_fraction),
        "load fraction in [0,1]"
    );
    assert!((0.0..=1.0).contains(&miss_rate), "miss rate in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen::<f64>() < load_fraction {
                let latency = if rng.gen::<f64>() < miss_rate {
                    miss_latency
                } else {
                    hit_latency
                };
                Uop::Load { latency }
            } else {
                Uop::Alu
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_code_sustains_width() {
        let out = Pipeline::new(PipelineConfig::cortex_a57()).run(&vec![Uop::Alu; 10_000]);
        assert!(out.ipc() > 2.9, "OoO ALU IPC {}", out.ipc());
        let out53 = Pipeline::new(PipelineConfig::cortex_a53()).run(&vec![Uop::Alu; 10_000]);
        assert!(out53.ipc() > 1.9, "A53 ALU IPC {}", out53.ipc());
    }

    #[test]
    fn ooo_hides_miss_latency_in_order_does_not() {
        let stream = synth_stream(20_000, 0.3, 0.1, 4, 160, 42);
        let ooo = Pipeline::new(PipelineConfig::cortex_a57()).run(&stream);
        let ino = Pipeline::new(PipelineConfig::cortex_a53()).run(&stream);
        assert!(
            ooo.ipc() > 1.6 * ino.ipc(),
            "OoO must be much faster on missy code: {:.2} vs {:.2}",
            ooo.ipc(),
            ino.ipc()
        );
        assert!(ooo.peak_outstanding_loads > 1);
        assert_eq!(ino.peak_outstanding_loads, 1);
    }

    #[test]
    fn mlp_is_bounded_by_mshrs() {
        let stream = synth_stream(20_000, 0.5, 0.5, 4, 200, 7);
        let out = Pipeline::new(PipelineConfig::cortex_a57()).run(&stream);
        assert!(out.peak_outstanding_loads <= 6);
        assert!(
            out.peak_outstanding_loads >= 4,
            "heavy miss traffic should fill most MSHRs, got {}",
            out.peak_outstanding_loads
        );
    }

    #[test]
    fn interval_model_agrees_on_miss_dominated_code() {
        // For a miss-dominated stream, the interval model predicts
        // cycles ~ misses x latency / MLP; the pipeline should land in
        // the same ballpark (within 2x).
        let n = 30_000;
        let miss_latency = 160u32;
        let stream = synth_stream(n, 0.3, 0.2, 4, miss_latency, 3);
        let misses = stream
            .iter()
            .filter(|u| matches!(u, Uop::Load { latency } if *latency == miss_latency))
            .count() as f64;
        let out = Pipeline::new(PipelineConfig::cortex_a57()).run(&stream);
        let realized_mlp = out.peak_outstanding_loads as f64;
        let interval_cycles = n as f64 / 3.0 + misses * f64::from(miss_latency) / realized_mlp;
        let ratio = out.cycles as f64 / interval_cycles;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "pipeline {} vs interval {} cycles (ratio {ratio:.2})",
            out.cycles,
            interval_cycles
        );
    }

    #[test]
    fn retires_every_uop() {
        let stream = synth_stream(5_000, 0.4, 0.3, 4, 100, 9);
        let out = Pipeline::new(PipelineConfig::cortex_a57()).run(&stream);
        assert_eq!(out.retired, 5_000);
    }

    #[test]
    #[should_panic(expected = "at least one dispatch group")]
    fn degenerate_rob_rejected() {
        let _ = Pipeline::new(PipelineConfig {
            width: 4,
            rob: 2,
            max_outstanding_loads: 1,
        });
    }
}
