//! Detailed execution mode: pipeline × cache hierarchy × DDR timing.
//!
//! The interval model ([`crate::ServerSim`]) answers the paper's
//! questions analytically; this module is the slow, mechanism-level
//! cross-check (the role gem5 played for the authors). A synthetic
//! address stream with the kernel's working set drives the real
//! set-associative hierarchy; each load's service level determines its
//! latency (L1/L2/LLC in core cycles, DRAM through the bank-level
//! [`crate::ddr::DdrController`]); the [`crate::pipeline::Pipeline`]
//! executes the resulting micro-op stream cycle by cycle.
//!
//! The `detailed_vs_interval_*` tests close the loop: both modes must
//! agree on the qualitative behaviour (frequency sensitivity, platform
//! ordering) that every figure of the paper rests on.

use ntc_units::{Frequency, Seconds};
use serde::{Deserialize, Serialize};

use crate::cache::Hierarchy;
use crate::ddr::{DdrController, DdrTiming};
use crate::pipeline::{Pipeline, PipelineConfig, Uop};
use crate::stream::AddressStream;
use crate::{CoreKind, Kernel, Platform};

/// Result of a detailed run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetailedOutcome {
    /// Micro-ops executed (the sampled window).
    pub uops: u64,
    /// Core cycles elapsed.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// L1D miss ratio observed.
    pub l1d_miss_ratio: f64,
    /// LLC-slice miss ratio observed.
    pub llc_miss_ratio: f64,
    /// DRAM accesses issued.
    pub dram_accesses: u64,
    /// DRAM row-buffer hit rate.
    pub dram_row_hit_rate: f64,
    /// Projected full-kernel execution time at the given frequency.
    pub projected_exec_time: Seconds,
}

/// Configuration of a detailed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetailedConfig {
    /// Micro-ops to simulate (a sample of the kernel; the projection
    /// scales to the full instruction count).
    pub sample_uops: usize,
    /// RNG seed for the address stream.
    pub seed: u64,
}

impl Default for DetailedConfig {
    fn default() -> Self {
        Self {
            sample_uops: 200_000,
            seed: 42,
        }
    }
}

/// The detailed simulator for one core of a platform.
#[derive(Debug, Clone)]
pub struct DetailedSim {
    platform: Platform,
    config: DetailedConfig,
}

impl DetailedSim {
    /// Creates a detailed simulator.
    pub fn new(platform: Platform, config: DetailedConfig) -> Self {
        assert!(config.sample_uops > 0, "need a non-empty sample");
        Self { platform, config }
    }

    /// The pipeline geometry for this platform's core kind.
    fn pipeline_config(&self) -> PipelineConfig {
        match self.platform.core.kind {
            CoreKind::OutOfOrder => PipelineConfig::cortex_a57(),
            CoreKind::InOrder => PipelineConfig::cortex_a53(),
        }
    }

    /// The DDR timing for this platform (DDR4 for the ARM servers,
    /// DDR3 for the Xeons — distinguished by peak bandwidth).
    fn ddr_timing(&self) -> DdrTiming {
        if self.platform.memory.peak_bandwidth > 30.0e9 {
            DdrTiming::ddr3_1333()
        } else {
            DdrTiming::ddr4_2400()
        }
    }

    /// Runs `kernel` on one core at frequency `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is zero.
    pub fn run(&self, kernel: &Kernel, f: Frequency) -> DetailedOutcome {
        assert!(f > Frequency::ZERO, "core frequency must be positive");
        let cycle_ns = 1.0e9 / f.as_hz();

        // Per-uop memory-op probability from the kernel's LLC access
        // rate: an LLC access implies the load missed L1 and L2, so the
        // raw load fraction is higher; derive it from a nominal 30%
        // load mix scaled by memory intensity.
        let load_fraction = (0.1 + kernel.llc_apki() / 400.0).min(0.5);

        // Locality exponent chosen so the fraction of fresh (uniform)
        // addresses matches the kernel's DRAM rate: a fresh address in
        // a multi-hundred-MB working set almost surely misses the
        // hierarchy, so uniform_fraction ~ DPKI / (1000 x load_fraction).
        let uniform_fraction =
            (kernel.dram_dpki() / (1000.0 * load_fraction)).clamp(1.0 / 400.0, 0.9);
        let locality = (1.0 / uniform_fraction - 1.0).clamp(0.2, 400.0);
        let mut stream = AddressStream::new(kernel.working_set(), locality, self.config.seed);
        let mut hierarchy = Hierarchy::new(
            crate::cache::CacheConfig::ntc_l1d(),
            crate::cache::CacheConfig::ntc_l2(),
            crate::cache::CacheConfig::new(self.platform.llc_share_per_core(), 16, 64),
        );
        let mut ddr = DdrController::new(self.ddr_timing(), 16);

        // Warm the hierarchy with 10% of the sample so cold misses do
        // not dominate the measurement.
        for _ in 0..self.config.sample_uops / 10 {
            let a = stream.next_address();
            hierarchy.access(a, false);
        }
        hierarchy.reset_stats();

        // Build the uop stream: each load's latency comes from where it
        // hits. We track virtual time coarsely for DDR arrival times.
        let mut uops = Vec::with_capacity(self.config.sample_uops);
        let mut vtime_ns = 0.0f64;
        let mut rng_toggle = 0u64;
        for _ in 0..self.config.sample_uops {
            rng_toggle = rng_toggle.wrapping_mul(6364136223846793005).wrapping_add(1);
            let is_load = (rng_toggle >> 33) as f64 / (u32::MAX as f64) < load_fraction;
            if !is_load {
                uops.push(Uop::Alu);
                vtime_ns += cycle_ns / self.pipeline_config().width as f64;
                continue;
            }
            let addr = stream.next_address();
            let before = hierarchy.stats();
            hierarchy.access(addr, false);
            let after = hierarchy.stats();
            let latency_cycles = if after.l1d.misses == before.l1d.misses {
                4.0 // L1 hit
            } else if after.l2.misses == before.l2.misses {
                12.0 // L2 hit
            } else if after.llc.misses == before.llc.misses {
                self.platform.llc_latency_cycles
            } else {
                // DRAM access through the bank-level controller.
                let done = ddr.access(addr, vtime_ns);
                let dram_ns = done - vtime_ns;
                self.platform.llc_latency_cycles + dram_ns / cycle_ns
            };
            vtime_ns += latency_cycles * cycle_ns / 4.0; // optimistic overlap
            uops.push(Uop::Load {
                latency: latency_cycles.ceil() as u32,
            });
        }

        let out = Pipeline::new(self.pipeline_config()).run(&uops);
        let hstats = hierarchy.stats();
        let dstats = ddr.stats();

        let scale = kernel.instructions() as f64 / self.config.sample_uops as f64;
        let projected = out.cycles as f64 * scale / f.as_hz();

        DetailedOutcome {
            uops: out.retired,
            cycles: out.cycles,
            ipc: out.ipc(),
            l1d_miss_ratio: hstats.l1d.miss_ratio(),
            llc_miss_ratio: hstats.llc.miss_ratio(),
            dram_accesses: dstats.requests(),
            dram_row_hit_rate: dstats.hit_rate(),
            projected_exec_time: Seconds::new(projected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerSim;

    fn detailed(platform: Platform) -> DetailedSim {
        DetailedSim::new(
            platform,
            DetailedConfig {
                sample_uops: 60_000,
                seed: 7,
            },
        )
    }

    #[test]
    fn ipc_orders_by_memory_intensity() {
        let sim = detailed(Platform::ntc_server());
        let f = Frequency::from_ghz(2.0);
        let low = sim.run(&Kernel::low_mem(), f);
        let high = sim.run(&Kernel::high_mem(), f);
        assert!(
            low.ipc > high.ipc,
            "low-mem must retire faster: {:.2} vs {:.2}",
            low.ipc,
            high.ipc
        );
        assert!(low.llc_miss_ratio <= high.llc_miss_ratio + 0.05);
    }

    #[test]
    fn detailed_vs_interval_frequency_sensitivity() {
        // Both modes must agree that low-mem is frequency-sensitive.
        let det = detailed(Platform::ntc_server());
        let int = ServerSim::new(Platform::ntc_server());
        let t_det_1 = det.run(&Kernel::low_mem(), Frequency::from_ghz(1.0));
        let t_det_2 = det.run(&Kernel::low_mem(), Frequency::from_ghz(2.0));
        let r_det = t_det_1.projected_exec_time.as_secs() / t_det_2.projected_exec_time.as_secs();
        let r_int = int
            .run(&Kernel::low_mem(), Frequency::from_ghz(1.0))
            .exec_time
            .as_secs()
            / int
                .run(&Kernel::low_mem(), Frequency::from_ghz(2.0))
                .exec_time
                .as_secs();
        assert!(
            (r_det - r_int).abs() < 0.5,
            "frequency scaling must agree: detailed {r_det:.2} vs interval {r_int:.2}"
        );
    }

    #[test]
    fn detailed_vs_interval_platform_ordering() {
        // The A53 ThunderX must lose to the A57 NTC server in both
        // modes on memory-heavy work.
        let f = Frequency::from_ghz(2.0);
        let det_ntc = detailed(Platform::ntc_server()).run(&Kernel::mid_mem(), f);
        let det_tx = detailed(Platform::thunderx()).run(&Kernel::mid_mem(), f);
        assert!(
            det_ntc.projected_exec_time < det_tx.projected_exec_time,
            "detailed mode must rank NTC above ThunderX"
        );
    }

    #[test]
    fn dram_row_locality_is_realistic() {
        let sim = detailed(Platform::ntc_server());
        let out = sim.run(&Kernel::high_mem(), Frequency::from_ghz(2.0));
        assert!(out.dram_accesses > 0, "high-mem must reach DRAM");
        assert!(
            (0.0..=1.0).contains(&out.dram_row_hit_rate),
            "hit rate in range"
        );
    }

    #[test]
    fn sample_is_fully_retired() {
        let sim = detailed(Platform::ntc_server());
        let out = sim.run(&Kernel::low_mem(), Frequency::from_ghz(1.5));
        assert_eq!(out.uops, 60_000);
        assert!(out.cycles > 0);
    }
}
