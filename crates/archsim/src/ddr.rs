//! A bank-level DDR4 timing model — the detailed counterpart of the
//! aggregate [`crate::MemoryParams`] contention model.
//!
//! The paper configures its server with "a DDR4 memory model with memory
//! controller" after the Micron DDR4 datasheet; this module reproduces
//! the first-order behaviour of such a controller: per-bank row buffers
//! (open-page policy), `tRCD`/`tRP`/`CL` timing for row activation,
//! precharge and column access, and an FR-FCFS-like preference for
//! row-buffer hits. Driving it with synthetic request streams yields the
//! average latencies and sustainable bandwidths that calibrate
//! [`crate::MemoryParams`] (see the `validates_memoryparams_*` tests).

use ntc_units::Seconds;
use serde::{Deserialize, Serialize};

/// DDR timing parameters, in memory-clock cycles.
///
/// # Examples
///
/// ```
/// use ntc_archsim::ddr::DdrTiming;
///
/// let t = DdrTiming::ddr4_2400();
/// assert!((t.clock_ns - 0.833).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdrTiming {
    /// Memory clock period in nanoseconds (DDR4-2400: 0.833 ns).
    pub clock_ns: f64,
    /// ACT-to-READ delay (row activation), cycles.
    pub t_rcd: u64,
    /// Precharge time, cycles.
    pub t_rp: u64,
    /// CAS (column access) latency, cycles.
    pub cl: u64,
    /// Minimum row-open time, cycles.
    pub t_ras: u64,
    /// Data-burst duration for one 64-byte line (BL8 on a 64-bit bus,
    /// DDR: 4 clock cycles), cycles.
    pub burst: u64,
}

impl DdrTiming {
    /// JEDEC DDR4-2400 (CL17) timing, matching the paper's 2400 MHz
    /// parts with 19.2 GB/s peak.
    pub fn ddr4_2400() -> Self {
        Self {
            clock_ns: 1000.0 / 1200.0,
            t_rcd: 17,
            t_rp: 17,
            cl: 17,
            t_ras: 39,
            burst: 4,
        }
    }

    /// DDR3-1333 (CL9) timing — the baseline Xeon hosts.
    pub fn ddr3_1333() -> Self {
        Self {
            clock_ns: 1000.0 / 666.7,
            t_rcd: 9,
            t_rp: 9,
            cl: 9,
            t_ras: 24,
            burst: 4,
        }
    }

    /// Latency of a row-buffer hit in nanoseconds (CAS + burst).
    pub fn hit_ns(&self) -> f64 {
        (self.cl + self.burst) as f64 * self.clock_ns
    }

    /// Latency of a row miss (closed bank) in nanoseconds
    /// (ACT + CAS + burst).
    pub fn miss_ns(&self) -> f64 {
        (self.t_rcd + self.cl + self.burst) as f64 * self.clock_ns
    }

    /// Latency of a row conflict (wrong row open) in nanoseconds
    /// (PRE + ACT + CAS + burst).
    pub fn conflict_ns(&self) -> f64 {
        (self.t_rp + self.t_rcd + self.cl + self.burst) as f64 * self.clock_ns
    }

    /// Peak data bandwidth in bytes/second for a 64-bit channel
    /// (one 64-byte line per `burst` cycles when streaming).
    pub fn peak_bandwidth(&self) -> f64 {
        64.0 / (self.burst as f64 * self.clock_ns * 1e-9)
    }
}

/// Per-access classification by row-buffer outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank was idle (precharged): activation needed.
    Miss,
    /// A different row was open: precharge + activation needed.
    Conflict,
}

/// Aggregate statistics of a [`DdrController`] run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DdrStats {
    /// Row-buffer hits.
    pub hits: u64,
    /// Row misses (bank was precharged).
    pub misses: u64,
    /// Row conflicts (wrong row open).
    pub conflicts: u64,
    /// Total latency across all requests, nanoseconds.
    pub total_latency_ns: f64,
    /// Completion time of the last request, nanoseconds.
    pub makespan_ns: f64,
}

impl DdrStats {
    /// Total requests served.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses + self.conflicts
    }

    /// Row-buffer hit rate.
    pub fn hit_rate(&self) -> f64 {
        if self.requests() == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests() as f64
        }
    }

    /// Mean request latency in nanoseconds.
    pub fn mean_latency_ns(&self) -> f64 {
        if self.requests() == 0 {
            0.0
        } else {
            self.total_latency_ns / self.requests() as f64
        }
    }

    /// Achieved bandwidth in bytes/second (64-byte lines over the
    /// makespan).
    pub fn bandwidth(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            0.0
        } else {
            self.requests() as f64 * 64.0 / (self.makespan_ns * 1e-9)
        }
    }
}

/// A single-channel, multi-bank DDR controller with open-page policy.
///
/// Requests are processed in arrival order but each bank serializes its
/// own activity (banks overlap with each other — the bank-level
/// parallelism that makes interleaved streams fast).
///
/// # Examples
///
/// ```
/// use ntc_archsim::ddr::{DdrController, DdrTiming};
///
/// let mut ctrl = DdrController::new(DdrTiming::ddr4_2400(), 16);
/// // Sequential stream: row hits after the first access.
/// for i in 0..64 {
///     ctrl.access(i * 64, i as f64 * 10.0);
/// }
/// assert!(ctrl.stats().hit_rate() > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct DdrController {
    timing: DdrTiming,
    /// Per-bank `(open_row, ready_at_ns)`.
    banks: Vec<(Option<u64>, f64)>,
    /// Data-bus free-at time (the shared channel).
    bus_free_ns: f64,
    stats: DdrStats,
    row_bytes: u64,
}

impl DdrController {
    /// Creates a controller with `num_banks` banks (DDR4: 16 banks in
    /// 4 bank groups; we model them flat).
    ///
    /// # Panics
    ///
    /// Panics if `num_banks == 0`.
    pub fn new(timing: DdrTiming, num_banks: usize) -> Self {
        assert!(num_banks > 0, "a DDR device has at least one bank");
        Self {
            timing,
            banks: vec![(None, 0.0); num_banks],
            bus_free_ns: 0.0,
            stats: DdrStats::default(),
            row_bytes: 8192, // 8 KB row (1 KB page x8 devices, x8 per rank)
        }
    }

    /// The timing set.
    pub fn timing(&self) -> &DdrTiming {
        &self.timing
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DdrStats {
        self.stats
    }

    fn map(&self, addr: u64) -> (usize, u64) {
        let line = addr / 64;
        // Interleave consecutive lines across banks at row granularity:
        // bank bits above the column bits, row bits above the bank bits.
        let lines_per_row = self.row_bytes / 64;
        let bank = ((line / lines_per_row) % self.banks.len() as u64) as usize;
        let row = line / (lines_per_row * self.banks.len() as u64);
        (bank, row)
    }

    /// Issues one 64-byte read at absolute time `arrival_ns`; returns
    /// the completion time in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `arrival_ns` is negative or not finite.
    pub fn access(&mut self, addr: u64, arrival_ns: f64) -> f64 {
        assert!(
            arrival_ns.is_finite() && arrival_ns >= 0.0,
            "arrival time must be finite and non-negative"
        );
        let (bank_idx, row) = self.map(addr);
        let (open_row, ready_ns) = self.banks[bank_idx];
        let start = arrival_ns.max(ready_ns);

        let (outcome, service_ns) = match open_row {
            Some(r) if r == row => (RowOutcome::Hit, self.timing.hit_ns()),
            Some(_) => (RowOutcome::Conflict, self.timing.conflict_ns()),
            None => (RowOutcome::Miss, self.timing.miss_ns()),
        };

        // The data burst occupies the shared bus: serialize bursts.
        let burst_ns = self.timing.burst as f64 * self.timing.clock_ns;
        let data_start = (start + service_ns - burst_ns).max(self.bus_free_ns);
        let done = data_start + burst_ns;
        self.bus_free_ns = done;
        // Column accesses to an open row pipeline at burst rate (tCCD);
        // the bank is only blocked for the activate/precharge portion of
        // a miss or conflict, not for the full access latency.
        let bank_ready = start + (service_ns - self.timing.hit_ns()) + burst_ns;
        self.banks[bank_idx] = (Some(row), bank_ready);

        match outcome {
            RowOutcome::Hit => self.stats.hits += 1,
            RowOutcome::Miss => self.stats.misses += 1,
            RowOutcome::Conflict => self.stats.conflicts += 1,
        }
        self.stats.total_latency_ns += done - arrival_ns;
        self.stats.makespan_ns = self.stats.makespan_ns.max(done);
        done
    }

    /// Replays a request stream of `(address, arrival_ns)` pairs and
    /// returns the total makespan.
    pub fn replay<I>(&mut self, requests: I) -> Seconds
    where
        I: IntoIterator<Item = (u64, f64)>,
    {
        for (addr, t) in requests {
            self.access(addr, t);
        }
        Seconds::new(self.stats.makespan_ns * 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_derived_latencies() {
        let t = DdrTiming::ddr4_2400();
        assert!(t.hit_ns() < t.miss_ns());
        assert!(t.miss_ns() < t.conflict_ns());
        // DDR4-2400 CL17: hit ~17.5 ns, conflict ~45.8 ns
        assert!((t.hit_ns() - 17.5).abs() < 1.0);
        assert!((t.conflict_ns() - 45.8).abs() < 1.5);
    }

    #[test]
    fn peak_bandwidth_matches_paper() {
        // 19.2 GB/s for DDR4-2400 on a 64-bit channel.
        let bw = DdrTiming::ddr4_2400().peak_bandwidth();
        assert!((bw - 19.2e9).abs() < 0.1e9, "got {bw:.3e}");
    }

    #[test]
    fn sequential_stream_hits_rows() {
        let mut ctrl = DdrController::new(DdrTiming::ddr4_2400(), 16);
        for i in 0..1024u64 {
            ctrl.access(i * 64, i as f64);
        }
        let s = ctrl.stats();
        assert!(
            s.hit_rate() > 0.95,
            "sequential access must hit the row buffer, rate {}",
            s.hit_rate()
        );
    }

    #[test]
    fn strided_row_thrashing_conflicts() {
        // Jump a full row x num_banks each access so every access lands
        // in the same bank on a different row.
        let mut ctrl = DdrController::new(DdrTiming::ddr4_2400(), 16);
        let stride = 8192 * 16;
        for i in 0..512u64 {
            ctrl.access(i * stride, i as f64);
        }
        let s = ctrl.stats();
        assert_eq!(s.hits, 0, "no reuse -> no hits");
        assert!(s.conflicts > 400, "same-bank different-row must conflict");
        assert!(s.mean_latency_ns() > DdrTiming::ddr4_2400().hit_ns());
    }

    #[test]
    fn streaming_bandwidth_approaches_peak() {
        let mut ctrl = DdrController::new(DdrTiming::ddr4_2400(), 16);
        // Back-to-back sequential requests (arrival 0): bus-limited.
        for i in 0..4096u64 {
            ctrl.access(i * 64, 0.0);
        }
        let achieved = ctrl.stats().bandwidth();
        let peak = DdrTiming::ddr4_2400().peak_bandwidth();
        assert!(
            achieved > 0.85 * peak,
            "streaming should achieve >85% of peak: {:.2} of {:.2} GB/s",
            achieved / 1e9,
            peak / 1e9
        );
        assert!(achieved <= peak * 1.001);
    }

    #[test]
    fn validates_memoryparams_saturation() {
        // The aggregate model assumes ~94% of peak is sustainable; the
        // detailed controller on a mixed stream should land near that.
        let mut ctrl = DdrController::new(DdrTiming::ddr4_2400(), 16);
        // mostly-sequential with occasional row jumps (90/10)
        let mut addr = 0u64;
        for i in 0..8192u64 {
            addr = if i % 10 == 9 {
                addr + 8192 * 16 * 3
            } else {
                addr + 64
            };
            ctrl.access(addr, 0.0);
        }
        let frac = ctrl.stats().bandwidth() / DdrTiming::ddr4_2400().peak_bandwidth();
        assert!(
            (0.80..=1.0).contains(&frac),
            "mixed-stream efficiency {frac:.3} should be near the 0.94 used by MemoryParams"
        );
    }

    #[test]
    fn validates_memoryparams_base_latency() {
        // The aggregate model's 80 ns unloaded latency corresponds to a
        // random (row-missing) lightly-loaded stream plus on-chip
        // traversal; the DRAM part alone must come out below it.
        let mut ctrl = DdrController::new(DdrTiming::ddr4_2400(), 16);
        let mut addr = 12345u64;
        for i in 0..512u64 {
            // pseudo-random walk, sparse in time (idle queue)
            addr = addr
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ctrl.access(addr % (1 << 30), i as f64 * 200.0);
        }
        let lat = ctrl.stats().mean_latency_ns();
        assert!(
            (20.0..80.0).contains(&lat),
            "unloaded random-access DRAM latency {lat:.1} ns should sit below the 80 ns end-to-end figure"
        );
    }

    #[test]
    fn banks_overlap() {
        // Same-bank back-to-back conflicts must be slower than
        // bank-interleaved conflicts.
        let t = DdrTiming::ddr4_2400();
        let run = |stride: u64| {
            let mut ctrl = DdrController::new(t, 16);
            for i in 0..256u64 {
                ctrl.access(i * stride, 0.0);
            }
            ctrl.stats().makespan_ns
        };
        let same_bank = run(8192 * 16); // every access same bank, new row
        let interleaved = run(8192); // round-robin across banks, new rows
        assert!(
            interleaved < 0.5 * same_bank,
            "bank-level parallelism must pay off: {interleaved:.0} vs {same_bank:.0} ns"
        );
    }
}
