//! Property-based tests of the forecasting stack.

use ntc_forecast::{diff, metrics, Arima, ArimaPredictor, HoltWinters, Predictor, SeasonalNaive};
use ntc_trace::TimeSeries;
use proptest::prelude::*;

fn series(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn difference_integrate_round_trip(y in series(64), lag in 1usize..8) {
        let z = diff::difference(&y, lag);
        let rec = diff::integrate(&y[..lag], &z, lag);
        for (a, b) in rec.iter().zip(&y[lag..]) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn seasonal_naive_output_is_periodic(y in series(96), h in 1usize..48) {
        let period = 24;
        let ts = TimeSeries::from_values(y);
        let fc = SeasonalNaive::new(period).forecast(&ts, h);
        prop_assert_eq!(fc.len(), h);
        for i in period..h {
            prop_assert!((fc.at(i) - fc.at(i - period)).abs() < 1e-12);
        }
    }

    #[test]
    fn predictors_return_requested_horizon_and_bounds(
        y in series(3 * 288 + 17),
        h in 1usize..300,
    ) {
        let ts = TimeSeries::from_values(y);
        let hi = 1.5 * ts.peak() + 1e-9;
        for p in [
            &ArimaPredictor::daily(288) as &dyn Predictor,
            &HoltWinters::daily(288),
            &SeasonalNaive::new(288),
        ] {
            let fc = p.forecast(&ts, h);
            prop_assert_eq!(fc.len(), h);
            prop_assert!(fc.values().iter().all(|&v| v >= 0.0));
            prop_assert!(fc.values().iter().all(|&v| v <= hi.max(100.0)));
        }
    }

    #[test]
    fn arima_forecasts_are_finite(y in series(200)) {
        let fit = Arima::new(2, 0, 1).fit(&y);
        let fc = fit.forecast(50);
        prop_assert!(fc.iter().all(|v| v.is_finite()));
        // stationarity clamp: long-horizon forecasts must stay bounded
        prop_assert!(fc.iter().all(|v| v.abs() < 1e4));
    }

    #[test]
    fn metrics_are_nonnegative_and_zero_on_self(y in series(32)) {
        prop_assert_eq!(metrics::rmse(&y, &y), 0.0);
        prop_assert_eq!(metrics::mae(&y, &y), 0.0);
        let shifted: Vec<f64> = y.iter().map(|v| v + 1.0).collect();
        prop_assert!(metrics::rmse(&y, &shifted) > 0.0);
        prop_assert!(metrics::smape(&y, &shifted) >= 0.0);
        prop_assert!(metrics::smape(&y, &shifted) <= 200.0);
    }

    #[test]
    fn rmse_dominates_mae(y1 in series(32), y2 in series(32)) {
        // RMSE >= MAE always (Cauchy-Schwarz).
        let rmse = metrics::rmse(&y1, &y2);
        let mae = metrics::mae(&y1, &y2);
        prop_assert!(rmse >= mae - 1e-12);
    }
}
