//! Forecast-quality metrics.

/// Root-mean-square error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Examples
///
/// ```
/// let rmse = ntc_forecast::metrics::rmse(&[1.0, 2.0], &[1.0, 4.0]);
/// assert!((rmse - 1.4142).abs() < 1e-3);
/// ```
pub fn rmse(forecast: &[f64], actual: &[f64]) -> f64 {
    check(forecast, actual);
    let mse: f64 = forecast
        .iter()
        .zip(actual)
        .map(|(f, a)| (f - a) * (f - a))
        .sum::<f64>()
        / forecast.len() as f64;
    mse.sqrt()
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mae(forecast: &[f64], actual: &[f64]) -> f64 {
    check(forecast, actual);
    forecast
        .iter()
        .zip(actual)
        .map(|(f, a)| (f - a).abs())
        .sum::<f64>()
        / forecast.len() as f64
}

/// Mean absolute percentage error (%), skipping samples where the actual
/// value is (near) zero.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mape(forecast: &[f64], actual: &[f64]) -> f64 {
    check(forecast, actual);
    let mut sum = 0.0;
    let mut n = 0usize;
    for (f, a) in forecast.iter().zip(actual) {
        if a.abs() > 1e-9 {
            sum += ((f - a) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * sum / n as f64
    }
}

/// Symmetric MAPE (%), bounded in `[0, 200]`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn smape(forecast: &[f64], actual: &[f64]) -> f64 {
    check(forecast, actual);
    let sum: f64 = forecast
        .iter()
        .zip(actual)
        .map(|(f, a)| {
            let denom = (f.abs() + a.abs()) / 2.0;
            if denom < 1e-9 {
                0.0
            } else {
                (f - a).abs() / denom
            }
        })
        .sum();
    100.0 * sum / forecast.len() as f64
}

fn check(forecast: &[f64], actual: &[f64]) {
    assert_eq!(
        forecast.len(),
        actual.len(),
        "forecast and actual must align"
    );
    assert!(!forecast.is_empty(), "metrics need at least one sample");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_forecast_scores_zero() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
        assert_eq!(mape(&y, &y), 0.0);
        assert_eq!(smape(&y, &y), 0.0);
    }

    #[test]
    fn known_values() {
        let f = [2.0, 4.0];
        let a = [1.0, 2.0];
        assert!((mae(&f, &a) - 1.5).abs() < 1e-12);
        assert!((mape(&f, &a) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let f = [1.0, 5.0];
        let a = [0.0, 4.0];
        assert!((mape(&f, &a) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn smape_is_bounded() {
        let f = [100.0, 0.0];
        let a = [0.0, 100.0];
        let s = smape(&f, &a);
        assert!((s - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_rejected() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }
}
