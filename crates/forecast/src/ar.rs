//! Yule–Walker autoregressive fits.

use crate::acf::acf;
use crate::linalg;

/// Fits an AR(`p`) model by solving the Yule–Walker equations on the
/// sample autocorrelations. Returns the `p` AR coefficients
/// (`y[t] ≈ Σ φ_i · y[t−i]` around the mean).
///
/// Falls back to a zero model (all coefficients 0) when the series is
/// constant or the system is singular — predicting the mean is the only
/// defensible choice there.
///
/// # Panics
///
/// Panics if `p == 0` or `p >= y.len()`.
///
/// # Examples
///
/// ```
/// // A noiseless AR(1) with phi = 0.9.
/// let mut y = vec![1.0];
/// for _ in 0..200 { let last = *y.last().unwrap(); y.push(0.9 * last); }
/// let phi = ntc_forecast::ar::yule_walker(&y, 1);
/// assert!((phi[0] - 0.9).abs() < 0.05);
/// ```
pub fn yule_walker(y: &[f64], p: usize) -> Vec<f64> {
    assert!(p > 0, "AR order must be positive");
    assert!(p < y.len(), "AR order must be below series length");
    let rho = acf(y, p);
    // Toeplitz system R phi = r with R[i][j] = rho[|i-j|].
    let a: Vec<Vec<f64>> = (0..p)
        .map(|i| (0..p).map(|j| rho[i.abs_diff(j)]).collect())
        .collect();
    let b: Vec<f64> = (1..=p).map(|k| rho[k]).collect();
    linalg::solve(a, b).unwrap_or_else(|| vec![0.0; p])
}

/// In-sample residuals of an AR model with coefficients `phi` applied to
/// the (mean-removed) series: `e[t] = y[t] − Σ φ_i y[t−i]` for
/// `t ≥ phi.len()`.
pub fn residuals(y: &[f64], phi: &[f64]) -> Vec<f64> {
    let p = phi.len();
    (p..y.len())
        .map(|t| {
            let pred: f64 = phi.iter().enumerate().map(|(i, &c)| c * y[t - 1 - i]).sum();
            y[t] - pred
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar2_series(phi1: f64, phi2: f64, n: usize) -> Vec<f64> {
        let mut y = vec![0.0; n];
        let mut state = 0x9E3779B97F4A7C15u64;
        for t in 2..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let e = (state as f64 / u64::MAX as f64) - 0.5;
            y[t] = phi1 * y[t - 1] + phi2 * y[t - 2] + e;
        }
        y
    }

    #[test]
    fn recovers_ar2_coefficients() {
        let y = ar2_series(0.5, 0.3, 8000);
        let phi = yule_walker(&y, 2);
        assert!((phi[0] - 0.5).abs() < 0.08, "phi1 {phi:?}");
        assert!((phi[1] - 0.3).abs() < 0.08, "phi2 {phi:?}");
    }

    #[test]
    fn constant_series_falls_back_to_zero_model() {
        let y = vec![3.0; 50];
        let phi = yule_walker(&y, 3);
        assert_eq!(phi, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn residuals_of_perfect_fit_vanish() {
        let mut y = vec![1.0];
        for _ in 0..100 {
            let last = *y.last().unwrap();
            y.push(0.8 * last);
        }
        let res = residuals(&y, &[0.8]);
        assert!(res.iter().all(|r| r.abs() < 1e-12));
    }

    #[test]
    fn residual_length() {
        let y = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(residuals(&y, &[0.5, 0.1]).len(), 3);
    }
}
