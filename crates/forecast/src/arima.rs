use ntc_trace::stats;
use serde::{Deserialize, Serialize};

use crate::ar::{residuals, yule_walker};
use crate::diff;
use crate::linalg;

/// An ARIMA(p,d,q) model with optional seasonal differencing at period
/// `s` — the predictor EPACT uses to forecast next-day per-VM
/// utilization from the previous week (§V-B of the paper).
///
/// The fitting pipeline is the classical Hannan–Rissanen two-stage
/// procedure:
///
/// 1. seasonally difference at `s` (if set), then difference `d` times;
/// 2. fit a long AR by Yule–Walker and extract innovation estimates;
/// 3. regress the differenced series on its own `p` lags and the `q`
///    lagged innovations (ridge-regularized least squares);
/// 4. forecast recursively with future innovations set to zero, then
///    integrate the differences back.
///
/// # Examples
///
/// ```
/// use ntc_forecast::Arima;
///
/// // Forecast a daily-periodic utilization signal one period ahead.
/// let period = 24;
/// let history: Vec<f64> = (0..7 * period)
///     .map(|t| 50.0 + 30.0 * ((t % period) as f64 / period as f64 * 6.283).sin())
///     .collect();
/// let model = Arima::new(2, 0, 1).with_seasonal(period);
/// let fit = model.fit(&history);
/// let fc = fit.forecast(period);
/// assert!((fc[0] - history[6 * period]).abs() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arima {
    p: usize,
    d: usize,
    q: usize,
    seasonal_period: Option<usize>,
}

impl Arima {
    /// Creates an ARIMA(p,d,q) specification.
    ///
    /// # Panics
    ///
    /// Panics if `p + q == 0` (nothing to fit) or `d > 2` (higher orders
    /// are never useful on utilization traces and destabilize
    /// integration).
    pub fn new(p: usize, d: usize, q: usize) -> Self {
        assert!(p + q > 0, "ARIMA needs at least one AR or MA term");
        assert!(d <= 2, "differencing order above 2 is not supported");
        Self {
            p,
            d,
            q,
            seasonal_period: None,
        }
    }

    /// The configuration used for the paper's utilization traces:
    /// ARIMA(2,0,1) on daily-seasonally-differenced data.
    pub fn daily_default(samples_per_day: usize) -> Self {
        Self::new(2, 0, 1).with_seasonal(samples_per_day)
    }

    /// Adds seasonal differencing at `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period < 2`.
    pub fn with_seasonal(mut self, period: usize) -> Self {
        assert!(period >= 2, "seasonal period must be at least 2");
        self.seasonal_period = Some(period);
        self
    }

    /// AR order.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Differencing order.
    pub fn d(&self) -> usize {
        self.d
    }

    /// MA order.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Fits the model to `history` (oldest first).
    ///
    /// # Panics
    ///
    /// Panics if the history is too short for the requested differencing
    /// and lag structure (at least `s + d + 3(p+q) + 10` samples).
    pub fn fit(&self, history: &[f64]) -> FittedArima {
        let s = self.seasonal_period.unwrap_or(0);
        let needed = s + self.d + 3 * (self.p + self.q) + 10;
        assert!(
            history.len() >= needed,
            "history of {} too short; ARIMA{:?} needs at least {needed}",
            history.len(),
            (self.p, self.d, self.q)
        );

        // Stage 0: differencing.
        let after_seasonal = match self.seasonal_period {
            Some(sp) => diff::difference(history, sp),
            None => history.to_vec(),
        };
        let mut tails = Vec::with_capacity(self.d);
        let mut z = after_seasonal.clone();
        for _ in 0..self.d {
            tails.push(*z.last().expect("non-empty after differencing"));
            z = diff::difference(&z, 1);
        }
        let mean = stats::mean(&z);
        let zc: Vec<f64> = z.iter().map(|v| v - mean).collect();

        // Stage 1: long-AR innovations.
        let long_order = (self.p + self.q + 5).min(zc.len() / 4).max(1);
        let long_phi = yule_walker(&zc, long_order);
        let innov = residuals(&zc, &long_phi);
        // innov[k] corresponds to zc[k + long_order]

        // Stage 2: regression of zc[t] on p lags of zc and q lags of
        // innovations.
        let start = long_order + self.q.max(self.p);
        let mut xrows = Vec::new();
        let mut yvals = Vec::new();
        for t in start..zc.len() {
            let mut row = Vec::with_capacity(self.p + self.q);
            for i in 1..=self.p {
                row.push(zc[t - i]);
            }
            for j in 1..=self.q {
                row.push(innov[t - j - long_order]);
            }
            xrows.push(row);
            yvals.push(zc[t]);
        }
        let beta = linalg::least_squares(&xrows, &yvals, 1e-6)
            .unwrap_or_else(|| vec![0.0; self.p + self.q]);
        let (phi_raw, theta_raw) = beta.split_at(self.p);

        // Stationarity/invertibility guard: shrink coefficient vectors
        // whose l1 norm reaches 1, which would make the recursive
        // forecast diverge over long horizons (a real hazard on
        // near-flat utilization traces).
        let clamp_l1 = |coeffs: &[f64]| -> Vec<f64> {
            let norm: f64 = coeffs.iter().map(|c| c.abs()).sum();
            if norm >= 0.98 {
                coeffs.iter().map(|c| c * 0.95 / norm).collect()
            } else {
                coeffs.to_vec()
            }
        };
        let phi = clamp_l1(phi_raw);
        let theta = clamp_l1(theta_raw);

        // Keep recent state for forecasting.
        let state_z: Vec<f64> = zc.iter().rev().take(self.p.max(1)).copied().collect();
        let state_e: Vec<f64> = innov.iter().rev().take(self.q.max(1)).copied().collect();
        let seasonal_tail = match self.seasonal_period {
            Some(sp) => history[history.len() - sp..].to_vec(),
            None => Vec::new(),
        };

        FittedArima {
            spec: *self,
            phi,
            theta,
            mean,
            state_z,
            state_e,
            diff_tails: tails,
            seasonal_tail,
        }
    }
}

/// A fitted ARIMA model, ready to forecast.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FittedArima {
    spec: Arima,
    phi: Vec<f64>,
    theta: Vec<f64>,
    mean: f64,
    /// Most recent differenced values, newest first.
    state_z: Vec<f64>,
    /// Most recent innovations, newest first.
    state_e: Vec<f64>,
    /// Tails for undoing the `d` ordinary differences.
    diff_tails: Vec<f64>,
    /// Last `s` original values for undoing seasonal differencing.
    seasonal_tail: Vec<f64>,
}

impl FittedArima {
    /// The fitted AR coefficients.
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// The fitted MA coefficients.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Forecasts `horizon` steps ahead on the original scale.
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        let spec = &self.spec;
        // Recursive ARMA forecast on the (centered) differenced scale.
        let mut zs: Vec<f64> = self.state_z.clone(); // newest first
        let mut es: Vec<f64> = self.state_e.clone();
        let mut out_z = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let mut v = 0.0;
            for (i, &c) in self.phi.iter().enumerate() {
                v += c * zs.get(i).copied().unwrap_or(0.0);
            }
            for (j, &c) in self.theta.iter().enumerate() {
                v += c * es.get(j).copied().unwrap_or(0.0);
            }
            zs.insert(0, v);
            zs.truncate(spec.p.max(1));
            es.insert(0, 0.0); // future innovations are zero in expectation
            es.truncate(spec.q.max(1));
            out_z.push(v + self.mean);
        }

        // Undo ordinary differencing.
        let undone = if spec.d > 0 {
            diff::integrate_n(&self.diff_tails, &out_z, spec.d)
        } else {
            out_z
        };

        // Undo seasonal differencing.
        match spec.seasonal_period {
            Some(sp) => diff::integrate(&self.seasonal_tail, &undone, sp),
            None => undone,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_daily(n_days: usize, period: usize, noise: f64) -> Vec<f64> {
        let mut state = 0xDEADBEEFCAFEBABEu64;
        (0..n_days * period)
            .map(|t| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let e = ((state as f64 / u64::MAX as f64) - 0.5) * noise;
                40.0 + 25.0 * ((t % period) as f64 / period as f64 * std::f64::consts::TAU).sin()
                    + e
            })
            .collect()
    }

    #[test]
    fn forecast_tracks_periodic_signal() {
        let period = 48;
        let hist = noisy_daily(7, period, 4.0);
        let model = Arima::daily_default(period);
        let fc = model.fit(&hist).forecast(period);
        // Compare against the true (noiseless) next day.
        for (h, &f) in fc.iter().enumerate() {
            let truth =
                40.0 + 25.0 * ((h % period) as f64 / period as f64 * std::f64::consts::TAU).sin();
            assert!(
                (f - truth).abs() < 8.0,
                "step {h}: forecast {f:.1} vs truth {truth:.1}"
            );
        }
    }

    #[test]
    fn beats_flat_forecast_on_periodic_data() {
        let period = 48;
        let full = noisy_daily(8, period, 4.0);
        let (hist, actual) = full.split_at(7 * period);
        let fc = Arima::daily_default(period).fit(hist).forecast(period);
        let mean = stats::mean(hist);
        let err_arima: f64 = fc
            .iter()
            .zip(actual)
            .map(|(f, a)| (f - a) * (f - a))
            .sum::<f64>();
        let err_flat: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
        assert!(
            err_arima < 0.3 * err_flat,
            "ARIMA must clearly beat the flat predictor: {err_arima:.1} vs {err_flat:.1}"
        );
    }

    #[test]
    fn plain_arma_on_ar1() {
        // AR(1) with phi=0.8: ARIMA(1,0,1) should recover phi roughly.
        let mut y = vec![0.0];
        let mut state = 7u64;
        for _ in 0..3000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let e = (state as f64 / u64::MAX as f64) - 0.5;
            let last = *y.last().unwrap();
            y.push(0.8 * last + e);
        }
        let fit = Arima::new(1, 0, 1).fit(&y);
        assert!((fit.phi()[0] - 0.8).abs() < 0.15, "phi {:?}", fit.phi());
    }

    #[test]
    fn differencing_handles_trend() {
        // Linear trend + noise: ARIMA(1,1,0) forecast must continue the
        // trend rather than regress to the mean.
        let mut state = 99u64;
        let y: Vec<f64> = (0..500)
            .map(|t| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let e = ((state as f64 / u64::MAX as f64) - 0.5) * 2.0;
                0.5 * t as f64 + e
            })
            .collect();
        let fc = Arima::new(1, 1, 0).fit(&y).forecast(20);
        let expected_end = 0.5 * 519.0;
        assert!(
            (fc[19] - expected_end).abs() < 15.0,
            "trend forecast {:.1} vs {expected_end:.1}",
            fc[19]
        );
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_history_rejected() {
        let _ = Arima::daily_default(288).fit(&[1.0; 100]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_spec_rejected() {
        let _ = Arima::new(0, 1, 0);
    }
}
