use ntc_trace::TimeSeries;
use serde::{Deserialize, Serialize};

use crate::Arima;

/// A forecaster of utilization traces.
///
/// EPACT is generic over the predictor so the forecasting ablation can
/// swap ARIMA for the seasonal-naive baseline (or a perfect oracle in
/// tests).
pub trait Predictor: std::fmt::Debug {
    /// Forecasts `horizon` samples following `history`, clamped to
    /// non-negative utilization.
    fn forecast(&self, history: &TimeSeries, horizon: usize) -> TimeSeries;
}

/// The same-time-yesterday baseline: repeats the last full period.
///
/// # Examples
///
/// ```
/// use ntc_forecast::{Predictor, SeasonalNaive};
/// use ntc_trace::TimeSeries;
///
/// let history: TimeSeries = (0..20).map(|t| (t % 10) as f64).collect();
/// let fc = SeasonalNaive::new(10).forecast(&history, 5);
/// assert_eq!(fc.values(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeasonalNaive {
    period: usize,
}

impl SeasonalNaive {
    /// Creates a seasonal-naive predictor with the given period.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: usize) -> Self {
        assert!(period > 0, "period must be positive");
        Self { period }
    }

    /// The period.
    pub fn period(&self) -> usize {
        self.period
    }
}

impl Predictor for SeasonalNaive {
    fn forecast(&self, history: &TimeSeries, horizon: usize) -> TimeSeries {
        assert!(
            history.len() >= self.period,
            "history shorter than one period"
        );
        let vals = history.values();
        let start = vals.len() - self.period;
        (0..horizon)
            .map(|h| vals[start + (h % self.period)].max(0.0))
            .collect()
    }
}

/// ARIMA wrapped as a [`Predictor`] (the paper's choice, §V-B), with a
/// seasonal-naive fallback for histories too short to fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArimaPredictor {
    spec: Arima,
    period: usize,
}

impl ArimaPredictor {
    /// The paper's configuration: daily-seasonal ARIMA on 5-minute
    /// samples (`period = 288`).
    pub fn daily(samples_per_day: usize) -> Self {
        Self {
            spec: Arima::daily_default(samples_per_day),
            period: samples_per_day,
        }
    }
}

impl Predictor for ArimaPredictor {
    fn forecast(&self, history: &TimeSeries, horizon: usize) -> TimeSeries {
        let needed = self.period + 3 * 4 + 10 + 2;
        if history.len() < needed + self.period {
            return SeasonalNaive::new(self.period.min(history.len().max(1)))
                .forecast(history, horizon);
        }
        // Bound the forecast to the physically plausible band around the
        // observed history: utilizations cannot go negative, and a
        // forecast far above the historical peak is a fit artifact, not
        // a prediction.
        let hi = 1.5 * history.values().iter().copied().fold(0.0, f64::max);
        let fc = self.spec.fit(history.values()).forecast(horizon);
        fc.into_iter().map(|v| v.clamp(0.0, hi.max(1e-9))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seasonal_naive_repeats_last_period() {
        let history: TimeSeries = (0..30).map(|t| (t % 6) as f64 * 2.0).collect();
        let fc = SeasonalNaive::new(6).forecast(&history, 12);
        assert_eq!(fc.at(0), 0.0);
        assert_eq!(fc.at(1), 2.0);
        assert_eq!(fc.at(7), 2.0, "wraps around the period");
    }

    #[test]
    fn arima_predictor_clamps_negative() {
        let period = 24;
        let history: TimeSeries = (0..7 * period)
            .map(|t| (0.2 + 0.2 * ((t % period) as f64 / 4.0).sin()).max(0.0))
            .collect();
        let fc = ArimaPredictor::daily(period).forecast(&history, period);
        assert!(fc.values().iter().all(|&v| v >= 0.0));
        assert_eq!(fc.len(), period);
    }

    #[test]
    fn arima_predictor_falls_back_on_short_history() {
        let history: TimeSeries = (0..40).map(|t| (t % 20) as f64).collect();
        // period 20: too short for ARIMA (needs a week), falls back
        let fc = ArimaPredictor::daily(20).forecast(&history, 10);
        assert_eq!(fc.len(), 10);
        assert_eq!(fc.at(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "shorter than one period")]
    fn naive_rejects_tiny_history() {
        let history: TimeSeries = (0..3).map(|t| t as f64).collect();
        let _ = SeasonalNaive::new(10).forecast(&history, 5);
    }
}
