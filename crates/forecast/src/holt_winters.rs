//! Additive Holt–Winters (triple exponential smoothing) — a second
//! seasonal forecaster for the prediction ablation.
//!
//! Holt–Winters tracks level, trend and a seasonal profile with three
//! smoothing constants; on utilization traces it reacts faster to level
//! shifts than ARIMA while exploiting the same daily periodicity.

use ntc_trace::TimeSeries;
use serde::{Deserialize, Serialize};

use crate::Predictor;

/// Additive Holt–Winters forecaster.
///
/// # Examples
///
/// ```
/// use ntc_forecast::{HoltWinters, Predictor};
/// use ntc_trace::TimeSeries;
///
/// let period = 24;
/// let history: TimeSeries = (0..period * 6)
///     .map(|t| 40.0 + 10.0 * ((t % period) as f64 / period as f64 * 6.283).sin())
///     .collect();
/// let fc = HoltWinters::daily(period).forecast(&history, period);
/// assert_eq!(fc.len(), period);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoltWinters {
    period: usize,
    /// Level smoothing constant α.
    alpha: f64,
    /// Trend smoothing constant β.
    beta: f64,
    /// Seasonal smoothing constant γ.
    gamma: f64,
}

impl HoltWinters {
    /// Creates a forecaster with explicit smoothing constants.
    ///
    /// # Panics
    ///
    /// Panics if `period < 2` or any constant lies outside `(0, 1)`.
    pub fn new(period: usize, alpha: f64, beta: f64, gamma: f64) -> Self {
        assert!(period >= 2, "seasonal period must be at least 2");
        for (name, v) in [("alpha", alpha), ("beta", beta), ("gamma", gamma)] {
            assert!(
                (0.0..1.0).contains(&v) && v > 0.0,
                "{name} must lie in (0, 1), got {v}"
            );
        }
        Self {
            period,
            alpha,
            beta,
            gamma,
        }
    }

    /// Defaults tuned for daily-periodic utilization traces: responsive
    /// level, conservative trend, slow seasonal adaptation.
    pub fn daily(period: usize) -> Self {
        Self::new(period, 0.3, 0.05, 0.2)
    }

    /// The seasonal period.
    pub fn period(&self) -> usize {
        self.period
    }

    /// Fits the state on `history` and forecasts `horizon` steps.
    ///
    /// # Panics
    ///
    /// Panics if the history is shorter than two periods.
    pub fn fit_forecast(&self, history: &[f64], horizon: usize) -> Vec<f64> {
        let s = self.period;
        assert!(
            history.len() >= 2 * s,
            "Holt-Winters needs at least two seasonal periods ({} < {})",
            history.len(),
            2 * s
        );

        // Initialization: level = mean of first period, trend = average
        // period-over-period change, season = first-period deviations.
        let first: f64 = history[..s].iter().sum::<f64>() / s as f64;
        let second: f64 = history[s..2 * s].iter().sum::<f64>() / s as f64;
        let mut level = first;
        let mut trend = (second - first) / s as f64;
        let mut season: Vec<f64> = history[..s].iter().map(|&y| y - first).collect();

        for (t, &y) in history.iter().enumerate().skip(s) {
            let si = t % s;
            let prev_level = level;
            level = self.alpha * (y - season[si]) + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
            season[si] = self.gamma * (y - level) + (1.0 - self.gamma) * season[si];
        }

        let n = history.len();
        (1..=horizon)
            .map(|h| {
                let si = (n + h - 1) % s;
                level + h as f64 * trend + season[si]
            })
            .collect()
    }
}

impl Predictor for HoltWinters {
    fn forecast(&self, history: &TimeSeries, horizon: usize) -> TimeSeries {
        if history.len() < 2 * self.period {
            return crate::SeasonalNaive::new(self.period.min(history.len().max(1)))
                .forecast(history, horizon);
        }
        let hi = 1.5 * history.peak();
        self.fit_forecast(history.values(), horizon)
            .into_iter()
            .map(|v| v.clamp(0.0, hi.max(1e-9)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;

    fn daily_signal(days: usize, period: usize, trend: f64) -> Vec<f64> {
        (0..days * period)
            .map(|t| {
                40.0 + trend * t as f64
                    + 15.0 * ((t % period) as f64 / period as f64 * std::f64::consts::TAU).sin()
            })
            .collect()
    }

    #[test]
    fn tracks_seasonal_signal() {
        let period = 48;
        let full = daily_signal(8, period, 0.0);
        let (hist, actual) = full.split_at(7 * period);
        let fc = HoltWinters::daily(period).fit_forecast(hist, period);
        let err = rmse(&fc, actual);
        assert!(err < 2.0, "seasonal RMSE {err:.3}");
    }

    #[test]
    fn tracks_trend() {
        let period = 24;
        let full = daily_signal(9, period, 0.05);
        let (hist, actual) = full.split_at(8 * period);
        let fc = HoltWinters::daily(period).fit_forecast(hist, period);
        // mean forecast level must follow the rising trend
        let mean_fc: f64 = fc.iter().sum::<f64>() / fc.len() as f64;
        let mean_actual: f64 = actual.iter().sum::<f64>() / actual.len() as f64;
        assert!(
            (mean_fc - mean_actual).abs() < 3.0,
            "trend tracking off: {mean_fc:.1} vs {mean_actual:.1}"
        );
    }

    #[test]
    fn predictor_clamps_to_plausible_band() {
        let period = 24;
        let history: TimeSeries = daily_signal(6, period, 0.0).into_iter().collect();
        let fc = HoltWinters::daily(period).forecast(&history, period);
        let hi = 1.5 * history.peak();
        assert!(fc.values().iter().all(|&v| (0.0..=hi).contains(&v)));
    }

    #[test]
    fn short_history_falls_back() {
        let history: TimeSeries = (0..30).map(|t| (t % 10) as f64).collect();
        let fc = HoltWinters::daily(24).forecast(&history, 12);
        assert_eq!(fc.len(), 12);
    }

    #[test]
    #[should_panic(expected = "two seasonal periods")]
    fn tiny_history_rejected_in_fit() {
        let _ = HoltWinters::daily(24).fit_forecast(&[1.0; 30], 5);
    }

    #[test]
    #[should_panic(expected = "alpha must lie in")]
    fn bad_constants_rejected() {
        let _ = HoltWinters::new(24, 1.5, 0.1, 0.1);
    }
}
