//! Minimal dense linear algebra for the ARIMA fits.
//!
//! The systems solved here are tiny (order ≤ a few dozen), so a plain
//! Gaussian elimination with partial pivoting and a ridge-regularized
//! normal-equation least squares are entirely adequate — a LAPACK
//! binding would be unjustified (see DESIGN.md §6).

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
///
/// Returns `None` if the matrix is numerically singular.
///
/// # Panics
///
/// Panics if `a` is not square or `b`'s length does not match.
///
/// # Examples
///
/// ```
/// let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
/// let x = ntc_forecast::linalg::solve(a, vec![3.0, 5.0]).unwrap();
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// ```
#[allow(clippy::needless_range_loop)] // indexed loops mirror the matrix algebra
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = a.len();
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");
    assert_eq!(b.len(), n, "rhs length must match");

    for col in 0..n {
        // partial pivot
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite matrix entries")
            })
            .expect("non-empty column");
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);

        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }

    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in row + 1..n {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

/// Ridge-regularized least squares: minimizes
/// `‖X β − y‖² + λ‖β‖²` via the normal equations.
///
/// Returns `None` only if the regularized system is still singular
/// (which cannot happen for `λ > 0` unless inputs are non-finite).
///
/// # Panics
///
/// Panics if rows of `x` have inconsistent lengths or `y` does not
/// match, or if `lambda` is negative.
#[allow(clippy::needless_range_loop)] // indexed loops mirror the matrix algebra
pub fn least_squares(x: &[Vec<f64>], y: &[f64], lambda: f64) -> Option<Vec<f64>> {
    assert!(lambda >= 0.0, "ridge parameter must be non-negative");
    assert_eq!(x.len(), y.len(), "row count must match rhs");
    if x.is_empty() {
        return Some(Vec::new());
    }
    let p = x[0].len();
    assert!(
        x.iter().all(|row| row.len() == p),
        "design-matrix rows must have equal length"
    );
    if p == 0 {
        return Some(Vec::new());
    }

    // Normal equations: (XᵀX + λI) β = Xᵀy.
    let mut xtx = vec![vec![0.0; p]; p];
    let mut xty = vec![0.0; p];
    for (row, &yi) in x.iter().zip(y) {
        for i in 0..p {
            xty[i] += row[i] * yi;
            for j in i..p {
                xtx[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..p {
        for j in 0..i {
            xtx[i][j] = xtx[j][i];
        }
        xtx[i][i] += lambda;
    }
    solve(xtx, xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // leading zero forces a row swap
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(a, vec![2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn least_squares_recovers_line() {
        // y = 3x + 1 with exact data
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 1.0]).collect();
        let y: Vec<f64> = (0..10).map(|i| 3.0 * i as f64 + 1.0).collect();
        let beta = least_squares(&x, &y, 0.0).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-9);
        assert!((beta[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        let free = least_squares(&x, &y, 0.0).unwrap()[0];
        let ridged = least_squares(&x, &y, 100.0).unwrap()[0];
        assert!(ridged < free);
        assert!(ridged > 0.0);
    }

    #[test]
    fn empty_design_is_ok() {
        assert_eq!(least_squares(&[], &[], 1.0), Some(vec![]));
    }
}
