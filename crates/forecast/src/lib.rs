//! Time-series forecasting for per-VM utilization traces.
//!
//! EPACT (§V-B of the paper) predicts, at the start of every allocation
//! slot, the next day of per-VM CPU and memory utilization using the
//! autoregressive integrated moving average (ARIMA) model fitted on the
//! previous week. This crate implements the full chain from scratch:
//!
//! * [`diff`] — ordinary and seasonal differencing/integration;
//! * [`acf`] — autocorrelation and partial autocorrelation
//!   (Durbin–Levinson);
//! * [`ar`] — Yule–Walker autoregressive fits;
//! * [`Arima`] — ARIMA(p,d,q)(s) via the Hannan–Rissanen two-stage
//!   regression, with multi-step forecasting;
//! * [`SeasonalNaive`] — the same-time-yesterday baseline used in the
//!   forecasting ablation;
//! * [`metrics`] — RMSE/MAE/MAPE/sMAPE forecast-quality metrics.
//!
//! # Examples
//!
//! ```
//! use ntc_forecast::{Predictor, SeasonalNaive};
//! use ntc_trace::TimeSeries;
//!
//! // A perfectly periodic signal is predicted exactly by seasonal naive.
//! let period = 12;
//! let history: TimeSeries = (0..5 * period)
//!     .map(|t| (t % period) as f64)
//!     .collect();
//! let fc = SeasonalNaive::new(period).forecast(&history, period);
//! assert_eq!(fc.at(3), 3.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod acf;
pub mod ar;
mod arima;
pub mod diff;
mod holt_winters;
pub mod linalg;
pub mod metrics;
mod predictor;
pub mod selection;

pub use arima::{Arima, FittedArima};
pub use holt_winters::HoltWinters;
pub use predictor::{ArimaPredictor, Predictor, SeasonalNaive};
