//! ARIMA order selection by information criterion — the "auto-ARIMA"
//! used when the (p,q) orders are not known a priori.

use crate::Arima;

/// A scored candidate from an order search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// AR order.
    pub p: usize,
    /// Differencing order.
    pub d: usize,
    /// MA order.
    pub q: usize,
    /// Akaike information criterion (lower is better).
    pub aic: f64,
}

/// The AIC of a fitted model on its training data:
/// `n·ln(σ²) + 2k` with `σ²` the one-step in-sample residual variance
/// and `k = p + q + 1` parameters.
///
/// # Panics
///
/// Panics if the history is too short for the spec.
pub fn aic(spec: Arima, history: &[f64], seasonal: Option<usize>) -> f64 {
    let spec = match seasonal {
        Some(s) => spec.with_seasonal(s),
        None => spec,
    };
    let fit = spec.fit(history);
    // One-step in-sample forecasts via rolling refits are expensive;
    // approximate the residual variance with the h=1 forecast error on
    // a set of held-out cut points.
    let n = history.len();
    let cuts = 8usize;
    let min_len = n * 3 / 4;
    let mut sq_err = 0.0;
    let mut count = 0usize;
    for c in 0..cuts {
        let cut = min_len + c * (n - min_len - 1) / cuts.max(1);
        if cut + 1 > n - 1 {
            break;
        }
        let sub = spec.fit(&history[..cut]);
        let fc = sub.forecast(1);
        let e = fc[0] - history[cut];
        sq_err += e * e;
        count += 1;
    }
    let _ = fit;
    let sigma2 = (sq_err / count.max(1) as f64).max(1e-12);
    let k = (spec.p() + spec.q() + 1) as f64;
    n as f64 * sigma2.ln() + 2.0 * k
}

/// Searches `p ∈ [0, max_p]`, `q ∈ [0, max_q]` (skipping the empty
/// model) at fixed `d`, returning candidates sorted by ascending AIC.
///
/// # Panics
///
/// Panics if the history is too short for the largest candidate.
pub fn auto_arima(
    history: &[f64],
    max_p: usize,
    max_q: usize,
    d: usize,
    seasonal: Option<usize>,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    for p in 0..=max_p {
        for q in 0..=max_q {
            if p + q == 0 {
                continue;
            }
            let spec = Arima::new(p, d, q);
            let score = aic(spec, history, seasonal);
            out.push(Candidate {
                p,
                d,
                q,
                aic: score,
            });
        }
    }
    out.sort_by(|a, b| a.aic.partial_cmp(&b.aic).expect("finite AIC"));
    out
}

/// The best specification from [`auto_arima`].
///
/// # Panics
///
/// Panics if the search space is empty.
pub fn best_order(
    history: &[f64],
    max_p: usize,
    max_q: usize,
    d: usize,
    seasonal: Option<usize>,
) -> Arima {
    let cands = auto_arima(history, max_p, max_q, d, seasonal);
    let best = cands.first().expect("non-empty search space");
    let spec = Arima::new(best.p.max(1).min(best.p + best.q), best.d, best.q);
    match seasonal {
        Some(s) => spec.with_seasonal(s),
        None => spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar2_series(n: usize) -> Vec<f64> {
        let mut y = vec![0.0, 0.0];
        let mut state = 0xABCDEFu64;
        for t in 2..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let e = (state as f64 / u64::MAX as f64) - 0.5;
            y.push(0.6 * y[t - 1] + 0.25 * y[t - 2] + e);
        }
        y
    }

    #[test]
    fn search_returns_sorted_candidates() {
        let y = ar2_series(600);
        let cands = auto_arima(&y, 3, 2, 0, None);
        assert_eq!(cands.len(), 3 * 3 + 2); // 4x3 minus the (0,0) model
        for w in cands.windows(2) {
            assert!(w[0].aic <= w[1].aic);
        }
    }

    #[test]
    fn captures_order_two_structure() {
        // AR(2) data: the winner must carry at least two lag terms in
        // some combination (an MA(2) approximates an AR(2) at horizon 1,
        // so either family may win the noisy holdout).
        let y = ar2_series(800);
        let cands = auto_arima(&y, 3, 2, 0, None);
        let best = cands[0];
        assert!(
            best.p + best.q >= 2,
            "AR(2) data should select a second-order model, got {best:?}"
        );
    }

    #[test]
    fn best_order_is_fittable() {
        let y = ar2_series(400);
        let spec = best_order(&y, 2, 1, 0, None);
        let fc = spec.fit(&y).forecast(5);
        assert_eq!(fc.len(), 5);
        assert!(fc.iter().all(|v| v.is_finite()));
    }
}
