//! Autocorrelation (ACF) and partial autocorrelation (PACF) functions.

use ntc_trace::stats;

/// Sample autocorrelation at lags `0..=max_lag`.
///
/// Returns 1.0 at lag 0 by definition; a constant series yields zeros at
/// all positive lags.
///
/// # Panics
///
/// Panics if `max_lag >= y.len()`.
///
/// # Examples
///
/// ```
/// let y: Vec<f64> = (0..32).map(|t| if t % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// let r = ntc_forecast::acf::acf(&y, 2);
/// assert!((r[1] + 1.0).abs() < 0.1); // alternating series: lag-1 ~ -1
/// assert!((r[2] - 1.0).abs() < 0.1);
/// ```
pub fn acf(y: &[f64], max_lag: usize) -> Vec<f64> {
    assert!(
        max_lag < y.len(),
        "max lag {max_lag} must be below series length {}",
        y.len()
    );
    let n = y.len() as f64;
    let m = stats::mean(y);
    let c0: f64 = y.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / n;
    (0..=max_lag)
        .map(|k| {
            if c0 < 1e-12 {
                if k == 0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                let ck: f64 = (k..y.len())
                    .map(|t| (y[t] - m) * (y[t - k] - m))
                    .sum::<f64>()
                    / n;
                ck / c0
            }
        })
        .collect()
}

/// Sample partial autocorrelation at lags `1..=max_lag` via the
/// Durbin–Levinson recursion (index 0 of the result is lag 1).
///
/// # Panics
///
/// Panics if `max_lag == 0` or `max_lag >= y.len()`.
pub fn pacf(y: &[f64], max_lag: usize) -> Vec<f64> {
    assert!(max_lag > 0, "PACF needs at least lag 1");
    let rho = acf(y, max_lag);
    // Durbin-Levinson: phi[k][j] coefficients of the order-k AR fit.
    let mut phi_prev: Vec<f64> = Vec::new();
    let mut out = Vec::with_capacity(max_lag);
    for k in 1..=max_lag {
        let num = rho[k]
            - phi_prev
                .iter()
                .enumerate()
                .map(|(j, &p)| p * rho[k - 1 - j])
                .sum::<f64>();
        let den = 1.0
            - phi_prev
                .iter()
                .enumerate()
                .map(|(j, &p)| p * rho[j + 1])
                .sum::<f64>();
        let phi_kk = if den.abs() < 1e-12 { 0.0 } else { num / den };
        let mut phi_new = vec![0.0; k];
        phi_new[k - 1] = phi_kk;
        for j in 0..k - 1 {
            phi_new[j] = phi_prev[j] - phi_kk * phi_prev[k - 2 - j];
        }
        out.push(phi_kk);
        phi_prev = phi_new;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar1_series(phi: f64, n: usize) -> Vec<f64> {
        // deterministic pseudo-noise so the test is reproducible
        let mut y = vec![0.0; n];
        let mut state = 0x2545F4914F6CDD1Du64;
        for t in 1..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let e = (state as f64 / u64::MAX as f64) - 0.5;
            y[t] = phi * y[t - 1] + e;
        }
        y
    }

    #[test]
    fn acf_lag0_is_one() {
        let y = ar1_series(0.5, 500);
        let r = acf(&y, 5);
        assert!((r[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acf_of_ar1_decays_geometrically() {
        let y = ar1_series(0.8, 5000);
        let r = acf(&y, 3);
        assert!((r[1] - 0.8).abs() < 0.07, "lag-1 acf {r:?}");
        assert!((r[2] - 0.64).abs() < 0.1);
    }

    #[test]
    fn pacf_of_ar1_cuts_off_after_lag1() {
        let y = ar1_series(0.7, 5000);
        let p = pacf(&y, 4);
        assert!((p[0] - 0.7).abs() < 0.07, "lag-1 pacf {p:?}");
        for &later in &p[1..] {
            assert!(later.abs() < 0.12, "higher-lag PACF must vanish: {p:?}");
        }
    }

    #[test]
    fn constant_series_has_zero_acf() {
        let y = vec![5.0; 100];
        let r = acf(&y, 3);
        assert_eq!(r[0], 1.0);
        assert_eq!(r[1], 0.0);
    }
}
