//! Ordinary and seasonal differencing, and their inverses.
//!
//! ARIMA's "I" stage: differencing removes trend (`d`-fold ordinary) and
//! periodicity (lag-`s` seasonal); integration restores the original
//! scale after forecasting on the differenced series.

/// First difference at lag `lag`: `z[t] = y[t] − y[t−lag]`.
///
/// The output is `lag` elements shorter than the input.
///
/// # Panics
///
/// Panics if `lag == 0` or `lag >= y.len()`.
///
/// # Examples
///
/// ```
/// let z = ntc_forecast::diff::difference(&[1.0, 3.0, 6.0, 10.0], 1);
/// assert_eq!(z, vec![2.0, 3.0, 4.0]);
/// ```
pub fn difference(y: &[f64], lag: usize) -> Vec<f64> {
    assert!(lag > 0, "difference lag must be positive");
    assert!(
        lag < y.len(),
        "difference lag {lag} must be shorter than the series ({})",
        y.len()
    );
    (lag..y.len()).map(|t| y[t] - y[t - lag]).collect()
}

/// Applies `difference` `d` times at lag 1.
///
/// # Panics
///
/// Panics if the series becomes too short.
pub fn difference_n(y: &[f64], d: usize) -> Vec<f64> {
    let mut z = y.to_vec();
    for _ in 0..d {
        z = difference(&z, 1);
    }
    z
}

/// Inverts a lag-`lag` difference: given the last `lag` values of the
/// original series (`tail`, oldest first) and the differenced forecast
/// `z`, reconstructs the original-scale forecast.
///
/// # Panics
///
/// Panics if `tail.len() != lag` or `lag == 0`.
///
/// # Examples
///
/// ```
/// use ntc_forecast::diff::{difference, integrate};
///
/// let y = [1.0, 3.0, 6.0, 10.0];
/// let z = difference(&y, 1);
/// // Re-integrate z[1..] from y[1]: recovers y[2..].
/// let rec = integrate(&[y[1]], &z[1..], 1);
/// assert_eq!(rec, vec![6.0, 10.0]);
/// ```
pub fn integrate(tail: &[f64], z: &[f64], lag: usize) -> Vec<f64> {
    assert!(lag > 0, "integration lag must be positive");
    assert_eq!(
        tail.len(),
        lag,
        "integration needs exactly `lag` tail values"
    );
    let mut out: Vec<f64> = Vec::with_capacity(z.len());
    for (h, &dz) in z.iter().enumerate() {
        let prev = if h < lag { tail[h] } else { out[h - lag] };
        out.push(prev + dz);
    }
    out
}

/// Inverts `d`-fold lag-1 differencing. `tails[k]` holds the last value
/// of the series after `k` differencing passes (so `tails.len() == d`).
pub fn integrate_n(tails: &[f64], z: &[f64], d: usize) -> Vec<f64> {
    assert_eq!(tails.len(), d, "need one tail value per differencing pass");
    let mut out = z.to_vec();
    for k in (0..d).rev() {
        out = integrate(&[tails[k]], &out, 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seasonal_difference_removes_periodicity() {
        let period = 4;
        let y: Vec<f64> = (0..20).map(|t| (t % period) as f64 * 10.0).collect();
        let z = difference(&y, period);
        assert!(z.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn double_difference_kills_quadratic() {
        let y: Vec<f64> = (0..10).map(|t| (t * t) as f64).collect();
        let z = difference_n(&y, 2);
        assert!(z.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn integrate_round_trips() {
        let y = [2.0, 5.0, 4.0, 8.0, 7.0, 9.0];
        let lag = 2;
        let z = difference(&y, lag);
        let rec = integrate(&y[..lag], &z, lag);
        assert_eq!(rec, y[lag..].to_vec());
    }

    #[test]
    fn integrate_n_round_trips() {
        let y = [1.0, 4.0, 9.0, 16.0, 25.0, 36.0];
        let d1 = difference_n(&y, 1);
        let d2 = difference_n(&y, 2);
        assert_eq!(d2, vec![2.0; 4], "squares double-difference to 2");
        let tails = vec![*y.last().unwrap(), *d1.last().unwrap()];
        // forecast the next 3 double-differenced values (constant 2)
        let fc2 = vec![2.0, 2.0, 2.0];
        let rec = integrate_n(&tails, &fc2, 2);
        // y continues 49, 64, 81
        assert_eq!(rec, vec![49.0, 64.0, 81.0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_lag_rejected() {
        let _ = difference(&[1.0, 2.0], 0);
    }
}
