//! The correlation hot-loop bench: an EPACT week with the day-level
//! moment cache (default) against the legacy per-slot Pearson rebuild
//! (`day_moment_cache(false)`), on the default 60-VM fleet.
//!
//! EPACT re-plans all 24 slots of every day, and each plan touches
//! O(n²) pairwise covariances; the day cache builds one set of prefix
//! sums per day and answers every slot window in O(1), instead of
//! re-centering all series and re-accumulating pair products per slot.
//! The explicit min-of-5 comparison printed before the criterion runs
//! is the PR's acceptance measurement: cached must be strictly faster.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_core::Epact;
use ntc_datacenter::WeekSim;
use ntc_power::ServerPowerModel;
use ntc_workload::{ClusterTraceGenerator, Fleet};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn fleet() -> Fleet {
    let vms = if criterion::test_mode() { 16 } else { 60 };
    ClusterTraceGenerator::google_like(vms, 2018).generate()
}

/// Min-of-7 for both sims, with the samples interleaved so frequency
/// scaling and thermal drift hit the two contenders alike.
fn interleaved_mins(a: &WeekSim<'_>, b: &WeekSim<'_>, policy: &Epact) -> (Duration, Duration) {
    let sample = |sim: &WeekSim<'_>| {
        let t = Instant::now();
        black_box(sim.run_with_oracle(policy));
        t.elapsed()
    };
    let (_, _) = (sample(a), sample(b)); // warm-up
    let mut ta = Duration::MAX;
    let mut tb = Duration::MAX;
    for _ in 0..7 {
        ta = ta.min(sample(a));
        tb = tb.min(sample(b));
    }
    (ta, tb)
}

fn bench(c: &mut Criterion) {
    let fleet = fleet();
    let cached = WeekSim::new(&fleet, ServerPowerModel::ntc(), 600);
    let rebuild = WeekSim::builder(&fleet, ServerPowerModel::ntc(), 600)
        .day_moment_cache(false)
        .build_or_panic();
    let policy = Epact::new();

    if criterion::test_mode() {
        // Smoke mode doubles as an equivalence check: identical
        // violation accounting and energy within exact-score-tie noise.
        let a = cached.run_with_oracle(&policy);
        let b = rebuild.run_with_oracle(&policy);
        assert_eq!(a.total_violations(), b.total_violations());
        let (ea, eb) = (a.total_energy().as_joules(), b.total_energy().as_joules());
        assert!(
            (ea - eb).abs() <= 1e-3 * eb,
            "day cache moved energy beyond tie noise: {ea} vs {eb}"
        );
    } else {
        let (t_cached, t_rebuild) = interleaved_mins(&cached, &rebuild, &policy);
        println!(
            "corr: EPACT week x{} VMs, day-cached {:.1}ms vs slot-rebuild {:.1}ms -> {:.2}x",
            fleet.len(),
            t_cached.as_secs_f64() * 1e3,
            t_rebuild.as_secs_f64() * 1e3,
            t_rebuild.as_secs_f64() / t_cached.as_secs_f64()
        );
        assert!(
            t_cached < t_rebuild,
            "day-cached week must be strictly faster: {t_cached:?} vs {t_rebuild:?}"
        );
    }

    c.bench_function("corr/epact_week_day_cached", |b| {
        b.iter(|| black_box(cached.run_with_oracle(&policy)))
    });
    c.bench_function("corr/epact_week_slot_rebuild", |b| {
        b.iter(|| black_box(rebuild.run_with_oracle(&policy)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
