//! Ablation benches for the design choices DESIGN.md §7 calls out:
//!
//! 1. correlation-aware matching (Alg. 1's φ term) vs plain first-fit;
//! 2. ARIMA vs seasonal-naive prediction (violations and energy);
//! 3. the energy-proportionality gap between the NTC and conventional
//!    server that makes all of this matter.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_bench::bench_fleet;
use ntc_core::{AllocationPolicy, Epact, OneDimAllocator, SlotContext, SlotPlan};
use ntc_datacenter::WeekSim;
use ntc_forecast::{ArimaPredictor, SeasonalNaive};
use ntc_power::proportionality::ep_index;
use ntc_power::ServerPowerModel;
use ntc_trace::TimeSeries;
use std::hint::black_box;

/// EPACT with Algorithm 1's correlation matching replaced by plain
/// first-fit (the ablation's control arm).
#[derive(Debug)]
struct PlainFirstFit;

impl AllocationPolicy for PlainFirstFit {
    fn name(&self) -> &str {
        "EPACT-noCorr"
    }

    fn allocate(&self, ctx: &SlotContext<'_>) -> SlotPlan {
        let server = ctx.server();
        let fmax = server.fmax();
        let dc = ntc_power::DataCenterPowerModel::new(server.clone(), ctx.max_servers());
        let fopt = dc.ntc_optimal_frequency();
        let cap = fopt.ratio(fmax) * 100.0;
        let cpu = ctx.predicted_cpu();
        let slot_len = ctx.slot_len();
        let mut srv: Vec<TimeSeries> = Vec::new();
        let mut assignment = vec![0usize; cpu.len()];
        for (vm, series) in cpu.iter().enumerate() {
            let slot = srv
                .iter()
                .position(|s| !s.add(series).exceeds(cap, 1e-9))
                .unwrap_or_else(|| {
                    srv.push(TimeSeries::zeros(slot_len));
                    srv.len() - 1
                });
            srv[slot] = srv[slot].add(series);
            assignment[vm] = slot;
        }
        let n = srv.len();
        SlotPlan::new(assignment, n, cap, 100.0, fopt, server.fmin(), fmax)
    }
}

fn print_correlation_ablation() {
    let fleet = bench_fleet();
    let sim = WeekSim::new(&fleet, ServerPowerModel::ntc(), 600);
    let predictor = ArimaPredictor::daily(fleet.grid().samples_per_day());
    let with_corr = sim.run(&Epact::new(), &predictor);
    let without = sim.run(&PlainFirstFit, &predictor);
    println!("\n=== Ablation: Alg. 1 correlation matching ===");
    println!(
        "{:<14} {:>12} {:>16} {:>14}",
        "variant", "violations", "energy (MJ)", "mean servers"
    );
    for o in [&with_corr, &without] {
        println!(
            "{:<14} {:>12} {:>16.1} {:>14.1}",
            o.policy,
            o.total_violations(),
            o.total_energy().as_megajoules(),
            o.mean_active_servers()
        );
    }
}

fn print_forecast_ablation() {
    let fleet = bench_fleet();
    let sim = WeekSim::new(&fleet, ServerPowerModel::ntc(), 600);
    let per_day = fleet.grid().samples_per_day();
    let arima = sim.run(&Epact::new(), &ArimaPredictor::daily(per_day));
    let naive = sim.run(&Epact::new(), &SeasonalNaive::new(per_day));
    let oracle = sim.run_with_oracle(&Epact::new());
    println!("\n=== Ablation: predictor choice under EPACT ===");
    println!(
        "{:<16} {:>12} {:>16}",
        "predictor", "violations", "energy (MJ)"
    );
    for (name, o) in [
        ("ARIMA", &arima),
        ("seasonal-naive", &naive),
        ("oracle", &oracle),
    ] {
        println!(
            "{:<16} {:>12} {:>16.1}",
            name,
            o.total_violations(),
            o.total_energy().as_megajoules()
        );
    }
}

fn print_merit_ablation() {
    // Memory-dominated synthetic slot: Alg. 2 with the full Eq. 2 merit
    // vs the correlation-only variant. The distance term packs tighter,
    // so it should need no more servers.
    use ntc_core::TwoDimAllocator;
    let slot = 12;
    let n = 48;
    let cpu: Vec<TimeSeries> = (0..n)
        .map(|i| {
            TimeSeries::from_values(
                (0..slot)
                    .map(|t| 2.0 + ((i + t) % 5) as f64 * 0.8)
                    .collect(),
            )
        })
        .collect();
    let mem: Vec<TimeSeries> = (0..n)
        .map(|i| {
            TimeSeries::from_values(
                (0..slot)
                    .map(|t| 10.0 + ((i * 3 + t) % 7) as f64 * 2.5)
                    .collect(),
            )
        })
        .collect();
    let servers_used = |a: &[usize]| a.iter().copied().max().unwrap() + 1;
    let full = TwoDimAllocator::new(61.3, 100.0, 8).allocate(&cpu, &mem);
    let corr_only = TwoDimAllocator::builder(61.3, 100.0, 8)
        .correlation_only()
        .build_or_panic()
        .allocate(&cpu, &mem);
    println!("\n=== Ablation: Eq. 2 distance term (memory-dominated slot) ===");
    println!(
        "full merit: {} servers | correlation-only: {} servers",
        servers_used(&full),
        servers_used(&corr_only)
    );
}

fn print_policy_comparison() {
    use ntc_datacenter::experiments::policy_comparison;
    let fleet = bench_fleet();
    let outcomes = policy_comparison(&fleet, 600);
    println!("\n=== §V-A: EPACT vs both extremes (oracle predictions) ===");
    println!(
        "{:<10} {:>14} {:>16} {:>12}",
        "policy", "mean servers", "energy (MJ)", "migrations"
    );
    for o in &outcomes {
        println!(
            "{:<10} {:>14.1} {:>16.1} {:>12}",
            o.policy,
            o.mean_active_servers(),
            o.total_energy().as_megajoules(),
            o.total_migrations()
        );
    }
}

fn print_proportionality() {
    let ntc = ServerPowerModel::ntc();
    let conv = ServerPowerModel::conventional_e5_2620();
    println!("\n=== Energy-proportionality indices (1 = ideal) ===");
    println!(
        "NTC server @ Fmax: {:.3} | conventional @ Fmax: {:.3}",
        ep_index(&ntc, ntc.fmax(), 50),
        ep_index(&conv, conv.fmax(), 50)
    );
}

fn bench(c: &mut Criterion) {
    print_correlation_ablation();
    print_forecast_ablation();
    print_merit_ablation();
    print_policy_comparison();
    print_proportionality();

    // Time the Algorithm 1 packing kernel itself.
    let fleet = bench_fleet();
    let cpu: Vec<TimeSeries> = fleet.vms().iter().map(|v| v.cpu.window(0..12)).collect();
    let alloc = OneDimAllocator::new(
        ntc_units::Frequency::from_ghz(1.9),
        ntc_units::Frequency::from_ghz(3.1),
    );
    c.bench_function("ablations/alg1_packing_120vms", |b| {
        b.iter(|| black_box(alloc.allocate(&cpu)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
