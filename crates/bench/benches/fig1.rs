//! Fig. 1: worst-case data-center power vs frequency for (a) the
//! NTC-based and (b) the conventional (E5-2620) data center, across
//! utilization rates — the "consolidating or not?" motivation.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_bench::freq_header;
use ntc_datacenter::experiments;
use ntc_power::{DataCenterPowerModel, ServerPowerModel};
use ntc_units::Percent;
use std::hint::black_box;

fn print_panel(title: &str, server: ServerPowerModel) {
    let curves = experiments::fig1(server.clone(), 80);
    let freqs = server.dvfs_levels();
    println!("\n=== Fig. 1{title} (80 servers, worst-case CPU-bound) ===");
    println!("{:>6} {}", "util%", freq_header(&freqs));
    for c in &curves {
        let cells: Vec<String> = c
            .points
            .iter()
            .map(|(_, p)| match p {
                Some(p) => format!("{:>8.2}", p.as_kilowatts()),
                None => format!("{:>8}", "-"),
            })
            .collect();
        println!("{:>6.0} {}", c.utilization, cells.join(" "));
    }
    let dc = DataCenterPowerModel::new(server, 80);
    let (fopt, _) = dc.optimal_frequency(Percent::new(10.0));
    println!("optimal frequency at low utilization: {fopt}");
}

fn bench(c: &mut Criterion) {
    print_panel("(a) NTC", ServerPowerModel::ntc());
    print_panel(
        "(b) conventional E5-2620",
        ServerPowerModel::conventional_e5_2620(),
    );
    c.bench_function("fig1/regenerate_both_panels", |b| {
        b.iter(|| {
            black_box(experiments::fig1(ServerPowerModel::ntc(), 80));
            black_box(experiments::fig1(
                ServerPowerModel::conventional_e5_2620(),
                80,
            ));
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
