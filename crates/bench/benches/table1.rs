//! Table I: execution times of the three workload classes on the Intel
//! x86 baseline, the Cavium ThunderX and the proposed NTC server, plus
//! the 2x QoS limit.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_datacenter::experiments;
use std::hint::black_box;

fn print_table1() {
    println!("\n=== Table I: NTC server and Cavium ThunderX QoS analysis ===");
    println!(
        "{:<10} {:>14} {:>16} {:>14} {:>14}",
        "workload", "x86@2.66 (s)", "QoS limit (s)", "Cavium@2 (s)", "NTC@2 (s)"
    );
    for r in experiments::table1() {
        println!(
            "{:<10} {:>14.3} {:>16.3} {:>14.3} {:>14.3}",
            r.workload, r.x86_secs, r.qos_limit_secs, r.cavium_secs, r.ntc_secs
        );
    }
    println!(
        "(paper: 0.437/1.564/3.455 | 0.873/3.127/6.909 | 0.733/5.035/11.943 | 0.582/2.926/6.765)"
    );
}

fn bench(c: &mut Criterion) {
    print_table1();
    c.bench_function("table1/regenerate", |b| {
        b.iter(|| black_box(experiments::table1()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
