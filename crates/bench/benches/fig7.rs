//! Fig. 7: EPACT-vs-COAT power saving as per-server static power sweeps
//! from an efficient 5 W to a power-hungry 45 W.
//!
//! The whole sweep is one engine run: `experiments::fig7` expresses the
//! watt grid on the `ExperimentSpec` static-power-scale axis, so this
//! bench times the engine, not a private loop.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_bench::bench_fleet_spec;
use ntc_datacenter::experiments;
use std::hint::black_box;

fn print_fig7() {
    let sweep = if criterion::test_mode() {
        vec![5.0, 45.0] // quick-smoke grid for CI
    } else {
        vec![5.0, 15.0, 25.0, 35.0, 45.0]
    };
    let pts = experiments::fig7(bench_fleet_spec(), 600, &sweep);
    println!("\n=== Fig. 7: saving vs static power ===");
    println!(
        "{:<12} {:>16} {:>16} {:>12}",
        "static (W)", "EPACT (MJ)", "COAT (MJ)", "saving (%)"
    );
    for p in &pts {
        println!(
            "{:<12.0} {:>16.1} {:>16.1} {:>12.1}",
            p.static_power.as_watts(),
            p.epact_energy.as_megajoules(),
            p.coat_energy.as_megajoules(),
            p.saving_pct
        );
    }
    println!("(paper: saving shrinks as static power grows — EPACT favours low-static-power technologies)");
}

fn bench(c: &mut Criterion) {
    print_fig7();
    let fleet = bench_fleet_spec();
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("two_point_sweep", |b| {
        b.iter(|| black_box(experiments::fig7(fleet, 600, &[5.0, 45.0])))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
