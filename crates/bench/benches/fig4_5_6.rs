//! Figs. 4, 5 and 6: the week-long data-center comparison of EPACT,
//! COAT and COAT-OPT — SLA violations, active servers and total energy
//! per hourly slot, with ARIMA day-ahead predictions.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_bench::{bench_fleet, print_week_summary};
use ntc_core::{Coat, Epact};
use ntc_datacenter::{experiments, WeekSim};
use ntc_power::ServerPowerModel;
use std::hint::black_box;

fn print_figs() {
    let fleet = bench_fleet();
    let outcomes = experiments::fig4_5_6(&fleet, 600);
    print_week_summary(&outcomes);

    println!("\nper-slot series (first 24 slots):");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "slot", "viol-EP", "viol-CO", "srv-EP", "srv-CO", "MJ-EP", "MJ-CO"
    );
    let ep = &outcomes[0];
    let co = &outcomes[1];
    for t in 0..24 {
        println!(
            "{:<6} {:>10} {:>10} {:>10} {:>10} {:>10.2} {:>10.2}",
            t,
            ep.slots[t].violations,
            co.slots[t].violations,
            ep.slots[t].active_servers,
            co.slots[t].active_servers,
            ep.slots[t].energy.as_megajoules(),
            co.slots[t].energy.as_megajoules()
        );
    }
    println!("(paper: EPACT saves up to 45% vs COAT and ~10% vs COAT-OPT; COAT uses ~37% fewer servers; EPACT violations near zero)");
}

fn bench(c: &mut Criterion) {
    print_figs();
    // Time a single-slot allocate+replay cycle (the recurring runtime
    // cost of each policy in production).
    let fleet = bench_fleet();
    let server = ServerPowerModel::ntc();
    let sim = WeekSim::new(&fleet, server, 600);
    let mut g = c.benchmark_group("fig4_5_6");
    g.sample_size(10);
    g.bench_function("oracle_week/EPACT", |b| {
        b.iter(|| black_box(sim.run_with_oracle(&Epact::new())))
    });
    g.bench_function("oracle_week/COAT", |b| {
        b.iter(|| black_box(sim.run_with_oracle(&Coat::new())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
