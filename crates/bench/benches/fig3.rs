//! Fig. 3: server efficiency (BUIPS/W) across core frequencies for the
//! three workload classes on the NTC server.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_bench::freq_header;
use ntc_datacenter::experiments;
use std::hint::black_box;

fn print_fig3() {
    let series = experiments::fig3();
    let freqs = experiments::fig2_frequencies();
    println!("\n=== Fig. 3: efficiency in BUIPS/Watt ===");
    println!("{:<10} {}", "workload", freq_header(&freqs));
    for s in &series {
        let cells: Vec<String> = s.points.iter().map(|(_, v)| format!("{v:>8.3}")).collect();
        println!("{:<10} {}", s.workload, cells.join(" "));
    }
    for s in &series {
        let (f, e) = s
            .points
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        println!("{}: peak {e:.3} BUIPS/W at {f}", s.workload);
    }
    println!("(paper: peak ~1.2 GHz for high-mem, ~1.5 GHz for low/mid-mem)");
}

fn bench(c: &mut Criterion) {
    print_fig3();
    c.bench_function("fig3/regenerate", |b| {
        b.iter(|| black_box(experiments::fig3()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
