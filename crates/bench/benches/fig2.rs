//! Fig. 2: execution time normalized to the QoS limit across core
//! frequencies for the three workload classes on the NTC server.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_bench::freq_header;
use ntc_datacenter::experiments;
use std::hint::black_box;

fn print_fig2() {
    let series = experiments::fig2();
    let freqs = experiments::fig2_frequencies();
    println!("\n=== Fig. 2: normalized execution time (<= 1.0 meets QoS) ===");
    println!("{:<10} {}", "workload", freq_header(&freqs));
    for s in &series {
        let cells: Vec<String> = s.points.iter().map(|(_, v)| format!("{v:>8.2}")).collect();
        println!("{:<10} {}", s.workload, cells.join(" "));
    }
    for s in &series {
        let min_ok = s.points.iter().find(|&&(_, v)| v <= 1.0).map(|&(f, _)| f);
        match min_ok {
            Some(f) => println!("{}: meets QoS from {f}", s.workload),
            None => println!("{}: never meets QoS on this grid", s.workload),
        }
    }
    println!("(paper: low-mem down to 1.2 GHz, mid/high-mem down to 1.8 GHz)");
}

fn bench(c: &mut Criterion) {
    print_fig2();
    c.bench_function("fig2/regenerate", |b| {
        b.iter(|| black_box(experiments::fig2()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
