//! Benches for the parallel experiment engine: the whole default sweep
//! end to end, sequential vs all-cores, plus the Algorithm 1 packing
//! kernel that the `CorrelationCache` rework targets.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_datacenter::{Engine, ExperimentSpec};
use std::hint::black_box;

fn sweep_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::default_sweep();
    spec.fleet.num_vms = 48;
    spec.max_servers = 600;
    spec
}

fn print_sweep_table() {
    let spec = sweep_spec();
    let engine = Engine::new();
    let sweep = engine.run(&spec).expect("valid spec");
    println!(
        "\n=== Engine sweep: {} cells on {} threads, {:.2}s wall ===",
        sweep.cells.len(),
        sweep.threads,
        sweep.wall.as_secs_f64()
    );
    println!(
        "{:<24} {:>10} {:>14} {:>11}",
        "cell", "wall (ms)", "energy (MJ)", "violations"
    );
    for cell in &sweep.cells {
        println!(
            "{:<24} {:>10.0} {:>14.1} {:>11}",
            cell.cell.label(spec.ablation),
            cell.wall.as_secs_f64() * 1e3,
            cell.outcome.total_energy().as_megajoules(),
            cell.outcome.total_violations()
        );
    }
}

fn bench(c: &mut Criterion) {
    print_sweep_table();

    let spec = sweep_spec();
    c.bench_function("engine/sweep_6cells_sequential", |b| {
        let engine = Engine::with_threads(1);
        b.iter(|| black_box(engine.run(&spec).expect("valid spec")))
    });
    c.bench_function("engine/sweep_6cells_all_cores", |b| {
        let engine = Engine::new();
        b.iter(|| black_box(engine.run(&spec).expect("valid spec")))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
