//! Benches for the parallel experiment engine: the whole default sweep
//! end to end, sequential vs all-cores, plus the Algorithm 1 packing
//! kernel that the `CorrelationCache` rework targets.

use criterion::{criterion_group, criterion_main, Criterion};
use ntc_datacenter::{Engine, ExperimentSpec};
use std::hint::black_box;
use std::time::Instant;

fn sweep_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::default_sweep();
    spec.fleets[0].num_vms = 48;
    spec.max_servers = 600;
    spec
}

/// The seed-averaged form: the same sweep over three fleet seeds.
fn seeded_spec() -> ExperimentSpec {
    sweep_spec().with_seeds(&[2024, 2025, 2026])
}

fn print_sweep_table() {
    let spec = seeded_spec();
    let engine = Engine::new();
    let sweep = engine.run(&spec).expect("valid spec");
    println!(
        "\n=== Engine sweep: {} cells on {} threads, {:.2}s wall ===",
        sweep.cells.len(),
        sweep.threads,
        sweep.wall.as_secs_f64()
    );
    println!(
        "{:<24} {:>5} {:>16} {:>14} {:>16}",
        "group (3 seeds)", "runs", "energy (MJ)", "violations", "mean servers"
    );
    for g in sweep.seed_groups() {
        println!(
            "{:<24} {:>5} {:>16} {:>14} {:>16}",
            g.label(spec.ablation),
            g.runs,
            g.energy_mj.to_string(),
            g.violations.to_string(),
            g.mean_active_servers.to_string()
        );
    }
}

/// Min-of-`reps` wall time of one engine sweep, in seconds.
fn min_wall(engine: &Engine, spec: &ExperimentSpec, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(engine.run(spec).expect("valid spec"));
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Writes the machine-readable summary next to the crate manifest so
/// the perf trajectory accumulates across PRs (the file is gitignored;
/// compare it against the previous checkout's copy). Smoke mode runs
/// one rep per scenario so CI keeps exercising the writer.
fn write_bench_json() {
    let reps = if criterion::test_mode() { 1 } else { 3 };
    let spec = sweep_spec();
    let seeded = seeded_spec();
    let sequential = min_wall(&Engine::with_threads(1), &spec, reps);
    let parallel = min_wall(&Engine::new(), &spec, reps);
    let seeded_wall = min_wall(&Engine::new(), &seeded, reps);
    let threads = Engine::new().threads();
    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"reps\": {reps},\n  \"threads\": {threads},\n  \
         \"sweep_6cells_sequential_s\": {sequential:.6},\n  \
         \"sweep_6cells_all_cores_s\": {parallel:.6},\n  \
         \"sweep_18cells_seed_averaged_s\": {seeded_wall:.6}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_engine.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("engine: wrote {path}"),
        Err(e) => eprintln!("engine: could not write {path}: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    print_sweep_table();
    write_bench_json();

    let spec = sweep_spec();
    c.bench_function("engine/sweep_6cells_sequential", |b| {
        let engine = Engine::with_threads(1);
        b.iter(|| black_box(engine.run(&spec).expect("valid spec")))
    });
    c.bench_function("engine/sweep_6cells_all_cores", |b| {
        let engine = Engine::new();
        b.iter(|| black_box(engine.run(&spec).expect("valid spec")))
    });
    let seeded = seeded_spec();
    c.bench_function("engine/sweep_18cells_seed_averaged", |b| {
        let engine = Engine::new();
        b.iter(|| black_box(engine.run(&seeded).expect("valid spec")))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
