//! Shared fixtures and printing helpers for the benchmark harness.
//!
//! Every table and figure of the paper has a Criterion bench target in
//! `benches/` that (a) prints the regenerated rows/series in the paper's
//! layout and (b) times the regeneration. The printing runs once, before
//! measurement, so `cargo bench` output doubles as the experiment log
//! recorded in EXPERIMENTS.md.

#![warn(missing_docs)]

use ntc_datacenter::{FleetSpec, WeekOutcome};
use ntc_units::Frequency;
use ntc_workload::{ClusterTraceGenerator, Fleet};

/// The fleet used by the data-center benches. Smaller than the paper's
/// 600 VMs so a bench iteration stays in seconds; the examples run the
/// full 600.
pub fn bench_fleet() -> Fleet {
    bench_fleet_spec().generate()
}

/// The declarative form of [`bench_fleet`] — what engine-based benches
/// put on an `ExperimentSpec`'s fleet axis.
pub fn bench_fleet_spec() -> FleetSpec {
    FleetSpec {
        num_vms: 120,
        seed: 2018,
        weeks: 2,
    }
}

/// The full-size fleet of the paper (600 VMs).
pub fn paper_fleet() -> Fleet {
    ClusterTraceGenerator::google_like(600, 2018).generate()
}

/// Formats a frequency column header.
pub fn freq_header(freqs: &[Frequency]) -> String {
    let cols: Vec<String> = freqs
        .iter()
        .map(|f| format!("{:>8}", format!("{:.1}G", f.as_ghz())))
        .collect();
    cols.join(" ")
}

/// Prints the Fig. 4/5/6 summary block for a set of week outcomes.
pub fn print_week_summary(outcomes: &[WeekOutcome]) {
    println!("\n=== Figs. 4-6: one-week data-center comparison ===");
    println!(
        "{:<10} {:>12} {:>16} {:>16}",
        "policy", "violations", "mean active srv", "total energy MJ"
    );
    for o in outcomes {
        println!(
            "{:<10} {:>12} {:>16.1} {:>16.1}",
            o.policy,
            o.total_violations(),
            o.mean_active_servers(),
            o.total_energy().as_megajoules()
        );
    }
    if outcomes.len() >= 2 {
        let epact = &outcomes[0];
        for other in &outcomes[1..] {
            println!(
                "EPACT saving vs {}: {:.1}%",
                other.policy,
                epact.energy_saving_vs(other) * 100.0
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleets_have_expected_sizes() {
        assert_eq!(bench_fleet().len(), 120);
    }

    #[test]
    fn freq_header_formats() {
        let h = freq_header(&[Frequency::from_ghz(1.9)]);
        assert!(h.contains("1.9G"));
    }
}
