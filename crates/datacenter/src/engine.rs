//! The parallel experiment engine.
//!
//! Every figure and table of the paper is a sweep over independent
//! (policy, configuration) cells: run a [`WeekSim`] week per cell,
//! tabulate. [`ExperimentSpec`] declares such a sweep once — policy
//! set, server models, predictor, a *set* of fleets (seeds/sizes), QoS
//! floors, static-power scales and ablation flags — and [`Engine`] fans
//! the cells across a scoped worker pool sized from
//! [`std::thread::available_parallelism`], collecting [`WeekOutcome`]s
//! deterministically in spec order: every cell is a pure function of
//! the spec, so the schedule cannot change the results, only the
//! wall-clock. Each distinct [`FleetSpec`] is generated exactly once,
//! behind an `Arc`, however many cells share it and however the workers
//! interleave.
//!
//! Cells are also *fault-isolated*: each one runs under
//! [`std::panic::catch_unwind`], and a panicking or erroring cell
//! becomes a structured [`CellError`] in
//! [`SweepResult::failed`] instead of tearing down the sweep — every
//! healthy cell's result is bit-identical to a clean run. The spec's
//! [`FailurePolicy`] chooses between finishing the remaining cells
//! (the default) and aborting them via a shared flag
//! ([`FailurePolicy::FailFast`]); see the [`fault`](crate::fault)
//! module for the full failure model and the deterministic
//! fault-injection instrument that proves the isolation guarantee.
//!
//! # Examples
//!
//! ```
//! use ntc_datacenter::{Engine, ExperimentSpec};
//!
//! let mut spec = ExperimentSpec::default_sweep();
//! spec.fleets[0].num_vms = 16; // keep the doctest fast
//! spec.max_servers = 200;
//! let sweep = Engine::new().run(&spec).unwrap();
//! assert_eq!(sweep.cells.len(), 6); // 3 policies x 2 server models
//! ```
//!
//! Seed-averaged runs are one more axis of the same spec:
//!
//! ```
//! use ntc_datacenter::{Engine, ExperimentSpec, PolicySpec, ServerSpec};
//!
//! let mut spec = ExperimentSpec::default_sweep().with_seeds(&[1, 2]);
//! spec.fleets.iter_mut().for_each(|f| f.num_vms = 10);
//! spec.policies = vec![PolicySpec::Epact, PolicySpec::Coat];
//! spec.servers = vec![ServerSpec::Ntc];
//! spec.max_servers = 100;
//! let sweep = Engine::new().run(&spec).unwrap();
//! assert_eq!(sweep.cells.len(), 4); // 2 seeds x 2 policies
//! let groups = sweep.seed_groups();
//! assert_eq!(groups.len(), 2); // averaged over the fleet axis
//! assert_eq!(groups[0].runs, 2);
//! ```

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use ntc_core::{AllocationPolicy, Coat, CoatOpt, Epact, Error, LoadBalance};
use ntc_forecast::{ArimaPredictor, SeasonalNaive};
use ntc_power::ServerPowerModel;
use ntc_units::Frequency;
use ntc_workload::{ClusterTraceGenerator, Fleet};
use serde::{Deserialize, Serialize};

use crate::backend::BackendSpec;
use crate::cache::{CacheStats, ForecastCache, PlanCache, RunCaches};
use crate::fault::{self, CellError, CellStage, FailureCause, FailurePolicy, FaultSpec};
use crate::{MeanStd, WeekOutcome, WeekSim};

/// One synthetic fleet of a sweep's fleet set (see
/// [`ClusterTraceGenerator::google_like`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Number of VMs.
    pub num_vms: usize,
    /// Generator seed; every cell over this fleet shares the traces.
    pub seed: u64,
    /// Trace horizon in weeks (minimum 2: training + evaluation).
    pub weeks: usize,
}

impl FleetSpec {
    /// 5-minute samples in one week — the generator's grid granularity.
    pub const WEEK_SAMPLES: usize = 7 * 24 * 12;

    /// Total samples this fleet's traces will carry once generated.
    pub fn samples(&self) -> usize {
        self.weeks * Self::WEEK_SAMPLES
    }

    /// Materializes the fleet.
    pub fn generate(&self) -> Fleet {
        ClusterTraceGenerator::google_like(self.num_vms, self.seed)
            .with_weeks(self.weeks)
            .generate()
    }
}

/// An allocation policy in the sweep's policy set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// The paper's contribution (§V-B).
    Epact,
    /// Consolidation at maximum capacity (Kim et al., DATE'13).
    Coat,
    /// Consolidation at the optimal fixed cap.
    CoatOpt,
    /// Load balancing over all servers (the anti-consolidation extreme).
    LoadBalance,
}

impl PolicySpec {
    /// Instantiates the policy, honouring the spec's ablation flags.
    pub fn build(&self, ablation: AblationFlags) -> Box<dyn AllocationPolicy> {
        match self {
            PolicySpec::Epact if ablation.correlation_only => Box::new(Epact::correlation_only()),
            PolicySpec::Epact => Box::new(Epact::new()),
            PolicySpec::Coat => Box::new(Coat::new()),
            PolicySpec::CoatOpt => Box::new(CoatOpt::new()),
            PolicySpec::LoadBalance => Box::new(LoadBalance::new()),
        }
    }
}

/// A server power model in the sweep's server set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerSpec {
    /// The NTC many-core server (Table 1).
    Ntc,
    /// The conventional Xeon E5-2620 reference.
    Conventional,
}

impl ServerSpec {
    /// Instantiates the power model.
    pub fn model(&self) -> ServerPowerModel {
        match self {
            ServerSpec::Ntc => ServerPowerModel::ntc(),
            ServerSpec::Conventional => ServerPowerModel::conventional_e5_2620(),
        }
    }

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            ServerSpec::Ntc => "NTC",
            ServerSpec::Conventional => "conv",
        }
    }
}

/// The forecast pipeline shared by every cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictorSpec {
    /// Perfect predictions (the actual traces) — isolates allocation
    /// quality from forecast quality.
    Oracle,
    /// The paper's pipeline: ARIMA retrained daily on all history.
    Arima,
    /// Same-time-yesterday baseline.
    SeasonalNaive,
}

/// Ablation switches applied across the sweep (DESIGN.md §7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationFlags {
    /// Drop the Eq. 2 distance term in EPACT's memory-dominated path,
    /// scoring servers by correlation alone.
    pub correlation_only: bool,
}

/// A declarative experiment sweep: the cross product of `fleets`,
/// `static_power_scales`, `servers`, `qos_floors_mhz` and `policies`.
///
/// This is the single serde-serializable entry point the CLI `sweep`
/// subcommand, the examples and the benches all share; see
/// [`spec_json`](crate::spec_json) for the on-disk form. Multiple
/// fleets model seed-averaged runs (same size, different seeds) or
/// size sweeps; `static_power_scales` multiplies each server model's
/// motherboard ("static") power — the Fig. 7 knob.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Display name of the sweep.
    pub name: String,
    /// The fleet set (outermost axis of the cell cross product). Cells
    /// over the same `FleetSpec` share one generated fleet.
    pub fleets: Vec<FleetSpec>,
    /// Motherboard static-power scale factors (second axis); `1.0` is
    /// the paper's baseline server. Use `vec![1.0]` for a single arm.
    pub static_power_scales: Vec<f64>,
    /// Server-model set (third axis).
    pub servers: Vec<ServerSpec>,
    /// QoS frequency floors in MHz (fourth axis); `None` = pure
    /// demand-proportional DVFS. Use `vec![None]` for a single arm.
    pub qos_floors_mhz: Vec<Option<f64>>,
    /// Accounting-backend set (fifth axis); analytic power-model
    /// integration and/or detailed archsim accounting. Use
    /// `vec![BackendSpec::Analytic]` for the paper's single arm.
    pub backends: Vec<BackendSpec>,
    /// Policy set (innermost axis).
    pub policies: Vec<PolicySpec>,
    /// Forecast pipeline shared by every cell.
    pub predictor: PredictorSpec,
    /// Physical servers available to every cell.
    pub max_servers: usize,
    /// Sweep-wide ablation switches.
    pub ablation: AblationFlags,
    /// What the engine does with the remaining cells once one fails
    /// (default: [`FailurePolicy::KeepGoing`]).
    pub failure_policy: FailurePolicy,
}

impl ExperimentSpec {
    /// The paper's headline comparison: EPACT vs COAT vs COAT-OPT on
    /// both server models, oracle predictions, no QoS floor — six
    /// cells over one fleet.
    pub fn default_sweep() -> Self {
        Self {
            name: "policy-comparison".to_string(),
            fleets: vec![FleetSpec {
                num_vms: 48,
                seed: 2024,
                weeks: 2,
            }],
            static_power_scales: vec![1.0],
            servers: vec![ServerSpec::Ntc, ServerSpec::Conventional],
            qos_floors_mhz: vec![None],
            backends: vec![BackendSpec::Analytic],
            policies: vec![PolicySpec::Epact, PolicySpec::Coat, PolicySpec::CoatOpt],
            predictor: PredictorSpec::Oracle,
            max_servers: 600,
            ablation: AblationFlags::default(),
            failure_policy: FailurePolicy::default(),
        }
    }

    /// Replaces the fleet set with one fleet per seed, all sized like
    /// the current first fleet — the seed-averaged form of this sweep.
    ///
    /// # Panics
    ///
    /// Panics if the spec currently has no fleets to use as template.
    #[must_use]
    pub fn with_seeds(mut self, seeds: &[u64]) -> Self {
        let base = *self.fleets.first().expect("spec needs a template fleet");
        self.fleets = seeds
            .iter()
            .map(|&seed| FleetSpec { seed, ..base })
            .collect();
        self
    }

    /// Expands the cross product into concrete cells, in the
    /// deterministic order results are reported: fleets outermost, then
    /// static-power scales, then servers, then QoS floors, then
    /// accounting backends, then policies.
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::new();
        for &fleet in &self.fleets {
            for &scale in &self.static_power_scales {
                for &server in &self.servers {
                    for &floor in &self.qos_floors_mhz {
                        for &backend in &self.backends {
                            for &policy in &self.policies {
                                out.push(CellSpec {
                                    fleet,
                                    static_power_scale: scale,
                                    policy,
                                    server,
                                    qos_floor_mhz: floor,
                                    backend,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Checks every axis before any fleet is generated.
    fn validate(&self) -> Result<(), Error> {
        if self.max_servers == 0 {
            return Err(Error::NoServers);
        }
        for fleet in &self.fleets {
            if fleet.num_vms == 0 {
                return Err(Error::NoVms);
            }
            let need = 2 * FleetSpec::WEEK_SAMPLES;
            if fleet.samples() < need {
                return Err(Error::HorizonTooShort {
                    have: fleet.samples(),
                    need,
                });
            }
        }
        for &scale in &self.static_power_scales {
            if !scale.is_finite() || scale < 0.0 {
                return Err(Error::BadStaticPowerScale { scale });
            }
        }
        Ok(())
    }
}

/// Shared label formatting for a (policy, server, floor, scale,
/// backend) configuration — the part of a cell's identity every fleet
/// shares. The default analytic backend is elided so legacy labels
/// stay unchanged.
fn config_label(
    policy: PolicySpec,
    server: ServerSpec,
    qos_floor_mhz: Option<f64>,
    static_power_scale: f64,
    backend: BackendSpec,
    ablation: AblationFlags,
) -> String {
    let policy = policy.build(ablation);
    let mut label = match qos_floor_mhz {
        Some(mhz) => format!("{}/{}@{:.0}MHz", policy.name(), server.label(), mhz),
        None => format!("{}/{}", policy.name(), server.label()),
    };
    if static_power_scale != 1.0 {
        label.push_str(&format!("/sp{static_power_scale:.2}"));
    }
    if backend != BackendSpec::Analytic {
        label.push('/');
        label.push_str(backend.label());
    }
    label
}

/// One (policy, configuration) cell of a sweep, carrying the full
/// identity of its arm: fleet, static-power scale, policy, server and
/// QoS floor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// The fleet this cell runs over.
    pub fleet: FleetSpec,
    /// Motherboard static-power scale applied to the server model
    /// (`1.0` = unmodified).
    pub static_power_scale: f64,
    /// The allocation policy under evaluation.
    pub policy: PolicySpec,
    /// The server power model.
    pub server: ServerSpec,
    /// Optional QoS frequency floor in MHz.
    pub qos_floor_mhz: Option<f64>,
    /// The accounting backend pricing this cell's governed slots.
    pub backend: BackendSpec,
}

impl CellSpec {
    /// Human-readable cell label, e.g. `EPACT/NTC`,
    /// `COAT/conv@1800MHz`, `EPACT/NTC/sp0.50` for a scaled arm or
    /// `EPACT/NTC/archsim` for a non-default backend. The fleet is not
    /// part of the label — print its seed separately when a sweep
    /// spans several.
    pub fn label(&self, ablation: AblationFlags) -> String {
        config_label(
            self.policy,
            self.server,
            self.qos_floor_mhz,
            self.static_power_scale,
            self.backend,
            ablation,
        )
    }

    /// The server power model with this cell's static-power scale
    /// applied to the motherboard component.
    pub fn server_model(&self) -> ServerPowerModel {
        let model = self.server.model();
        if self.static_power_scale == 1.0 {
            return model;
        }
        let motherboard = model.uncore().motherboard();
        model.with_static_power(motherboard * self.static_power_scale)
    }
}

/// One evaluated cell: its spec, the week outcome and the cell's own
/// wall-clock.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell that was run.
    pub cell: CellSpec,
    /// The evaluated week.
    pub outcome: WeekOutcome,
    /// Plan/forecast cache hits and misses of this cell's run (all
    /// zeros when the engine runs with caching disabled).
    pub cache: CacheStats,
    /// Wall-clock time this cell took on its worker (the first cell
    /// touching a fleet pays its generation here).
    pub wall: Duration,
}

/// A finished sweep — possibly partial: cells that completed in spec
/// order, plus a [`CellError`] for every cell that panicked, reported
/// a structured error, or was skipped by
/// [`FailurePolicy::FailFast`]. A clean sweep has an empty
/// [`failures`](SweepResult::failures) vector and behaves exactly as
/// before.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// One outcome per *completed* cell, in [`ExperimentSpec::cells`]
    /// order. Failed cells are absent here and present in
    /// [`failures`](SweepResult::failures) instead.
    pub cells: Vec<CellOutcome>,
    /// Every cell that did not complete, in spec order, with the
    /// pipeline stage and cause captured per cell.
    pub failures: Vec<CellError>,
    /// End-to-end wall-clock including fleet generation.
    pub wall: Duration,
    /// Worker threads the engine used.
    pub threads: usize,
}

impl SweepResult {
    /// The cells that completed, in spec order — an alias for
    /// [`cells`](SweepResult::cells) that reads well next to
    /// [`failed`](SweepResult::failed).
    pub fn succeeded(&self) -> &[CellOutcome] {
        &self.cells
    }

    /// The cells that failed (or were skipped by fail-fast), in spec
    /// order; empty for a clean sweep.
    pub fn failed(&self) -> &[CellError] {
        &self.failures
    }

    /// Whether every cell of the spec completed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Cells the spec expanded to, completed or not.
    pub fn total_cells(&self) -> usize {
        self.cells.len() + self.failures.len()
    }

    /// The week outcomes alone, in spec order — the payload determinism
    /// checks compare (per-cell wall-clock is scheduling noise).
    pub fn outcomes(&self) -> Vec<&WeekOutcome> {
        self.cells.iter().map(|c| &c.outcome).collect()
    }

    /// Plan/forecast cache hits and misses summed over every cell —
    /// what `ntcdc sweep --cache-stats` prints.
    pub fn cache_totals(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for cell in &self.cells {
            total.merge(cell.cache);
        }
        total
    }

    /// Aggregates the cells over the fleet axis: every (policy, server,
    /// QoS floor, static-power scale, backend) configuration becomes
    /// one group with mean and sample standard deviation of its
    /// headline metrics across the fleets (seeds) that ran it. Groups
    /// appear in first spec-order occurrence, so a single-fleet sweep
    /// degenerates to one group per cell with zero spread. Failed
    /// cells are simply absent, so a group's `runs` may be smaller
    /// than the fleet set — the statistics stay NaN-free because
    /// [`MeanStd::of`] handles short samples.
    pub fn seed_groups(&self) -> Vec<GroupOutcome> {
        // f64 axes are compared by bit pattern: all values of one group
        // originate from the same spec literal, so bits match exactly.
        type Key = (PolicySpec, ServerSpec, Option<u64>, u64, BackendSpec);
        let mut keys: Vec<Key> = Vec::new();
        let mut buckets: Vec<Vec<&CellOutcome>> = Vec::new();
        for cell in &self.cells {
            let key = (
                cell.cell.policy,
                cell.cell.server,
                cell.cell.qos_floor_mhz.map(f64::to_bits),
                cell.cell.static_power_scale.to_bits(),
                cell.cell.backend,
            );
            match keys.iter().position(|k| *k == key) {
                Some(i) => buckets[i].push(cell),
                None => {
                    keys.push(key);
                    buckets.push(vec![cell]);
                }
            }
        }
        buckets
            .into_iter()
            .map(|cells| {
                let first = cells[0].cell;
                let stat = |f: &dyn Fn(&WeekOutcome) -> f64| {
                    MeanStd::of(&cells.iter().map(|c| f(&c.outcome)).collect::<Vec<_>>())
                };
                GroupOutcome {
                    policy: first.policy,
                    server: first.server,
                    qos_floor_mhz: first.qos_floor_mhz,
                    static_power_scale: first.static_power_scale,
                    backend: first.backend,
                    runs: cells.len(),
                    energy_mj: stat(&|o| o.total_energy().as_megajoules()),
                    violations: stat(&|o| o.total_violations() as f64),
                    migrations: stat(&|o| o.total_migrations() as f64),
                    mean_active_servers: stat(&|o| o.mean_active_servers()),
                }
            })
            .collect()
    }
}

/// One seed-averaged configuration of a sweep: the headline metrics of
/// every fleet that ran this (policy, server, floor, scale) arm,
/// collapsed to mean ± sample standard deviation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupOutcome {
    /// The allocation policy of this group.
    pub policy: PolicySpec,
    /// The server power model of this group.
    pub server: ServerSpec,
    /// Optional QoS frequency floor in MHz.
    pub qos_floor_mhz: Option<f64>,
    /// Motherboard static-power scale of this group.
    pub static_power_scale: f64,
    /// The accounting backend of this group.
    pub backend: BackendSpec,
    /// Fleets (seeds/sizes) aggregated into this group.
    pub runs: usize,
    /// Total energy over the horizon, megajoules.
    pub energy_mj: MeanStd,
    /// Total SLA violations over the horizon.
    pub violations: MeanStd,
    /// Total VM migrations over the horizon.
    pub migrations: MeanStd,
    /// Mean number of active servers.
    pub mean_active_servers: MeanStd,
}

impl GroupOutcome {
    /// Human-readable group label — the cell label minus the fleet.
    pub fn label(&self, ablation: AblationFlags) -> String {
        config_label(
            self.policy,
            self.server,
            self.qos_floor_mhz,
            self.static_power_scale,
            self.backend,
            ablation,
        )
    }
}

/// Lazily-generated fleets, one per distinct [`FleetSpec`] of the
/// sweep. The first worker to need a fleet generates it inside the
/// `OnceLock`; everyone else clones the `Arc`. Generation is
/// deterministic in the spec, so which worker wins the race cannot
/// change any result.
#[derive(Debug)]
struct FleetCache {
    entries: Vec<(FleetSpec, OnceLock<Arc<Fleet>>)>,
}

impl FleetCache {
    /// Builds an empty cache over the distinct fleet specs, preserving
    /// first-occurrence order.
    fn new(fleets: &[FleetSpec]) -> Self {
        let mut entries: Vec<(FleetSpec, OnceLock<Arc<Fleet>>)> = Vec::new();
        for &fleet in fleets {
            if !entries.iter().any(|(f, _)| *f == fleet) {
                entries.push((fleet, OnceLock::new()));
            }
        }
        Self { entries }
    }

    /// The generated fleet for `spec`, materializing it on first use.
    fn get(&self, spec: &FleetSpec) -> Arc<Fleet> {
        let (_, slot) = self
            .entries
            .iter()
            .find(|(f, _)| f == spec)
            .expect("every cell's fleet comes from the spec's fleet set");
        slot.get_or_init(|| Arc::new(spec.generate())).clone()
    }
}

/// Parallel experiment runner over [`ExperimentSpec`] cells.
///
/// Cells are pulled off a shared atomic counter by `threads` scoped
/// workers and written into their spec-order slots, so results are
/// bit-identical however the cells are scheduled (including
/// [`Engine::run_sequential`]). Each cell runs under `catch_unwind`;
/// see [`SweepResult::failed`] and the [`fault`](crate::fault) module.
#[derive(Debug, Clone)]
pub struct Engine {
    threads: usize,
    caching: bool,
    fault: Option<FaultSpec>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine sized from [`std::thread::available_parallelism`]
    /// (1 if that is unavailable).
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            threads,
            caching: true,
            fault: None,
        }
    }

    /// An engine with an explicit worker count, clamped to at least 1 —
    /// `with_threads(0)` yields a sequential engine, never an empty
    /// pool.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            caching: true,
            fault: None,
        }
    }

    /// Arms a deterministic [`FaultSpec`] for the next run — the
    /// test/chaos instrument behind the engine's isolation guarantee.
    /// The targeted cell fails at the targeted stage; every other cell
    /// must (and, by test, does) stay bit-identical to a clean run.
    /// Not part of [`ExperimentSpec`] on purpose: a fault is a
    /// property of one engine invocation, never of the serialized
    /// experiment.
    #[must_use]
    pub fn inject_fault(mut self, fault: FaultSpec) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Enables or disables cross-cell caching (default: on).
    ///
    /// When on, cells whose planning inputs coincide — e.g. QoS-floor
    /// arms, or static-power-scale arms of a policy that plans at
    /// `Fmax` — share one plan per slot, and all cells over a fleet
    /// share its day-ahead forecasts. Every shared value is a pure
    /// function of the spec, so results are bit-identical either way;
    /// `caching(false)` exists for benchmarking and as an escape
    /// hatch. (The per-run day-moment cache inside [`WeekSim`] is a
    /// separate knob and stays on here regardless, keeping the two
    /// engine modes on one numerical path.)
    #[must_use]
    pub fn caching(mut self, enabled: bool) -> Self {
        self.caching = enabled;
        self
    }

    /// The worker-pool size.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every cell of `spec` across the worker pool, returning
    /// outcomes in spec order.
    ///
    /// # Errors
    ///
    /// Returns an error only for a sweep that cannot start at all: any
    /// fleet is empty or shorter than two weeks, `max_servers == 0`, a
    /// static-power scale is negative or non-finite, or the (valid)
    /// spec expands to no cells. *Per-cell* failures — panics or
    /// errors inside a running cell — do not surface here: the sweep
    /// completes under the spec's [`FailurePolicy`] and reports them
    /// in [`SweepResult::failed`].
    pub fn run(&self, spec: &ExperimentSpec) -> Result<SweepResult, Error> {
        self.run_with_workers(spec, self.threads)
    }

    /// Runs every cell on the calling thread — same code path, one
    /// worker; the reference the parallel run must match bit for bit.
    ///
    /// # Errors
    ///
    /// As for [`Engine::run`].
    pub fn run_sequential(&self, spec: &ExperimentSpec) -> Result<SweepResult, Error> {
        self.run_with_workers(spec, 1)
    }

    fn run_with_workers(
        &self,
        spec: &ExperimentSpec,
        threads: usize,
    ) -> Result<SweepResult, Error> {
        let started = Instant::now();
        // Axis contents are validated before emptiness so an invalid
        // *and* empty spec reports its actual root cause, not the
        // secondary EmptySpec symptom.
        spec.validate()?;
        let cells = spec.cells();
        if cells.is_empty() {
            return Err(Error::EmptySpec);
        }
        let caches = SweepCaches {
            fleet: FleetCache::new(&spec.fleets),
            plans: self.caching.then(|| PlanCache::new(spec, &cells)),
            forecasts: (self.caching && spec.predictor != PredictorSpec::Oracle)
                .then(|| ForecastCache::new(&spec.fleets)),
        };

        let workers = threads.min(cells.len()).max(1);
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        // OnceLock slots are poison-free by construction: a worker
        // panic can never turn into a second PoisonError panic at
        // collection time, and every slot is written exactly once.
        let slots: Vec<OnceLock<Result<CellOutcome, CellError>>> =
            cells.iter().map(|_| OnceLock::new()).collect();
        let run = RunControl {
            fault: self.fault,
            policy: spec.failure_policy,
            abort: &abort,
        };

        if workers == 1 {
            drain_cells(&next, &cells, &slots, spec, &caches, &run);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| drain_cells(&next, &cells, &slots, spec, &caches, &run));
                }
            });
        }

        let mut done = Vec::new();
        let mut failures = Vec::new();
        for slot in slots {
            match slot
                .into_inner()
                .expect("every index below cells.len() was claimed")
            {
                Ok(outcome) => done.push(outcome),
                Err(failure) => failures.push(failure),
            }
        }
        Ok(SweepResult {
            cells: done,
            failures,
            wall: started.elapsed(),
            threads: workers,
        })
    }
}

/// Every shared structure one sweep's workers draw on: the lazily
/// generated fleets and, when caching is enabled, the deduplicated plan
/// groups and per-fleet day forecasts.
#[derive(Debug)]
struct SweepCaches {
    fleet: FleetCache,
    plans: Option<PlanCache>,
    forecasts: Option<ForecastCache>,
}

/// The per-run failure machinery shared by every worker: the armed
/// fault (if any), the spec's failure policy and the fail-fast abort
/// flag.
#[derive(Debug)]
struct RunControl<'a> {
    fault: Option<FaultSpec>,
    policy: FailurePolicy,
    abort: &'a AtomicBool,
}

/// Worker body: claim cell indices off the shared counter until none
/// remain, writing each cell's `Result` into its spec-order slot.
///
/// Each cell runs under `catch_unwind`: a panic becomes a
/// [`CellError`] attributed to the stage the worker's thread-local
/// tracker last entered (the whole cell runs on this thread, so the
/// tracker is exact). Under [`FailurePolicy::FailFast`] any failure
/// raises the shared abort flag and unstarted cells are recorded as
/// [`FailureCause::Skipped`]; cells already running on other workers
/// finish normally.
fn drain_cells(
    next: &AtomicUsize,
    cells: &[CellSpec],
    slots: &[OnceLock<Result<CellOutcome, CellError>>],
    spec: &ExperimentSpec,
    caches: &SweepCaches,
    run: &RunControl<'_>,
) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(cell) = cells.get(i) else { break };
        let result = if run.abort.load(Ordering::Relaxed) {
            Err(CellError::new(
                i,
                *cell,
                cell.label(spec.ablation),
                FailureCause::Skipped,
            ))
        } else {
            fault::arm(run.fault.as_ref(), i);
            let caught = catch_unwind(AssertUnwindSafe(|| run_cell(spec, caches, i, cell)));
            fault::disarm();
            match caught {
                // The inner error is boxed only to keep the hot
                // Result small; unbox for the public slot type.
                Ok(result) => result.map_err(|boxed| *boxed),
                Err(payload) => Err(CellError::new(
                    i,
                    *cell,
                    cell.label(spec.ablation),
                    FailureCause::Panic {
                        stage: fault::current_stage(),
                        payload: panic_message(payload),
                    },
                )),
            }
        };
        if result.is_err() && run.policy == FailurePolicy::FailFast {
            run.abort.store(true, Ordering::Relaxed);
        }
        slots[i]
            .set(result)
            .expect("each cell index is claimed exactly once");
    }
}

/// Renders a caught panic payload; `panic!` carries `&str` or `String`
/// in practice, anything else gets a placeholder.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluates one cell: resolve the fleet through the cache, build the
/// simulator with the scaled server model, instantiate the policy and
/// predictor, run the week with this cell's plan group and forecast
/// locks attached. Pure in (spec, cell) — every cache initializer is a
/// deterministic function of the spec, so the determinism guarantee
/// still rests here whichever worker wins a lock race. (A panicking
/// initializer leaves its `OnceLock` unset, so a faulted cell cannot
/// corrupt a shared cache either — siblings recompute the same value.)
///
/// Fallible construction — the backend and the simulator builder —
/// reports a structured [`CellError`] attributed to its stage instead
/// of panicking; everything past setup is caught by the
/// `catch_unwind` wrapper in [`drain_cells`]. The error is boxed so
/// the per-cell `Result` stays pointer-sized on the failure side.
fn run_cell(
    spec: &ExperimentSpec,
    caches: &SweepCaches,
    index: usize,
    cell: &CellSpec,
) -> Result<CellOutcome, Box<CellError>> {
    let started = Instant::now();
    let fail = |stage: CellStage, error: Error| {
        Box::new(CellError::new(
            index,
            *cell,
            cell.label(spec.ablation),
            FailureCause::Error { stage, error },
        ))
    };
    fault::enter(CellStage::Fleet);
    if let Some(error) = fault::injected_error(CellStage::Fleet, index) {
        return Err(fail(CellStage::Fleet, error));
    }
    let fleet = caches.fleet.get(&cell.fleet);
    fault::enter(CellStage::Setup);
    if let Some(error) = fault::injected_error(CellStage::Setup, index) {
        return Err(fail(CellStage::Setup, error));
    }
    let backend = cell
        .backend
        .try_build(cell.server)
        .map_err(|e| fail(CellStage::Setup, e))?;
    let mut builder =
        WeekSim::builder(&fleet, cell.server_model(), spec.max_servers).backend(backend);
    if let Some(mhz) = cell.qos_floor_mhz {
        builder = builder.qos_floor(Frequency::from_mhz(mhz));
    }
    let sim = builder.build().map_err(|e| fail(CellStage::Setup, e))?;
    let policy = cell.policy.build(spec.ablation);
    let per_day = fleet.grid().samples_per_day();
    let run_caches = RunCaches {
        plans: caches.plans.as_ref().map(|p| p.group(index)),
        forecasts: caches.forecasts.as_ref().map(|f| f.days(&cell.fleet)),
    };
    let (outcome, cache) = match spec.predictor {
        PredictorSpec::Oracle => sim.run_counted(policy.as_ref(), None, &run_caches),
        PredictorSpec::Arima => sim.run_counted(
            policy.as_ref(),
            Some(&ArimaPredictor::daily(per_day)),
            &run_caches,
        ),
        PredictorSpec::SeasonalNaive => sim.run_counted(
            policy.as_ref(),
            Some(&SeasonalNaive::new(per_day)),
            &run_caches,
        ),
    };
    Ok(CellOutcome {
        cell: *cell,
        outcome,
        cache,
        wall: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::default_sweep();
        spec.fleets[0].num_vms = 12;
        spec.max_servers = 100;
        spec.servers = vec![ServerSpec::Ntc];
        spec
    }

    #[test]
    fn cells_expand_in_spec_order() {
        let spec = ExperimentSpec::default_sweep();
        let cells = spec.cells();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].policy, PolicySpec::Epact);
        assert_eq!(cells[0].server, ServerSpec::Ntc);
        assert_eq!(cells[3].server, ServerSpec::Conventional);
    }

    #[test]
    fn fleet_and_scale_axes_multiply_cells() {
        let spec = tiny_spec()
            .with_seeds(&[1, 2, 3])
            .tap(|s| s.static_power_scales = vec![0.5, 1.0]);
        let cells = spec.cells();
        // 3 fleets x 2 scales x 1 server x 1 floor x 3 policies
        assert_eq!(cells.len(), 18);
        // fleets outermost: first 6 cells share seed 1
        assert!(cells[..6].iter().all(|c| c.fleet.seed == 1));
        assert_eq!(cells[0].static_power_scale, 0.5);
        assert_eq!(cells[3].static_power_scale, 1.0);
        assert_eq!(cells[6].fleet.seed, 2);
    }

    /// Small helper so the fixture above stays an expression.
    trait Tap: Sized {
        fn tap(self, f: impl FnOnce(&mut Self)) -> Self;
    }
    impl Tap for ExperimentSpec {
        fn tap(mut self, f: impl FnOnce(&mut Self)) -> Self {
            f(&mut self);
            self
        }
    }

    #[test]
    fn empty_policy_set_is_rejected() {
        let mut spec = tiny_spec();
        spec.policies.clear();
        let err = Engine::with_threads(2).run(&spec).unwrap_err();
        assert!(matches!(err, Error::EmptySpec));
    }

    #[test]
    fn empty_fleet_set_is_rejected() {
        let mut spec = tiny_spec();
        spec.fleets.clear();
        let err = Engine::with_threads(2).run(&spec).unwrap_err();
        assert!(matches!(err, Error::EmptySpec));
    }

    #[test]
    fn empty_fleet_is_rejected() {
        let mut spec = tiny_spec();
        spec.fleets[0].num_vms = 0;
        let err = Engine::with_threads(2).run(&spec).unwrap_err();
        assert!(matches!(err, Error::NoVms));
    }

    #[test]
    fn invalid_and_empty_spec_reports_the_validation_error() {
        // Pins the ordering fix: validation runs before the emptiness
        // check, so a spec that is invalid AND expands to no cells
        // names its real root cause instead of EmptySpec.
        let mut spec = tiny_spec();
        spec.policies.clear();
        spec.fleets[0].num_vms = 0;
        let err = Engine::with_threads(2).run(&spec).unwrap_err();
        assert!(matches!(err, Error::NoVms), "got {err:?}");
    }

    #[test]
    fn faulted_cell_becomes_a_failure_not_a_crash() {
        let spec = tiny_spec();
        let sweep = Engine::with_threads(2)
            .inject_fault(FaultSpec::panic_at(1, CellStage::Account))
            .run(&spec)
            .unwrap();
        assert_eq!(sweep.total_cells(), 3);
        assert!(!sweep.is_complete());
        assert_eq!(sweep.succeeded().len(), 2);
        let failure = &sweep.failed()[0];
        assert_eq!(failure.index, 1);
        assert_eq!(failure.label, "COAT/NTC");
        assert_eq!(failure.stage(), Some(CellStage::Account));
        assert_eq!(failure.kind_label(), "panic");
        assert!(failure.message().contains("injected fault"));
    }

    #[test]
    fn error_fault_reports_the_setup_stage() {
        let spec = tiny_spec();
        let sweep = Engine::with_threads(1)
            .inject_fault(FaultSpec::error_at(0))
            .run(&spec)
            .unwrap();
        assert_eq!(sweep.succeeded().len(), 2);
        let failure = &sweep.failed()[0];
        assert_eq!(failure.index, 0);
        assert_eq!(failure.stage(), Some(CellStage::Setup));
        assert_eq!(failure.kind_label(), "error");
        assert!(matches!(
            failure.cause,
            crate::fault::FailureCause::Error {
                error: Error::FaultInjected { cell: 0 },
                ..
            }
        ));
    }

    #[test]
    fn fail_fast_skips_unstarted_cells() {
        let mut spec = tiny_spec();
        spec.failure_policy = FailurePolicy::FailFast;
        // One worker makes the claim order deterministic: cell 0
        // completes, cell 1 faults, cell 2 is skipped.
        let sweep = Engine::with_threads(1)
            .inject_fault(FaultSpec::panic_at(1, CellStage::Plan))
            .run(&spec)
            .unwrap();
        assert_eq!(sweep.succeeded().len(), 1);
        assert_eq!(sweep.failed().len(), 2);
        assert_eq!(sweep.failed()[0].stage(), Some(CellStage::Plan));
        assert_eq!(sweep.failed()[1].stage(), None);
        assert_eq!(sweep.failed()[1].kind_label(), "skipped");
    }

    #[test]
    fn short_horizon_is_rejected() {
        let mut spec = tiny_spec();
        spec.fleets[0].weeks = 1;
        let err = Engine::with_threads(2).run(&spec).unwrap_err();
        assert!(matches!(err, Error::HorizonTooShort { .. }));
    }

    #[test]
    fn bad_static_power_scale_is_rejected() {
        for bad in [-0.5, f64::NAN, f64::INFINITY] {
            let mut spec = tiny_spec();
            spec.static_power_scales = vec![1.0, bad];
            let err = Engine::with_threads(2).run(&spec).unwrap_err();
            assert!(
                matches!(err, Error::BadStaticPowerScale { .. }),
                "{bad} must be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn with_threads_zero_clamps_to_one() {
        // Regression: a zero-thread pool must not be constructible —
        // it would spawn no workers and hang/return nothing.
        let engine = Engine::with_threads(0);
        assert_eq!(engine.threads(), 1);
        let sweep = engine.run(&tiny_spec()).unwrap();
        assert_eq!(sweep.threads, 1);
        assert_eq!(sweep.cells.len(), 3);
    }

    #[test]
    fn sweep_reports_cells_in_spec_order() {
        let spec = tiny_spec();
        let sweep = Engine::with_threads(4).run(&spec).unwrap();
        assert_eq!(sweep.cells.len(), 3);
        let names: Vec<&str> = sweep
            .cells
            .iter()
            .map(|c| c.outcome.policy.as_str())
            .collect();
        assert_eq!(names, ["EPACT", "COAT", "COAT-OPT"]);
    }

    #[test]
    fn ablation_flag_reaches_epact() {
        let mut spec = tiny_spec();
        spec.policies = vec![PolicySpec::Epact];
        spec.ablation.correlation_only = true;
        let sweep = Engine::with_threads(1).run(&spec).unwrap();
        assert_eq!(sweep.cells[0].outcome.policy, "EPACT-corrOnly");
    }

    #[test]
    fn qos_floor_axis_multiplies_cells() {
        let mut spec = tiny_spec();
        spec.qos_floors_mhz = vec![None, Some(1800.0)];
        let sweep = Engine::with_threads(4).run(&spec).unwrap();
        assert_eq!(sweep.cells.len(), 6);
        // The floored arms can only cost energy.
        for (plain, floored) in sweep.cells[..3].iter().zip(&sweep.cells[3..]) {
            assert_eq!(plain.cell.policy, floored.cell.policy);
            assert!(floored.outcome.total_energy() >= plain.outcome.total_energy());
        }
    }

    #[test]
    fn backend_axis_multiplies_cells_and_dedups_plans() {
        let mut spec = tiny_spec();
        spec.policies = vec![PolicySpec::Epact];
        spec.backends = vec![BackendSpec::Analytic, BackendSpec::Archsim];
        let sweep = Engine::with_threads(2).run(&spec).unwrap();
        assert_eq!(sweep.cells.len(), 2);
        assert_eq!(sweep.cells[0].cell.backend, BackendSpec::Analytic);
        assert_eq!(sweep.cells[1].cell.backend, BackendSpec::Archsim);
        // The upstream stages are backend-independent: same plans,
        // same migrations and server counts; only pricing differs.
        let (a, b) = (&sweep.cells[0].outcome, &sweep.cells[1].outcome);
        assert_eq!(a.total_migrations(), b.total_migrations());
        assert_eq!(a.mean_active_servers(), b.mean_active_servers());
        let groups = sweep.seed_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].backend, BackendSpec::Analytic);
        assert_eq!(groups[1].backend, BackendSpec::Archsim);
        assert!(groups[1].label(spec.ablation).ends_with("/archsim"));
        assert!(!groups[0].label(spec.ablation).contains("analytic"));
        // Cross-backend plan dedup is sound (empty backend
        // fingerprints): EPACT's 168 slots are planned once and hit by
        // the sibling cell, whichever worker wins each race.
        let totals = sweep.cache_totals();
        assert_eq!(totals.plan_misses, 168);
        assert_eq!(totals.plan_hits, 168);
    }

    #[test]
    fn duplicate_fleets_share_one_generation() {
        // Two identical FleetSpecs dedup to one cache entry, and their
        // cells produce identical outcomes.
        let mut spec = tiny_spec();
        spec.fleets = vec![spec.fleets[0], spec.fleets[0]];
        spec.policies = vec![PolicySpec::Epact];
        let sweep = Engine::with_threads(2).run(&spec).unwrap();
        assert_eq!(sweep.cells.len(), 2);
        assert_eq!(sweep.cells[0].outcome, sweep.cells[1].outcome);
        let groups = sweep.seed_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].runs, 2);
        assert_eq!(groups[0].energy_mj.std, 0.0);
    }

    #[test]
    fn seed_groups_average_over_the_fleet_axis() {
        let mut spec = tiny_spec().with_seeds(&[5, 6]);
        spec.policies = vec![PolicySpec::Epact, PolicySpec::Coat];
        let sweep = Engine::with_threads(4).run(&spec).unwrap();
        assert_eq!(sweep.cells.len(), 4);
        let groups = sweep.seed_groups();
        assert_eq!(groups.len(), 2);
        for (g, policy) in groups.iter().zip([PolicySpec::Epact, PolicySpec::Coat]) {
            assert_eq!(g.policy, policy);
            assert_eq!(g.runs, 2);
            let per_seed: Vec<f64> = sweep
                .cells
                .iter()
                .filter(|c| c.cell.policy == policy)
                .map(|c| c.outcome.total_energy().as_megajoules())
                .collect();
            let mean = (per_seed[0] + per_seed[1]) / 2.0;
            assert!((g.energy_mj.mean - mean).abs() < 1e-9);
            assert!(g.energy_mj.std >= 0.0);
        }
    }

    #[test]
    fn static_power_scale_raises_energy() {
        let mut spec = tiny_spec();
        spec.policies = vec![PolicySpec::Epact];
        spec.static_power_scales = vec![0.5, 2.0];
        let sweep = Engine::with_threads(2).run(&spec).unwrap();
        assert_eq!(sweep.cells.len(), 2);
        assert!(
            sweep.cells[0].outcome.total_energy() < sweep.cells[1].outcome.total_energy(),
            "more static power must cost more energy"
        );
    }
}
