//! The parallel experiment engine.
//!
//! Every figure and table of the paper is a sweep over independent
//! (policy, configuration) cells: run a [`WeekSim`] week per cell,
//! tabulate. [`ExperimentSpec`] declares such a sweep once — policy
//! set, server models, predictor, fleet, QoS floors and ablation flags
//! — and [`Engine`] fans the cells across a scoped worker pool sized
//! from [`std::thread::available_parallelism`], collecting
//! [`WeekOutcome`]s deterministically in spec order: every cell is a
//! pure function of the spec, so the schedule cannot change the
//! results, only the wall-clock.
//!
//! # Examples
//!
//! ```
//! use ntc_datacenter::{Engine, ExperimentSpec};
//!
//! let mut spec = ExperimentSpec::default_sweep();
//! spec.fleet.num_vms = 16; // keep the doctest fast
//! spec.max_servers = 200;
//! let sweep = Engine::new().run(&spec).unwrap();
//! assert_eq!(sweep.cells.len(), 6); // 3 policies x 2 server models
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ntc_core::{AllocationPolicy, Coat, CoatOpt, Epact, Error, LoadBalance};
use ntc_forecast::{ArimaPredictor, SeasonalNaive};
use ntc_power::ServerPowerModel;
use ntc_units::Frequency;
use ntc_workload::{ClusterTraceGenerator, Fleet};
use serde::{Deserialize, Serialize};

use crate::{WeekOutcome, WeekSim};

/// The synthetic fleet a sweep runs over (see
/// [`ClusterTraceGenerator::google_like`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Number of VMs.
    pub num_vms: usize,
    /// Generator seed; the whole sweep shares one fleet.
    pub seed: u64,
    /// Trace horizon in weeks (minimum 2: training + evaluation).
    pub weeks: usize,
}

impl FleetSpec {
    /// Materializes the fleet.
    pub fn generate(&self) -> Fleet {
        ClusterTraceGenerator::google_like(self.num_vms, self.seed)
            .with_weeks(self.weeks)
            .generate()
    }
}

/// An allocation policy in the sweep's policy set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// The paper's contribution (§V-B).
    Epact,
    /// Consolidation at maximum capacity (Kim et al., DATE'13).
    Coat,
    /// Consolidation at the optimal fixed cap.
    CoatOpt,
    /// Load balancing over all servers (the anti-consolidation extreme).
    LoadBalance,
}

impl PolicySpec {
    /// Instantiates the policy, honouring the spec's ablation flags.
    pub fn build(&self, ablation: AblationFlags) -> Box<dyn AllocationPolicy> {
        match self {
            PolicySpec::Epact if ablation.correlation_only => Box::new(Epact::correlation_only()),
            PolicySpec::Epact => Box::new(Epact::new()),
            PolicySpec::Coat => Box::new(Coat::new()),
            PolicySpec::CoatOpt => Box::new(CoatOpt::new()),
            PolicySpec::LoadBalance => Box::new(LoadBalance::new()),
        }
    }
}

/// A server power model in the sweep's server set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerSpec {
    /// The NTC many-core server (Table 1).
    Ntc,
    /// The conventional Xeon E5-2620 reference.
    Conventional,
}

impl ServerSpec {
    /// Instantiates the power model.
    pub fn model(&self) -> ServerPowerModel {
        match self {
            ServerSpec::Ntc => ServerPowerModel::ntc(),
            ServerSpec::Conventional => ServerPowerModel::conventional_e5_2620(),
        }
    }

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            ServerSpec::Ntc => "NTC",
            ServerSpec::Conventional => "conv",
        }
    }
}

/// The forecast pipeline shared by every cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictorSpec {
    /// Perfect predictions (the actual traces) — isolates allocation
    /// quality from forecast quality.
    Oracle,
    /// The paper's pipeline: ARIMA retrained daily on all history.
    Arima,
    /// Same-time-yesterday baseline.
    SeasonalNaive,
}

/// Ablation switches applied across the sweep (DESIGN.md §7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AblationFlags {
    /// Drop the Eq. 2 distance term in EPACT's memory-dominated path,
    /// scoring servers by correlation alone.
    pub correlation_only: bool,
}

/// A declarative experiment sweep: the cross product of `policies`,
/// `servers` and `qos_floors_mhz` evaluated over one shared fleet.
///
/// This is the single serde-serializable entry point the CLI `sweep`
/// subcommand, the examples and the benches all share; see
/// [`spec_json`](crate::spec_json) for the on-disk form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Display name of the sweep.
    pub name: String,
    /// The shared synthetic fleet.
    pub fleet: FleetSpec,
    /// Policy set (one axis of the cell cross product).
    pub policies: Vec<PolicySpec>,
    /// Server-model set (second axis).
    pub servers: Vec<ServerSpec>,
    /// QoS frequency floors in MHz (third axis); `None` = pure
    /// demand-proportional DVFS. Use `vec![None]` for a single arm.
    pub qos_floors_mhz: Vec<Option<f64>>,
    /// Forecast pipeline shared by every cell.
    pub predictor: PredictorSpec,
    /// Physical servers available to every cell.
    pub max_servers: usize,
    /// Sweep-wide ablation switches.
    pub ablation: AblationFlags,
}

impl ExperimentSpec {
    /// The paper's headline comparison: EPACT vs COAT vs COAT-OPT on
    /// both server models, oracle predictions, no QoS floor — six
    /// cells.
    pub fn default_sweep() -> Self {
        Self {
            name: "policy-comparison".to_string(),
            fleet: FleetSpec {
                num_vms: 48,
                seed: 2024,
                weeks: 2,
            },
            policies: vec![PolicySpec::Epact, PolicySpec::Coat, PolicySpec::CoatOpt],
            servers: vec![ServerSpec::Ntc, ServerSpec::Conventional],
            qos_floors_mhz: vec![None],
            predictor: PredictorSpec::Oracle,
            max_servers: 600,
            ablation: AblationFlags::default(),
        }
    }

    /// Expands the cross product into concrete cells, in the
    /// deterministic order results are reported: servers outermost,
    /// then QoS floors, then policies.
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::new();
        for &server in &self.servers {
            for &floor in &self.qos_floors_mhz {
                for &policy in &self.policies {
                    out.push(CellSpec {
                        policy,
                        server,
                        qos_floor_mhz: floor,
                    });
                }
            }
        }
        out
    }
}

/// One (policy, configuration) cell of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// The allocation policy under evaluation.
    pub policy: PolicySpec,
    /// The server power model.
    pub server: ServerSpec,
    /// Optional QoS frequency floor in MHz.
    pub qos_floor_mhz: Option<f64>,
}

impl CellSpec {
    /// Human-readable cell label, e.g. `EPACT/NTC` or
    /// `COAT/conv@1800MHz`.
    pub fn label(&self, ablation: AblationFlags) -> String {
        let policy = self.policy.build(ablation);
        match self.qos_floor_mhz {
            Some(mhz) => format!("{}/{}@{:.0}MHz", policy.name(), self.server.label(), mhz),
            None => format!("{}/{}", policy.name(), self.server.label()),
        }
    }
}

/// One evaluated cell: its spec, the week outcome and the cell's own
/// wall-clock.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell that was run.
    pub cell: CellSpec,
    /// The evaluated week.
    pub outcome: WeekOutcome,
    /// Wall-clock time this cell took on its worker.
    pub wall: Duration,
}

/// A completed sweep, cells in spec order.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// One outcome per cell, in [`ExperimentSpec::cells`] order.
    pub cells: Vec<CellOutcome>,
    /// End-to-end wall-clock including fleet generation.
    pub wall: Duration,
    /// Worker threads the engine used.
    pub threads: usize,
}

impl SweepResult {
    /// The week outcomes alone, in spec order — the payload determinism
    /// checks compare (per-cell wall-clock is scheduling noise).
    pub fn outcomes(&self) -> Vec<&WeekOutcome> {
        self.cells.iter().map(|c| &c.outcome).collect()
    }
}

/// Parallel experiment runner over [`ExperimentSpec`] cells.
///
/// Cells are pulled off a shared atomic counter by `threads` scoped
/// workers and written into their spec-order slots, so results are
/// bit-identical however the cells are scheduled (including
/// [`Engine::run_sequential`]).
#[derive(Debug, Clone)]
pub struct Engine {
    threads: usize,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine sized from [`std::thread::available_parallelism`]
    /// (1 if that is unavailable).
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self { threads }
    }

    /// An engine with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The worker-pool size.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every cell of `spec` across the worker pool, returning
    /// outcomes in spec order.
    ///
    /// # Errors
    ///
    /// Returns an error if the spec expands to no cells, the fleet is
    /// empty, `max_servers == 0`, or the fleet horizon is shorter than
    /// two weeks.
    pub fn run(&self, spec: &ExperimentSpec) -> Result<SweepResult, Error> {
        self.run_with_workers(spec, self.threads)
    }

    /// Runs every cell on the calling thread — same code path, one
    /// worker; the reference the parallel run must match bit for bit.
    ///
    /// # Errors
    ///
    /// As for [`Engine::run`].
    pub fn run_sequential(&self, spec: &ExperimentSpec) -> Result<SweepResult, Error> {
        self.run_with_workers(spec, 1)
    }

    fn run_with_workers(
        &self,
        spec: &ExperimentSpec,
        threads: usize,
    ) -> Result<SweepResult, Error> {
        let started = Instant::now();
        let cells = spec.cells();
        if cells.is_empty() {
            return Err(Error::EmptySpec);
        }
        if spec.fleet.num_vms == 0 {
            return Err(Error::NoVms);
        }
        let fleet = spec.fleet.generate();
        // Validate the shared configuration once, before fanning out:
        // every cell shares the fleet horizon and server budget.
        for &server in &spec.servers {
            WeekSim::try_new(&fleet, server.model(), spec.max_servers)?;
        }

        let workers = threads.min(cells.len()).max(1);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CellOutcome>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();

        if workers == 1 {
            drain_cells(&next, &cells, &slots, spec, &fleet);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| drain_cells(&next, &cells, &slots, spec, &fleet));
                }
            });
        }

        let cells = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker panics propagate out of the scope")
                    .expect("every index below cells.len() was claimed")
            })
            .collect();
        Ok(SweepResult {
            cells,
            wall: started.elapsed(),
            threads: workers,
        })
    }
}

/// Worker body: claim cell indices off the shared counter until none
/// remain, writing each outcome into its spec-order slot.
fn drain_cells(
    next: &AtomicUsize,
    cells: &[CellSpec],
    slots: &[Mutex<Option<CellOutcome>>],
    spec: &ExperimentSpec,
    fleet: &Fleet,
) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(cell) = cells.get(i) else { break };
        let outcome = run_cell(spec, fleet, cell);
        *slots[i].lock().expect("no panics while holding the slot") = Some(outcome);
    }
}

/// Evaluates one cell: build the simulator, instantiate the policy and
/// predictor, run the week. Pure in (spec, fleet, cell) — the
/// determinism guarantee rests here.
fn run_cell(spec: &ExperimentSpec, fleet: &Fleet, cell: &CellSpec) -> CellOutcome {
    let started = Instant::now();
    let mut builder = WeekSim::builder(fleet, cell.server.model(), spec.max_servers);
    if let Some(mhz) = cell.qos_floor_mhz {
        builder = builder.qos_floor(Frequency::from_mhz(mhz));
    }
    let sim = builder
        .build()
        .expect("shared fleet and budget validated before fan-out");
    let policy = cell.policy.build(spec.ablation);
    let per_day = fleet.grid().samples_per_day();
    let outcome = match spec.predictor {
        PredictorSpec::Oracle => sim.run_with_oracle(policy.as_ref()),
        PredictorSpec::Arima => sim.run(policy.as_ref(), &ArimaPredictor::daily(per_day)),
        PredictorSpec::SeasonalNaive => sim.run(policy.as_ref(), &SeasonalNaive::new(per_day)),
    };
    CellOutcome {
        cell: *cell,
        outcome,
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::default_sweep();
        spec.fleet.num_vms = 12;
        spec.max_servers = 100;
        spec.servers = vec![ServerSpec::Ntc];
        spec
    }

    #[test]
    fn cells_expand_in_spec_order() {
        let spec = ExperimentSpec::default_sweep();
        let cells = spec.cells();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].policy, PolicySpec::Epact);
        assert_eq!(cells[0].server, ServerSpec::Ntc);
        assert_eq!(cells[3].server, ServerSpec::Conventional);
    }

    #[test]
    fn empty_policy_set_is_rejected() {
        let mut spec = tiny_spec();
        spec.policies.clear();
        let err = Engine::with_threads(2).run(&spec).unwrap_err();
        assert!(matches!(err, Error::EmptySpec));
    }

    #[test]
    fn empty_fleet_is_rejected() {
        let mut spec = tiny_spec();
        spec.fleet.num_vms = 0;
        let err = Engine::with_threads(2).run(&spec).unwrap_err();
        assert!(matches!(err, Error::NoVms));
    }

    #[test]
    fn short_horizon_is_rejected() {
        let mut spec = tiny_spec();
        spec.fleet.weeks = 1;
        let err = Engine::with_threads(2).run(&spec).unwrap_err();
        assert!(matches!(err, Error::HorizonTooShort { .. }));
    }

    #[test]
    fn sweep_reports_cells_in_spec_order() {
        let spec = tiny_spec();
        let sweep = Engine::with_threads(4).run(&spec).unwrap();
        assert_eq!(sweep.cells.len(), 3);
        let names: Vec<&str> = sweep
            .cells
            .iter()
            .map(|c| c.outcome.policy.as_str())
            .collect();
        assert_eq!(names, ["EPACT", "COAT", "COAT-OPT"]);
    }

    #[test]
    fn ablation_flag_reaches_epact() {
        let mut spec = tiny_spec();
        spec.policies = vec![PolicySpec::Epact];
        spec.ablation.correlation_only = true;
        let sweep = Engine::with_threads(1).run(&spec).unwrap();
        assert_eq!(sweep.cells[0].outcome.policy, "EPACT-corrOnly");
    }

    #[test]
    fn qos_floor_axis_multiplies_cells() {
        let mut spec = tiny_spec();
        spec.qos_floors_mhz = vec![None, Some(1800.0)];
        let sweep = Engine::with_threads(4).run(&spec).unwrap();
        assert_eq!(sweep.cells.len(), 6);
        // The floored arms can only cost energy.
        for (plain, floored) in sweep.cells[..3].iter().zip(&sweep.cells[3..]) {
            assert_eq!(plain.cell.policy, floored.cell.policy);
            assert!(floored.outcome.total_energy() >= plain.outcome.total_energy());
        }
    }
}
