//! Experiment runners — one per table/figure of the paper's evaluation.
//!
//! Each function returns the structured data behind the corresponding
//! table or figure (and the benches/examples print them in the paper's
//! layout). See EXPERIMENTS.md at the workspace root for the
//! paper-vs-measured record.

use ntc_archsim::{efficiency, Kernel, Platform};
use ntc_core::{Coat, CoatOpt, Epact};
use ntc_forecast::ArimaPredictor;
use ntc_power::{DataCenterPowerModel, ServerPowerModel};
use ntc_units::{Frequency, Percent, Power};
use ntc_workload::Fleet;

use crate::backend::{ArchsimBackend, BackendSpec};
use crate::engine::{
    AblationFlags, Engine, ExperimentSpec, FleetSpec, PolicySpec, PredictorSpec, ServerSpec,
};
use crate::fault::FailurePolicy;
use crate::{WeekOutcome, WeekSim};

/// One row of Table I: a workload class's execution times across the
/// three platforms, plus the QoS limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Workload class name.
    pub workload: String,
    /// Simulated execution time on the Intel x86 baseline at 2.66 GHz.
    pub x86_secs: f64,
    /// The 2× degradation QoS limit.
    pub qos_limit_secs: f64,
    /// Simulated execution time on the Cavium ThunderX at 2 GHz.
    pub cavium_secs: f64,
    /// Simulated execution time on the proposed NTC server at 2 GHz.
    pub ntc_secs: f64,
}

/// Regenerates Table I by simulating the three workload classes on all
/// three platforms (each through its [`ArchsimBackend`]).
pub fn table1() -> Vec<Table1Row> {
    let x86 = ArchsimBackend::x86_baseline();
    let cavium = ArchsimBackend::new(Platform::thunderx());
    let ntc = ArchsimBackend::ntc();
    let two = Frequency::from_ghz(2.0);
    Kernel::paper_classes()
        .into_iter()
        .map(|k| {
            let x86_secs = x86
                .exec_time(&k, Platform::xeon_x5650().nominal_freq)
                .as_secs();
            Table1Row {
                workload: k.name().to_string(),
                x86_secs,
                qos_limit_secs: 2.0 * x86_secs,
                cavium_secs: cavium.exec_time(&k, two).as_secs(),
                ntc_secs: ntc.exec_time(&k, two).as_secs(),
            }
        })
        .collect()
}

/// One Fig. 1 curve: worst-case data-center power (kW) per frequency,
/// `None` where the demand is infeasible at that frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Curve {
    /// Data-center utilization this curve is drawn for (percent).
    pub utilization: f64,
    /// `(frequency, power)` points.
    pub points: Vec<(Frequency, Option<Power>)>,
}

/// Regenerates one panel of Fig. 1 for `server` (NTC for panel (a),
/// conventional for panel (b)) with `num_servers` machines.
pub fn fig1(server: ServerPowerModel, num_servers: usize) -> Vec<Fig1Curve> {
    let dc = DataCenterPowerModel::new(server, num_servers);
    let freqs = dc.server().dvfs_levels();
    (1..=9)
        .map(|i| {
            let u = Percent::new(10.0 * i as f64);
            Fig1Curve {
                utilization: u.value(),
                points: freqs
                    .iter()
                    .map(|&f| (f, dc.worst_case_power(u, f)))
                    .collect(),
            }
        })
        .collect()
}

/// One Fig. 2 series: execution time normalized to the QoS limit per
/// frequency for one workload class (values ≤ 1.0 meet QoS).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Series {
    /// Workload class name.
    pub workload: String,
    /// `(frequency, normalized time)` points.
    pub points: Vec<(Frequency, f64)>,
}

/// The frequency grid of Figs. 2 and 3 (0.1 – 2.5 GHz).
pub fn fig2_frequencies() -> Vec<Frequency> {
    [0.1, 0.2, 0.5, 1.0, 1.2, 1.5, 1.8, 2.0, 2.5]
        .iter()
        .map(|&g| Frequency::from_ghz(g))
        .collect()
}

/// Regenerates Fig. 2 on the NTC server against the paper's published
/// x86 baseline.
pub fn fig2() -> Vec<Fig2Series> {
    let backend = ArchsimBackend::ntc();
    Kernel::paper_classes()
        .into_iter()
        .map(|k| Fig2Series {
            workload: k.name().to_string(),
            points: fig2_frequencies()
                .into_iter()
                .map(|f| (f, backend.normalized_time(&k, f)))
                .collect(),
        })
        .collect()
}

/// One Fig. 3 series: BUIPS/W per frequency for one workload class.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Series {
    /// Workload class name.
    pub workload: String,
    /// `(frequency, BUIPS/W)` points.
    pub points: Vec<(Frequency, f64)>,
}

/// Regenerates Fig. 3: NTC-server efficiency across DVFS levels.
pub fn fig3() -> Vec<Fig3Series> {
    let backend = ArchsimBackend::ntc();
    let model = ServerPowerModel::ntc();
    Kernel::paper_classes()
        .into_iter()
        .map(|k| Fig3Series {
            workload: k.name().to_string(),
            points: efficiency::efficiency_curve(backend.sim(), &model, &k, &fig2_frequencies()),
        })
        .collect()
}

/// Regenerates Figs. 4, 5 and 6 in one pass: the week-long comparison
/// of EPACT, COAT and COAT-OPT with ARIMA predictions.
///
/// Returns the outcomes in that order.
pub fn fig4_5_6(fleet: &Fleet, max_servers: usize) -> [WeekOutcome; 3] {
    let sim = WeekSim::new(fleet, ServerPowerModel::ntc(), max_servers);
    let predictor = ArimaPredictor::daily(fleet.grid().samples_per_day());
    [
        sim.run(&Epact::new(), &predictor),
        sim.run(&Coat::new(), &predictor),
        sim.run(&CoatOpt::new(), &predictor),
    ]
}

/// The §V-A claim quantified: EPACT against *both* extremes —
/// consolidation (COAT) and load balancing — plus COAT-OPT, with oracle
/// predictions. Returns outcomes in the order
/// `[EPACT, COAT, COAT-OPT, LOAD-BAL]`.
pub fn policy_comparison(fleet: &Fleet, max_servers: usize) -> [WeekOutcome; 4] {
    let sim = WeekSim::new(fleet, ServerPowerModel::ntc(), max_servers);
    [
        sim.run_with_oracle(&Epact::new()),
        sim.run_with_oracle(&Coat::new()),
        sim.run_with_oracle(&CoatOpt::new()),
        sim.run_with_oracle(&ntc_core::LoadBalance::new()),
    ]
}

/// One Fig. 7 point: totals under a given static (motherboard) power.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Point {
    /// The swept static power.
    pub static_power: Power,
    /// Total EPACT energy over the horizon.
    pub epact_energy: ntc_units::Energy,
    /// Total COAT energy over the horizon.
    pub coat_energy: ntc_units::Energy,
    /// EPACT's saving vs COAT, percent.
    pub saving_pct: f64,
}

/// Regenerates Fig. 7: EPACT-vs-COAT saving as the per-server static
/// power sweeps from efficient (5 W) to power-hungry (45 W). Uses
/// oracle predictions to isolate the static-power effect.
///
/// The sweep is one [`ExperimentSpec`] with `static_watts` expressed on
/// the engine's static-power-scale axis (relative to the NTC server's
/// baseline motherboard power), run through [`Engine::run`] — no
/// private loop.
///
/// # Panics
///
/// Panics if `static_watts` is empty or contains a negative or
/// non-finite value, or if the fleet is empty or shorter than two
/// weeks.
pub fn fig7(fleet: FleetSpec, max_servers: usize, static_watts: &[f64]) -> Vec<Fig7Point> {
    let baseline = ServerPowerModel::ntc().uncore().motherboard().as_watts();
    let spec = ExperimentSpec {
        name: "fig7-static-power".to_string(),
        fleets: vec![fleet],
        static_power_scales: static_watts.iter().map(|&w| w / baseline).collect(),
        servers: vec![ServerSpec::Ntc],
        qos_floors_mhz: vec![None],
        backends: vec![BackendSpec::Analytic],
        policies: vec![PolicySpec::Epact, PolicySpec::Coat],
        predictor: PredictorSpec::Oracle,
        max_servers,
        ablation: AblationFlags::default(),
        failure_policy: FailurePolicy::default(),
    };
    let sweep = Engine::new().run(&spec).expect("fig7 spec must be valid");
    // Cells in spec order: scales outermost, [EPACT, COAT] per scale.
    sweep
        .cells
        .chunks_exact(2)
        .zip(static_watts)
        .map(|(pair, &w)| {
            let epact = &pair[0].outcome;
            let coat = &pair[1].outcome;
            Fig7Point {
                static_power: Power::from_watts(w),
                epact_energy: epact.total_energy(),
                coat_energy: coat.total_energy(),
                saving_pct: epact.energy_saving_vs(coat) * 100.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_workload::ClusterTraceGenerator;

    #[test]
    fn table1_reproduces_paper_ordering() {
        let rows = table1();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // NTC beats Cavium on every class (paper: 1.25-1.76x)
            assert!(
                r.ntc_secs < r.cavium_secs,
                "{}: NTC {:.3}s vs Cavium {:.3}s",
                r.workload,
                r.ntc_secs,
                r.cavium_secs
            );
            // and meets the 2x QoS limit at 2 GHz
            assert!(
                r.ntc_secs <= r.qos_limit_secs,
                "{}: NTC must meet QoS",
                r.workload
            );
            // x86 at its higher clock is fastest
            assert!(r.x86_secs < r.ntc_secs);
        }
        // the speedup over Cavium lands in the paper's 1.25-1.76 band
        for r in &rows {
            let speedup = r.cavium_secs / r.ntc_secs;
            assert!(
                (1.15..=2.1).contains(&speedup),
                "{}: speedup {speedup:.2} outside the paper's band",
                r.workload
            );
        }
    }

    #[test]
    fn fig1_ntc_panel_has_interior_minimum() {
        let curves = fig1(ServerPowerModel::ntc(), 80);
        // At 10% utilization the best frequency is neither the lowest
        // feasible nor Fmax.
        let low_util = &curves[0];
        let feasible: Vec<(Frequency, f64)> = low_util
            .points
            .iter()
            .filter_map(|&(f, p)| p.map(|p| (f, p.as_watts())))
            .collect();
        let (best_f, _) = feasible
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!(best_f > feasible.first().unwrap().0);
        assert!(best_f < feasible.last().unwrap().0);
    }

    #[test]
    fn fig1_conventional_panel_rewards_consolidation() {
        let curves = fig1(ServerPowerModel::conventional_e5_2620(), 80);
        let low_util = &curves[0];
        let feasible: Vec<(Frequency, f64)> = low_util
            .points
            .iter()
            .filter_map(|&(f, p)| p.map(|p| (f, p.as_watts())))
            .collect();
        let (best_f, _) = feasible
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(
            best_f,
            feasible.last().unwrap().0,
            "the conventional DC must consolidate at Fmax"
        );
    }

    #[test]
    fn fig2_low_mem_tolerates_lower_frequency() {
        let series = fig2();
        let min_ok = |s: &Fig2Series| {
            s.points
                .iter()
                .find(|&&(_, norm)| norm <= 1.0)
                .map(|&(f, _)| f)
                .expect("every class meets QoS somewhere")
        };
        let f_low = min_ok(&series[0]);
        let f_high = min_ok(&series[2]);
        assert!(f_low < f_high);
    }

    #[test]
    fn fig3_peaks_are_interior() {
        for s in fig3() {
            let (best_f, best_e) = s
                .points
                .iter()
                .copied()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            assert!(best_e > 0.0);
            assert!(
                best_f > Frequency::from_ghz(0.2) && best_f < Frequency::from_ghz(2.5),
                "{}: efficiency peak at the boundary ({best_f})",
                s.workload
            );
        }
    }

    #[test]
    fn neither_consolidating_nor_balancing_wins() {
        // §V-A: "neither VM consolidation nor load balancing are the
        // best options" on NTC hardware — EPACT beats both extremes.
        let fleet = ClusterTraceGenerator::google_like(48, 2024).generate();
        let [epact, coat, _coat_opt, loadbal] = policy_comparison(&fleet, 600);
        assert!(
            epact.total_energy() < coat.total_energy(),
            "EPACT must beat consolidation: {:.1} vs {:.1} MJ",
            epact.total_energy().as_megajoules(),
            coat.total_energy().as_megajoules()
        );
        assert!(
            epact.total_energy() < loadbal.total_energy(),
            "EPACT must beat load balancing: {:.1} vs {:.1} MJ",
            epact.total_energy().as_megajoules(),
            loadbal.total_energy().as_megajoules()
        );
        // and load balancing burns servers
        assert!(loadbal.mean_active_servers() > epact.mean_active_servers());
    }

    #[test]
    fn fig7_saving_decreases_with_static_power() {
        let fleet = FleetSpec {
            num_vms: 36,
            seed: 77,
            weeks: 2,
        };
        let pts = fig7(fleet, 600, &[5.0, 45.0]);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[0].saving_pct > pts[1].saving_pct,
            "saving must shrink as static power grows: {:.1}% -> {:.1}%",
            pts[0].saving_pct,
            pts[1].saving_pct
        );
        assert!(
            pts[0].saving_pct > 0.0,
            "EPACT must win at low static power"
        );
    }
}
