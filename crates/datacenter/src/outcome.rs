use ntc_units::{Energy, Frequency};
use serde::{Deserialize, Serialize};

/// A mean and sample standard deviation over a set of runs — the unit
/// of seed-averaged reporting (`mean ± std`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanStd {
    /// Arithmetic mean of the values.
    pub mean: f64,
    /// Sample standard deviation (`n - 1` denominator); `0.0` for
    /// fewer than two values.
    pub std: f64,
}

impl MeanStd {
    /// Collapses `values` to mean ± sample standard deviation.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                mean: 0.0,
                std: 0.0,
            };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let std = if values.len() < 2 {
            0.0
        } else {
            let ss = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>();
            (ss / (n - 1.0)).sqrt()
        };
        Self { mean, std }
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}±{:.1}", self.mean, self.std)
    }
}

/// What happened in one allocation slot (one hour, 12 samples).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotOutcome {
    /// Overutilized server-samples in the slot (the Fig. 4 metric): a
    /// server counts once per 5-minute sample in which its aggregated
    /// actual CPU demand exceeds the policy's online frequency ceiling
    /// or its memory demand exceeds physical memory.
    pub violations: usize,
    /// Servers hosting at least one VM.
    pub active_servers: usize,
    /// VMs migrated relative to the previous slot's plan (0 in the
    /// first slot and while a multi-slot plan stays in force).
    pub migrations: usize,
    /// Energy drawn by all active servers over the slot (Fig. 6).
    pub energy: Energy,
    /// The frequency the policy planned for the slot.
    pub planned_freq: Frequency,
    /// Mean frequency actually set by the online governor.
    pub mean_freq: Frequency,
}

/// A full evaluation-week run of one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeekOutcome {
    /// Policy display name.
    pub policy: String,
    /// One outcome per hourly slot (168 for a week).
    pub slots: Vec<SlotOutcome>,
}

impl WeekOutcome {
    /// Total energy over the horizon.
    pub fn total_energy(&self) -> Energy {
        self.slots.iter().map(|s| s.energy).sum()
    }

    /// Total violations over the horizon.
    pub fn total_violations(&self) -> usize {
        self.slots.iter().map(|s| s.violations).sum()
    }

    /// Total VM migrations over the horizon.
    pub fn total_migrations(&self) -> usize {
        self.slots.iter().map(|s| s.migrations).sum()
    }

    /// Mean number of active servers.
    pub fn mean_active_servers(&self) -> f64 {
        if self.slots.is_empty() {
            return 0.0;
        }
        self.slots
            .iter()
            .map(|s| s.active_servers as f64)
            .sum::<f64>()
            / self.slots.len() as f64
    }

    /// Energy saving of this run relative to `baseline`
    /// (`1 − E_self/E_baseline`), as a fraction.
    pub fn energy_saving_vs(&self, baseline: &WeekOutcome) -> f64 {
        let base = baseline.total_energy().as_joules();
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.total_energy().as_joules() / base
    }

    /// Per-slot energy series in megajoules (the Fig. 6 y-axis).
    pub fn energy_series_mj(&self) -> Vec<f64> {
        self.slots
            .iter()
            .map(|s| s.energy.as_megajoules())
            .collect()
    }

    /// Per-slot active-server series (the Fig. 5 y-axis).
    pub fn active_servers_series(&self) -> Vec<usize> {
        self.slots.iter().map(|s| s.active_servers).collect()
    }

    /// Per-slot violation series (the Fig. 4 y-axis).
    pub fn violations_series(&self) -> Vec<usize> {
        self.slots.iter().map(|s| s.violations).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(violations: usize, servers: usize, mj: f64) -> SlotOutcome {
        SlotOutcome {
            violations,
            active_servers: servers,
            migrations: 3,
            energy: Energy::from_megajoules(mj),
            planned_freq: Frequency::from_ghz(1.9),
            mean_freq: Frequency::from_ghz(1.7),
        }
    }

    #[test]
    fn aggregations() {
        let w = WeekOutcome {
            policy: "TEST".into(),
            slots: vec![slot(2, 10, 5.0), slot(0, 20, 15.0)],
        };
        assert_eq!(w.total_violations(), 2);
        assert_eq!(w.total_migrations(), 6);
        assert_eq!(w.mean_active_servers(), 15.0);
        assert_eq!(w.total_energy(), Energy::from_megajoules(20.0));
        assert_eq!(w.energy_series_mj(), vec![5.0, 15.0]);
    }

    #[test]
    fn mean_std_basics() {
        assert_eq!(
            MeanStd::of(&[]),
            MeanStd {
                mean: 0.0,
                std: 0.0
            }
        );
        assert_eq!(
            MeanStd::of(&[3.0]),
            MeanStd {
                mean: 3.0,
                std: 0.0
            }
        );
        let ms = MeanStd::of(&[2.0, 4.0, 6.0]);
        assert!((ms.mean - 4.0).abs() < 1e-12);
        assert!((ms.std - 2.0).abs() < 1e-12); // sample std of 2,4,6
        assert_eq!(ms.to_string(), "4.0±2.0");
    }

    #[test]
    fn savings() {
        let a = WeekOutcome {
            policy: "A".into(),
            slots: vec![slot(0, 1, 11.0)],
        };
        let b = WeekOutcome {
            policy: "B".into(),
            slots: vec![slot(0, 1, 20.0)],
        };
        assert!((a.energy_saving_vs(&b) - 0.45).abs() < 1e-12);
        assert_eq!(
            a.energy_saving_vs(&WeekOutcome {
                policy: "0".into(),
                slots: vec![]
            }),
            0.0
        );
    }
}
