use std::ops::Range;
use std::sync::Arc;

use ntc_core::{AllocationPolicy, DvfsGovernor, SlotContext, SlotPlan};
use ntc_forecast::Predictor;
use ntc_power::ServerPowerModel;
use ntc_trace::{DayCache, TimeSeries};
use ntc_units::Frequency;
use ntc_workload::{Fleet, MemClass};

use crate::backend::{mem_class_rank, AnalyticBackend, GovernedSlot, SlotBackend};
use crate::cache::{CacheStats, DayForecast, RunCaches};
use crate::fault::{self, CellStage};
use crate::{SlotOutcome, WeekOutcome};

/// Drives an allocation policy over the evaluation week through the
/// staged slot pipeline: **forecast** (day-ahead predictions) →
/// **plan** (the policy packs VMs and fixes the DVFS band) →
/// **govern** (the online governor settles one operating point per
/// active server-sample) → **account** (the configured
/// [`SlotBackend`] prices those points into energy and violations).
///
/// The fleet must carry at least two weeks of traces: everything before
/// the final week is treated as predictor training history (the paper
/// trains ARIMA on the previous week), and the final 168 slots are the
/// evaluated horizon.
#[derive(Debug)]
pub struct WeekSim<'a> {
    fleet: &'a Fleet,
    server: ServerPowerModel,
    max_servers: usize,
    eval_start: usize,
    qos_floor: Option<Frequency>,
    day_cache: bool,
    backend: Box<dyn SlotBackend>,
}

/// Lazily built day-level planning state of one run: the current day's
/// forecast and moment caches, refreshed only when a planning slot
/// crosses a day boundary (and skipped entirely on plan-cache hits).
struct DayState {
    forecast: Option<Arc<DayForecast>>,
    forecast_day: Option<usize>,
    moments: Option<(DayCache, DayCache)>,
    moments_day: Option<usize>,
}

impl DayState {
    fn new() -> Self {
        Self {
            forecast: None,
            forecast_day: None,
            moments: None,
            moments_day: None,
        }
    }

    /// The shared day-boundary refresh: rebuilds `cache` via `build`
    /// only when it does not already describe `day`. Both the forecast
    /// and the moment caches roll forward through this one helper, so
    /// the two stages cannot drift apart in their staleness rules.
    fn refresh<T>(
        cache: &mut Option<T>,
        cached_day: &mut Option<usize>,
        day: usize,
        build: impl FnOnce() -> T,
    ) -> bool {
        if *cached_day == Some(day) {
            return false;
        }
        *cache = Some(build());
        *cached_day = Some(day);
        true
    }
}

/// Builder for [`WeekSim`], collecting the optional knobs (currently the
/// QoS frequency floor) before validating the fleet horizon.
///
/// Obtained from [`WeekSim::builder`]; finish with
/// [`build`](WeekSimBuilder::build) (fallible) or
/// [`build_or_panic`](WeekSimBuilder::build_or_panic).
#[derive(Debug)]
pub struct WeekSimBuilder<'a> {
    fleet: &'a Fleet,
    server: ServerPowerModel,
    max_servers: usize,
    qos_floor: Option<Frequency>,
    day_cache: bool,
    backend: Option<Box<dyn SlotBackend>>,
}

impl<'a> WeekSimBuilder<'a> {
    /// Adds a QoS frequency floor: no occupied server ever runs below
    /// `floor`, regardless of demand.
    ///
    /// §VI-B3 of the paper establishes per-class minimum QoS-safe
    /// frequencies (1.2 GHz for low-mem, 1.8 GHz for mid/high-mem
    /// batches); a deployment that must honour the 2× degradation bound
    /// even for lightly loaded servers sets the hosted classes' maximum
    /// here. The default (no floor) models pure demand-proportional
    /// DVFS, where a VM's utilization share already reflects its batch
    /// progress.
    #[must_use]
    pub fn qos_floor(mut self, floor: Frequency) -> Self {
        self.qos_floor = Some(floor);
        self
    }

    /// Swaps the accounting backend of the pipeline's account stage
    /// (default: [`AnalyticBackend`]). The forecast, plan and govern
    /// stages are backend-independent — see the conservation contract
    /// in [`crate::backend`].
    #[must_use]
    pub fn backend(mut self, backend: Box<dyn SlotBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Enables or disables the day-level moment cache (default: on).
    ///
    /// When on, each planning day builds one
    /// [`DayCache`](ntc_trace::DayCache) of prefix sums over the day's
    /// prediction series, and every slot context answers its window
    /// covariances from it in O(1) instead of rebuilding Pearson terms
    /// per slot. Per-series means, variances and every degenerate-σ
    /// decision are bit-identical either way; pairwise covariances
    /// agree to ulp precision (prefix vs centered accumulation), so a
    /// packing race decided by an *exact* score tie can resolve
    /// differently — week outcomes are statistically indistinguishable
    /// but not guaranteed bit-equal across this knob. `false` exists
    /// for benchmarking the rebuild cost and as an escape hatch; both
    /// settings are individually deterministic.
    #[must_use]
    pub fn day_moment_cache(mut self, enabled: bool) -> Self {
        self.day_cache = enabled;
        self
    }

    /// Validates the configuration and builds the simulator.
    ///
    /// # Errors
    ///
    /// Returns an error if the fleet horizon is shorter than two weeks
    /// of 5-minute samples (training week + evaluation week) or
    /// `max_servers == 0`.
    pub fn build(self) -> Result<WeekSim<'a>, ntc_core::Error> {
        if self.max_servers == 0 {
            return Err(ntc_core::Error::NoServers);
        }
        let week = 7 * 24 * 12;
        let have = self.fleet.grid().len();
        if have < 2 * week {
            return Err(ntc_core::Error::HorizonTooShort {
                have,
                need: 2 * week,
            });
        }
        Ok(WeekSim {
            fleet: self.fleet,
            server: self.server,
            max_servers: self.max_servers,
            eval_start: have - week,
            qos_floor: self.qos_floor,
            day_cache: self.day_cache,
            backend: self.backend.unwrap_or_else(|| Box::new(AnalyticBackend)),
        })
    }

    /// Builds the simulator, panicking on invalid configuration.
    ///
    /// # Panics
    ///
    /// Panics if the fleet horizon is shorter than two weeks or
    /// `max_servers == 0`.
    #[track_caller]
    pub fn build_or_panic(self) -> WeekSim<'a> {
        match self.build() {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }
}

impl<'a> WeekSim<'a> {
    /// Starts a builder over `fleet` with `max_servers` physical servers
    /// of the given model; chain the optional knobs (e.g.
    /// [`qos_floor`](WeekSimBuilder::qos_floor)) and finish with
    /// [`WeekSimBuilder::build`].
    pub fn builder(
        fleet: &'a Fleet,
        server: ServerPowerModel,
        max_servers: usize,
    ) -> WeekSimBuilder<'a> {
        WeekSimBuilder {
            fleet,
            server,
            max_servers,
            qos_floor: None,
            day_cache: true,
            backend: None,
        }
    }

    /// Creates a simulator over `fleet` with `max_servers` physical
    /// servers of the given model.
    ///
    /// # Errors
    ///
    /// Returns an error if the fleet horizon is shorter than two weeks
    /// of 5-minute samples (training week + evaluation week) or
    /// `max_servers == 0`.
    pub fn try_new(
        fleet: &'a Fleet,
        server: ServerPowerModel,
        max_servers: usize,
    ) -> Result<Self, ntc_core::Error> {
        Self::builder(fleet, server, max_servers).build()
    }

    /// Creates a simulator, panicking on invalid configuration.
    ///
    /// Thin wrapper over [`WeekSim::try_new`]; use [`WeekSim::builder`]
    /// to reach the optional knobs.
    ///
    /// # Panics
    ///
    /// Panics if the fleet horizon is shorter than two weeks of 5-minute
    /// samples (training week + evaluation week) or `max_servers == 0`.
    #[track_caller]
    pub fn new(fleet: &'a Fleet, server: ServerPowerModel, max_servers: usize) -> Self {
        Self::builder(fleet, server, max_servers).build_or_panic()
    }

    /// Sample index where the evaluation week begins.
    pub fn eval_start(&self) -> usize {
        self.eval_start
    }

    /// Number of evaluated slots (168).
    pub fn eval_slots(&self) -> usize {
        (self.fleet.grid().len() - self.eval_start) / self.fleet.grid().samples_per_slot()
    }

    /// Runs `policy` with per-day forecasts from `predictor` — the
    /// paper's full pipeline (§V-B): ARIMA retrains each day on all
    /// history seen so far and forecasts the day ahead; each hourly slot
    /// is allocated from its window of that forecast.
    pub fn run(&self, policy: &dyn AllocationPolicy, predictor: &dyn Predictor) -> WeekOutcome {
        self.run_counted(policy, Some(predictor), &RunCaches::none())
            .0
    }

    /// Runs `policy` with *oracle* predictions (the actual traces) —
    /// isolates allocation quality from forecast quality, and is what
    /// the allocation ablations use.
    pub fn run_with_oracle(&self, policy: &dyn AllocationPolicy) -> WeekOutcome {
        self.run_counted(policy, None, &RunCaches::none()).0
    }

    /// [`run`](Self::run)/[`run_with_oracle`](Self::run_with_oracle)
    /// with the engine's shared caches threaded in and hit/miss
    /// counters returned; the public wrappers pass [`RunCaches::none`].
    ///
    /// A slot whose plan is already in the shared cache skips *all* of
    /// its prediction work — forecast, day-moment build and packing —
    /// and goes straight to replay.
    pub(crate) fn run_counted(
        &self,
        policy: &dyn AllocationPolicy,
        predictor: Option<&dyn Predictor>,
        caches: &RunCaches<'_>,
    ) -> (WeekOutcome, CacheStats) {
        let grid = self.fleet.grid();
        let sps = grid.samples_per_slot();
        let slots = self.eval_slots();
        let slots_per_day = grid.samples_per_day() / sps;
        let n_vms = self.fleet.len();
        let governor = DvfsGovernor::new(&self.server);

        let mut stats = CacheStats::default();
        let mut state = DayState::new();

        // EPACT re-plans every slot; the consolidation baselines follow
        // daily patterns and keep one plan in force for 24 slots.
        let period = policy.reallocation_period_slots().clamp(1, slots_per_day);
        let mut current_plan: Option<Arc<SlotPlan>> = None;
        let mut migrations_this_slot;

        // Slot-replay buffers, reused across all 168 slots instead of
        // reallocating per-VM windows and per-server aggregates each
        // iteration.
        let mut actual_cpu: Vec<TimeSeries> = vec![TimeSeries::zeros(0); n_vms];
        let mut actual_mem: Vec<TimeSeries> = vec![TimeSeries::zeros(0); n_vms];
        let mut per_server_cpu: Vec<TimeSeries> = Vec::new();
        let mut per_server_mem: Vec<TimeSeries> = Vec::new();
        let mut occupancy: Vec<bool> = Vec::new();
        let mut dominant_class: Vec<MemClass> = Vec::new();
        let mut governed = GovernedSlot::new();

        let mut outcomes = Vec::with_capacity(slots);
        for slot in 0..slots {
            let start = self.eval_start + slot * sps;
            let range = start..start + sps;

            // Stage 1+2 — forecast & plan, refreshed at period starts.
            if slot % period == 0 {
                fault::enter(CellStage::Plan);
                // Shared-plan fast path first: a hit skips forecasting,
                // moment building and packing for the whole period.
                let new_plan: Arc<SlotPlan> = match caches.plans.and_then(|g| g.slot(slot)) {
                    Some(lock) => {
                        if let Some(plan) = lock.get() {
                            stats.plan_hits += 1;
                            Arc::clone(plan)
                        } else {
                            let mut computed = false;
                            let plan = lock.get_or_init(|| {
                                computed = true;
                                Arc::new(self.plan_slot(
                                    policy, predictor, caches, slot, period, slots, &mut state,
                                    &mut stats,
                                ))
                            });
                            if computed {
                                stats.plan_misses += 1;
                            } else {
                                // Another worker initialized the lock
                                // between our `get` and `get_or_init`.
                                stats.plan_hits += 1;
                            }
                            Arc::clone(plan)
                        }
                    }
                    None => {
                        stats.plan_misses += 1;
                        Arc::new(self.plan_slot(
                            policy, predictor, caches, slot, period, slots, &mut state, &mut stats,
                        ))
                    }
                };
                migrations_this_slot = match &current_plan {
                    Some(prev) => ntc_core::migration_count(prev, &new_plan),
                    None => 0,
                };
                // Occupancy and per-server worst-case classes are pure
                // functions of the plan: derive them once per period.
                occupancy.clear();
                occupancy.resize(new_plan.num_servers(), false);
                dominant_class.clear();
                dominant_class.resize(new_plan.num_servers(), MemClass::Low);
                for (vm, &srv) in new_plan.assignments().iter().enumerate() {
                    occupancy[srv] = true;
                    let class = self.fleet.vms()[vm].class;
                    if mem_class_rank(class) > mem_class_rank(dominant_class[srv]) {
                        dominant_class[srv] = class;
                    }
                }
                current_plan = Some(new_plan);
            } else {
                migrations_this_slot = 0;
            }
            let plan = current_plan.as_deref().expect("plan set at period start");

            // Replay the slot with the actual traces, recycling the
            // window and aggregate buffers hoisted above.
            for (buf, vm) in actual_cpu.iter_mut().zip(self.fleet.vms()) {
                buf.copy_window_from(&vm.cpu, range.clone());
            }
            for (buf, vm) in actual_mem.iter_mut().zip(self.fleet.vms()) {
                buf.copy_window_from(&vm.mem, range.clone());
            }
            plan.aggregate_per_server_into(&actual_cpu, &mut per_server_cpu);
            plan.aggregate_per_server_into(&actual_mem, &mut per_server_mem);

            // Stage 3 — govern: settle every active server-sample's
            // operating point in server-major, sample-minor order.
            fault::enter(CellStage::Govern);
            governed.reset(grid.sample_period(), sps);
            for (srv, active) in occupancy.iter().enumerate() {
                if !active {
                    continue; // turned off, draws nothing
                }
                governed.push_server(dominant_class[srv]);
                for k in 0..sps {
                    governed.push_sample(governor.govern_sample(
                        per_server_cpu[srv].at(k),
                        per_server_mem[srv].at(k),
                        plan.dvfs_ceiling(),
                        plan.dvfs_floor(),
                        self.qos_floor,
                    ));
                }
            }

            // Stage 4 — account: the backend prices the governed slot.
            fault::enter(CellStage::Account);
            let accounts = self.backend.account(&self.server, &governed);

            outcomes.push(SlotOutcome {
                violations: accounts.violations,
                active_servers: governed.num_servers(),
                migrations: migrations_this_slot,
                energy: accounts.energy,
                planned_freq: plan.planned_freq(),
                mean_freq: accounts.mean_freq(),
            });
        }

        (
            WeekOutcome {
                policy: policy.name().to_string(),
                slots: outcomes,
            },
            stats,
        )
    }

    /// Plans one slot: ensures the day's forecast and moment caches are
    /// current, builds the prediction windows and runs the policy.
    /// Called only on plan-cache misses (or uncached runs).
    #[allow(clippy::too_many_arguments)]
    fn plan_slot(
        &self,
        policy: &dyn AllocationPolicy,
        predictor: Option<&dyn Predictor>,
        caches: &RunCaches<'_>,
        slot: usize,
        period: usize,
        slots: usize,
        state: &mut DayState,
        stats: &mut CacheStats,
    ) -> SlotPlan {
        let grid = self.fleet.grid();
        let sps = grid.samples_per_slot();
        let per_day = grid.samples_per_day();
        let slots_per_day = per_day / sps;
        let day = slot / slots_per_day;
        let start = self.eval_start + slot * sps;

        // Prediction window covering the whole allocation period.
        let window_len = sps * period.min(slots - slot);
        let offset = (slot % slots_per_day) * sps;

        // Refresh the day-ahead forecast lazily: only planning days are
        // forecast, and a day whose plans all hit is never forecast. A
        // new forecast invalidates the moment caches built from it.
        if let Some(p) = predictor {
            if DayState::refresh(&mut state.forecast, &mut state.forecast_day, day, || {
                fault::enter(CellStage::Forecast);
                self.day_forecast(p, day, caches, stats)
            }) {
                state.moments = None;
                state.moments_day = None;
            }
            // Back in the plan stage once the day's forecast stands.
            fault::enter(CellStage::Plan);
        }

        // Day-level moment caches: one prefix-sum build per day serves
        // every re-plan of that day with O(1) windowed covariances.
        if self.day_cache {
            let day_start = self.eval_start + day * per_day;
            let forecast = &state.forecast;
            let fleet = self.fleet;
            // Every plan window is aligned to the slot grid, so the
            // caches keep slot-major block planes of pair products.
            DayState::refresh(&mut state.moments, &mut state.moments_day, day, || {
                match (forecast, predictor) {
                    (Some(fc), Some(_)) => (
                        DayCache::with_block_size(&fc.cpu, sps),
                        DayCache::with_block_size(&fc.mem, sps),
                    ),
                    _ => {
                        let (cpu, mem) = actual_windows(fleet, day_start..day_start + per_day);
                        (
                            DayCache::with_block_size(&cpu, sps),
                            DayCache::with_block_size(&mem, sps),
                        )
                    }
                }
            });
        }

        let (pred_cpu, pred_mem): (Vec<TimeSeries>, Vec<TimeSeries>) = match &state.forecast {
            Some(fc) if predictor.is_some() => (
                fc.cpu
                    .iter()
                    .map(|s| s.window(offset..offset + window_len))
                    .collect(),
                fc.mem
                    .iter()
                    .map(|s| s.window(offset..offset + window_len))
                    .collect(),
            ),
            _ => actual_windows(self.fleet, start..start + window_len),
        };
        let mut ctx = SlotContext::new(&pred_cpu, &pred_mem, &self.server, self.max_servers);
        if let Some((dc_cpu, dc_mem)) = &state.moments {
            if offset + window_len <= per_day {
                ctx = ctx.with_day_window(dc_cpu, dc_mem, offset);
            }
        }
        policy.allocate(&ctx)
    }

    /// The day-ahead forecast for `day`, shared through the engine's
    /// forecast cache when one is attached. Matches the eager
    /// day-boundary refresh of the pre-cache simulator bit for bit: the
    /// predictor sees all history up to the day's first sample.
    fn day_forecast(
        &self,
        p: &dyn Predictor,
        day: usize,
        caches: &RunCaches<'_>,
        stats: &mut CacheStats,
    ) -> Arc<DayForecast> {
        let per_day = self.fleet.grid().samples_per_day();
        let day_start = self.eval_start + day * per_day;
        let build = || {
            Arc::new(DayForecast {
                cpu: self
                    .fleet
                    .vms()
                    .iter()
                    .map(|v| p.forecast(&v.cpu.window(0..day_start), per_day))
                    .collect(),
                mem: self
                    .fleet
                    .vms()
                    .iter()
                    .map(|v| p.forecast(&v.mem.window(0..day_start), per_day))
                    .collect(),
            })
        };
        match caches.forecasts.and_then(|days| days.get(day)) {
            Some(lock) => {
                if let Some(fc) = lock.get() {
                    stats.forecast_hits += 1;
                    Arc::clone(fc)
                } else {
                    let mut computed = false;
                    let fc = lock.get_or_init(|| {
                        computed = true;
                        build()
                    });
                    if computed {
                        stats.forecast_misses += 1;
                    } else {
                        stats.forecast_hits += 1;
                    }
                    Arc::clone(fc)
                }
            }
            None => {
                stats.forecast_misses += 1;
                build()
            }
        }
    }
}

/// Per-VM CPU and memory windows of the actual traces over `range` —
/// the shared series cut both the moment build (oracle arm) and the
/// oracle prediction windows draw from.
fn actual_windows(fleet: &Fleet, range: Range<usize>) -> (Vec<TimeSeries>, Vec<TimeSeries>) {
    (
        fleet
            .vms()
            .iter()
            .map(|v| v.cpu.window(range.clone()))
            .collect(),
        fleet
            .vms()
            .iter()
            .map(|v| v.mem.window(range.clone()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_core::{Coat, CoatOpt, Epact};
    use ntc_units::Energy;
    use ntc_workload::ClusterTraceGenerator;

    fn small_fleet() -> Fleet {
        ClusterTraceGenerator::google_like(48, 2024).generate()
    }

    #[test]
    fn oracle_run_covers_the_week() {
        let fleet = small_fleet();
        let sim = WeekSim::new(&fleet, ServerPowerModel::ntc(), 600);
        let out = sim.run_with_oracle(&Epact::new());
        assert_eq!(out.slots.len(), 168);
        assert!(out.total_energy() > Energy::ZERO);
        assert!(out.mean_active_servers() >= 1.0);
    }

    #[test]
    fn oracle_epact_has_no_violations() {
        // With perfect predictions EPACT packs under cap with Fmax
        // slack: violations must be zero.
        let fleet = small_fleet();
        let sim = WeekSim::new(&fleet, ServerPowerModel::ntc(), 600);
        let out = sim.run_with_oracle(&Epact::new());
        assert_eq!(
            out.total_violations(),
            0,
            "oracle EPACT must never overutilize"
        );
    }

    #[test]
    fn coat_uses_fewer_servers_but_more_energy() {
        let fleet = small_fleet();
        let sim = WeekSim::new(&fleet, ServerPowerModel::ntc(), 600);
        let epact = sim.run_with_oracle(&Epact::new());
        let coat = sim.run_with_oracle(&Coat::new());
        assert!(
            coat.mean_active_servers() < epact.mean_active_servers(),
            "consolidation must use fewer servers: COAT {:.1} vs EPACT {:.1}",
            coat.mean_active_servers(),
            epact.mean_active_servers()
        );
        assert!(
            epact.total_energy() < coat.total_energy(),
            "EPACT must still save energy: {:.1} vs {:.1} MJ",
            epact.total_energy().as_megajoules(),
            coat.total_energy().as_megajoules()
        );
    }

    #[test]
    fn coat_opt_sits_between() {
        let fleet = small_fleet();
        let sim = WeekSim::new(&fleet, ServerPowerModel::ntc(), 600);
        let epact = sim.run_with_oracle(&Epact::new());
        let coat = sim.run_with_oracle(&Coat::new());
        let coat_opt = sim.run_with_oracle(&CoatOpt::new());
        let e_epact = epact.total_energy().as_joules();
        let e_opt = coat_opt.total_energy().as_joules();
        let e_coat = coat.total_energy().as_joules();
        assert!(
            e_epact <= e_opt * 1.02 && e_opt < e_coat,
            "expected EPACT <= COAT-OPT < COAT, got {e_epact:.2e} / {e_opt:.2e} / {e_coat:.2e}"
        );
    }

    #[test]
    fn qos_floor_raises_energy_not_violations() {
        let fleet = small_fleet();
        let plain = WeekSim::new(&fleet, ServerPowerModel::ntc(), 600);
        let floored = WeekSim::builder(&fleet, ServerPowerModel::ntc(), 600)
            .qos_floor(Frequency::from_ghz(1.8))
            .build_or_panic();
        let e_plain = plain.run_with_oracle(&Epact::new());
        let e_floor = floored.run_with_oracle(&Epact::new());
        assert!(
            e_floor.total_energy() >= e_plain.total_energy(),
            "a frequency floor can only cost energy"
        );
        assert_eq!(
            e_floor.total_violations(),
            e_plain.total_violations(),
            "the floor must not change violation accounting"
        );
        // mean served frequency rises to at least the floor
        let mean_f = e_floor
            .slots
            .iter()
            .map(|s| s.mean_freq.as_mhz())
            .sum::<f64>()
            / e_floor.slots.len() as f64;
        assert!(mean_f >= 1800.0 - 1e-6, "mean frequency {mean_f} MHz");
    }

    #[test]
    fn archsim_backend_shares_the_upstream_stages() {
        // Swapping the account stage must leave forecast/plan/govern
        // untouched: allocation churn and server counts are identical,
        // only pricing (energy, QoS-aware violations) may differ.
        let fleet = small_fleet();
        let analytic = WeekSim::new(&fleet, ServerPowerModel::ntc(), 600);
        let archsim = WeekSim::builder(&fleet, ServerPowerModel::ntc(), 600)
            .backend(Box::new(crate::backend::ArchsimBackend::ntc()))
            .build_or_panic();
        let a = analytic.run_with_oracle(&Epact::new());
        let b = archsim.run_with_oracle(&Epact::new());
        assert_eq!(a.total_migrations(), b.total_migrations());
        assert_eq!(a.mean_active_servers(), b.mean_active_servers());
        assert!(
            b.total_violations() >= a.total_violations(),
            "archsim only adds QoS misses on top of demand violations"
        );
        assert!(b.total_energy() > Energy::ZERO);
        for (sa, sb) in a.slots.iter().zip(&b.slots) {
            assert_eq!(sa.planned_freq, sb.planned_freq);
            assert_eq!(sa.mean_freq, sb.mean_freq, "govern stage is shared");
        }
    }

    #[test]
    fn day_moment_cache_is_statistically_equivalent() {
        // Covariances from the day cache agree with the per-slot
        // rebuild to ulp precision, so only exact score ties can
        // resolve differently; the week metrics must stay within
        // rounding distance of each other (and typically match
        // exactly, as COAT does).
        let fleet = small_fleet();
        let cached = WeekSim::new(&fleet, ServerPowerModel::ntc(), 600);
        let rebuilt = WeekSim::builder(&fleet, ServerPowerModel::ntc(), 600)
            .day_moment_cache(false)
            .build_or_panic();
        for policy in [&Epact::new() as &dyn AllocationPolicy, &Coat::new()] {
            let a = cached.run_with_oracle(policy);
            let b = rebuilt.run_with_oracle(policy);
            assert_eq!(a.slots.len(), b.slots.len());
            assert_eq!(a.total_violations(), b.total_violations());
            let (ea, eb) = (a.total_energy().as_joules(), b.total_energy().as_joules());
            assert!(
                (ea - eb).abs() <= 1e-3 * eb,
                "{}: day cache moved energy beyond tie noise: {ea} vs {eb}",
                policy.name()
            );
            assert!(
                (a.mean_active_servers() - b.mean_active_servers()).abs() <= 0.1,
                "{}: active-server profile shifted",
                policy.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "training week")]
    fn single_week_fleet_rejected() {
        let fleet = ClusterTraceGenerator::google_like(4, 1)
            .with_weeks(1)
            .generate();
        let _ = WeekSim::new(&fleet, ServerPowerModel::ntc(), 10);
    }
}
