//! Cross-cell memoization for the sweep engine: plan dedup over the
//! static-power axis and day-forecast sharing across policies.
//!
//! Cells of one sweep differ along six axes, but three of them often
//! do not change what a policy *plans*:
//!
//! * the QoS floor only shapes the online replay, never the plan;
//! * the accounting backend only prices governed slots (the
//!   conservation contract of [`crate::backend`]); its planning
//!   fingerprint is folded into the key and is empty for both
//!   built-ins, so `analytic` and `archsim` arms share plan groups —
//!   and day-ahead forecasts, which depend on the fleet and predictor
//!   alone;
//! * a static-power scale changes the plan only through the quantities
//!   the policy actually derives from the power model (`F_NTC_opt`, the
//!   DVFS table, full-load powers). When those coincide across scales —
//!   always for COAT, which plans purely at `Fmax` — the packing work
//!   is identical and can be shared.
//!
//! [`PlanCache`] therefore keys plan groups on the *planning inputs*: a
//! bit-pattern fingerprint of exactly the model-derived numbers each
//! policy reads while allocating, alongside the fleet, policy, ablation
//! and server budget. Cells with equal fingerprints share one
//! `OnceLock<Arc<SlotPlan>>` per evaluation slot (the same pattern as
//! the engine's fleet cache): the first worker to reach a slot plans
//! it, everyone else reuses the `Arc`. Initialization is a pure
//! function of the spec, so the race winner cannot change any result.
//!
//! [`ForecastCache`] does the same one level up for predictor sweeps:
//! the day-ahead forecast depends only on the fleet and the (spec-wide)
//! predictor, so all policy/server/scale/floor arms over one fleet
//! share its seven `DayForecast`s.
//!
//! [`CacheStats`] counts hits and misses; `ntcdc sweep --cache-stats`
//! prints the totals.

use std::sync::{Arc, OnceLock};

use ntc_core::SlotPlan;
use ntc_power::{DataCenterPowerModel, ServerPowerModel};
use ntc_trace::TimeSeries;
use ntc_units::Percent;

use crate::engine::{CellSpec, ExperimentSpec, FleetSpec, PolicySpec};

/// Hourly slots in the evaluation week — the size of every plan group.
pub(crate) const EVAL_SLOTS: usize = 7 * 24;

/// Days in the evaluation week — the size of every forecast entry.
pub(crate) const EVAL_DAYS: usize = 7;

/// Cache hit/miss counters of one cell run (or, summed, of a sweep).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Allocation slots answered from the shared plan cache.
    pub plan_hits: usize,
    /// Allocation slots that had to be planned (and were then shared).
    pub plan_misses: usize,
    /// Day-ahead forecasts answered from the shared forecast cache.
    pub forecast_hits: usize,
    /// Day-ahead forecasts that had to be computed.
    pub forecast_misses: usize,
}

impl CacheStats {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: CacheStats) {
        self.plan_hits += other.plan_hits;
        self.plan_misses += other.plan_misses;
        self.forecast_hits += other.forecast_hits;
        self.forecast_misses += other.forecast_misses;
    }
}

/// One day-ahead forecast for a fleet: per-VM CPU and memory series of
/// one day.
#[derive(Debug)]
pub(crate) struct DayForecast {
    /// Per-VM forecast CPU series (one day long).
    pub cpu: Vec<TimeSeries>,
    /// Per-VM forecast memory series (one day long).
    pub mem: Vec<TimeSeries>,
}

/// The identity of a plan group: everything that can change what a
/// policy plans. Cells differing only in QoS floor — or in a
/// static-power scale whose derived planning inputs coincide — map to
/// the same key and share plans.
#[derive(Debug, PartialEq)]
struct PlanKey {
    fleet: FleetSpec,
    policy: PolicySpec,
    correlation_only: bool,
    max_servers: usize,
    /// Bit patterns of the model-derived numbers the policy reads while
    /// planning; see [`planning_inputs`].
    inputs: Vec<u64>,
    /// The backend's planning-relevant parameters
    /// ([`BackendSpec::planning_inputs`]): empty for every backend that
    /// honours the conservation contract of [`crate::backend`], so
    /// cells differing only in backend share one plan group. A backend
    /// that did parameterize planning would fingerprint differently
    /// here and split, keeping the dedup sound.
    backend_inputs: Vec<u64>,
}

/// The model-derived quantities `policy` reads during `allocate`, as
/// f64 bit patterns. Two server models with equal fingerprints produce
/// bit-identical plans for the policy, whatever else (e.g. static
/// power) differs between them.
fn planning_inputs(policy: PolicySpec, model: &ServerPowerModel, max_servers: usize) -> Vec<u64> {
    let mut v = vec![
        model.fmax().as_mhz().to_bits(),
        model.fmin().as_mhz().to_bits(),
    ];
    match policy {
        // COAT consolidates at Fmax only.
        PolicySpec::Coat => {}
        // COAT-OPT's cap is F_NTC_opt, which reads the full power model.
        PolicySpec::CoatOpt => {
            let dc = DataCenterPowerModel::new(model.clone(), max_servers);
            v.push(dc.ntc_optimal_frequency().as_mhz().to_bits());
        }
        // EPACT reads F_NTC_opt and, in the Eq. 1 exploration, the
        // worst-case power at every DVFS level.
        PolicySpec::Epact => {
            let dc = DataCenterPowerModel::new(model.clone(), max_servers);
            v.push(dc.ntc_optimal_frequency().as_mhz().to_bits());
            for f in model.dvfs_levels() {
                v.push(f.as_mhz().to_bits());
                v.push(
                    model
                        .power(f, Percent::FULL, Percent::ZERO)
                        .as_watts()
                        .to_bits(),
                );
            }
        }
        // Load balancing spreads against the DVFS table.
        PolicySpec::LoadBalance => {
            for f in model.dvfs_levels() {
                v.push(f.as_mhz().to_bits());
            }
        }
    }
    v
}

/// One shared set of per-slot plan locks; see the [module docs](self).
#[derive(Debug)]
pub(crate) struct PlanGroup {
    slots: Vec<OnceLock<Arc<SlotPlan>>>,
}

impl PlanGroup {
    fn new() -> Self {
        Self {
            slots: (0..EVAL_SLOTS).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The lock for `slot`, or `None` when the run's horizon exceeds
    /// the group's (defensive — evaluation is always one week).
    pub fn slot(&self, slot: usize) -> Option<&OnceLock<Arc<SlotPlan>>> {
        self.slots.get(slot)
    }
}

/// Plan groups for every cell of one sweep, deduplicated by
/// [`PlanKey`]; cells sharing a key share a [`PlanGroup`].
#[derive(Debug)]
pub(crate) struct PlanCache {
    groups: Vec<PlanGroup>,
    /// Spec-order cell index → group index.
    by_cell: Vec<usize>,
}

impl PlanCache {
    /// Computes the key of every cell and deduplicates the groups.
    pub fn new(spec: &ExperimentSpec, cells: &[CellSpec]) -> Self {
        let mut keys: Vec<PlanKey> = Vec::new();
        let mut groups: Vec<PlanGroup> = Vec::new();
        let mut by_cell = Vec::with_capacity(cells.len());
        for cell in cells {
            let key = PlanKey {
                fleet: cell.fleet,
                policy: cell.policy,
                correlation_only: spec.ablation.correlation_only,
                max_servers: spec.max_servers,
                inputs: planning_inputs(cell.policy, &cell.server_model(), spec.max_servers),
                backend_inputs: cell.backend.planning_inputs(),
            };
            let idx = match keys.iter().position(|k| *k == key) {
                Some(i) => i,
                None => {
                    keys.push(key);
                    groups.push(PlanGroup::new());
                    groups.len() - 1
                }
            };
            by_cell.push(idx);
        }
        Self { groups, by_cell }
    }

    /// The plan group of the cell at spec-order index `cell_index`.
    pub fn group(&self, cell_index: usize) -> &PlanGroup {
        &self.groups[self.by_cell[cell_index]]
    }

    /// Number of distinct plan groups (for diagnostics/tests).
    #[cfg(test)]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }
}

/// Per-fleet day-forecast locks shared by every cell over that fleet;
/// only built for non-oracle sweeps (the predictor is spec-wide).
#[derive(Debug)]
pub(crate) struct ForecastCache {
    entries: Vec<(FleetSpec, Vec<OnceLock<Arc<DayForecast>>>)>,
}

impl ForecastCache {
    /// Builds an empty cache over the distinct fleet specs.
    pub fn new(fleets: &[FleetSpec]) -> Self {
        let mut entries: Vec<(FleetSpec, Vec<OnceLock<Arc<DayForecast>>>)> = Vec::new();
        for &fleet in fleets {
            if !entries.iter().any(|(f, _)| *f == fleet) {
                entries.push((fleet, (0..EVAL_DAYS).map(|_| OnceLock::new()).collect()));
            }
        }
        Self { entries }
    }

    /// The seven day-forecast locks of `fleet`.
    pub fn days(&self, fleet: &FleetSpec) -> &[OnceLock<Arc<DayForecast>>] {
        let (_, days) = self
            .entries
            .iter()
            .find(|(f, _)| f == fleet)
            .expect("every cell's fleet comes from the spec's fleet set");
        days
    }
}

/// The cache handles one `WeekSim` run receives from the engine; both
/// levels are optional so the public (uncached) API and the cached
/// engine path share one code path.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RunCaches<'c> {
    /// Shared per-slot plans, when the engine deduplicated this cell
    /// into a plan group.
    pub plans: Option<&'c PlanGroup>,
    /// Shared day-forecast locks of this cell's fleet.
    pub forecasts: Option<&'c [OnceLock<Arc<DayForecast>>]>,
}

impl RunCaches<'_> {
    /// No caching — the plain public run path.
    pub fn none() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServerSpec;

    fn spec_with_scales(scales: Vec<f64>) -> ExperimentSpec {
        let mut spec = ExperimentSpec::default_sweep();
        spec.servers = vec![ServerSpec::Ntc];
        spec.static_power_scales = scales;
        spec
    }

    #[test]
    fn coat_plans_dedup_across_static_power_scales() {
        // COAT plans at Fmax only: every scale arm shares one group.
        let mut spec = spec_with_scales(vec![0.5, 1.0, 2.0]);
        spec.policies = vec![PolicySpec::Coat];
        let cells = spec.cells();
        let cache = PlanCache::new(&spec, &cells);
        assert_eq!(cells.len(), 3);
        assert_eq!(cache.num_groups(), 1);
        assert!(std::ptr::eq(cache.group(0), cache.group(2)));
    }

    #[test]
    fn backend_arms_always_share_plans() {
        // Both built-in backends conserve planning (empty
        // planning_inputs): one group per policy across the axis.
        use crate::backend::BackendSpec;
        let mut spec = spec_with_scales(vec![1.0]);
        spec.backends = vec![BackendSpec::Analytic, BackendSpec::Archsim];
        let cells = spec.cells();
        let cache = PlanCache::new(&spec, &cells);
        assert_eq!(cells.len(), 6);
        assert_eq!(cache.num_groups(), 3);
        assert!(std::ptr::eq(cache.group(0), cache.group(3)));
    }

    #[test]
    fn qos_floor_arms_always_share_plans() {
        // The floor shapes replay, not planning: one group per policy.
        let mut spec = spec_with_scales(vec![1.0]);
        spec.qos_floors_mhz = vec![None, Some(1200.0), Some(1800.0)];
        let cells = spec.cells();
        let cache = PlanCache::new(&spec, &cells);
        assert_eq!(cells.len(), 9);
        assert_eq!(cache.num_groups(), 3);
    }

    #[test]
    fn epact_plans_split_when_f_ntc_opt_moves() {
        // A large static-power change shifts F_NTC_opt, so EPACT's
        // planning inputs differ and the groups must not merge.
        let mut spec = spec_with_scales(vec![0.0, 8.0]);
        spec.policies = vec![PolicySpec::Epact];
        let cells = spec.cells();
        let inputs: Vec<_> = cells
            .iter()
            .map(|c| planning_inputs(c.policy, &c.server_model(), spec.max_servers))
            .collect();
        assert_ne!(inputs[0], inputs[1], "fingerprints must differ");
        let cache = PlanCache::new(&spec, &cells);
        assert_eq!(cache.num_groups(), 2);
    }

    #[test]
    fn distinct_fleets_never_share_plans() {
        let mut spec = spec_with_scales(vec![1.0]).with_seeds(&[1, 2]);
        spec.policies = vec![PolicySpec::Coat];
        let cells = spec.cells();
        let cache = PlanCache::new(&spec, &cells);
        assert_eq!(cache.num_groups(), 2);
    }

    #[test]
    fn forecast_cache_dedups_fleets() {
        let fleets = vec![
            FleetSpec {
                num_vms: 8,
                seed: 1,
                weeks: 2,
            };
            3
        ];
        let cache = ForecastCache::new(&fleets);
        assert_eq!(cache.days(&fleets[0]).len(), EVAL_DAYS);
        assert_eq!(cache.entries.len(), 1);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = CacheStats {
            plan_hits: 1,
            plan_misses: 2,
            forecast_hits: 3,
            forecast_misses: 4,
        };
        a.merge(CacheStats {
            plan_hits: 10,
            plan_misses: 20,
            forecast_hits: 30,
            forecast_misses: 40,
        });
        assert_eq!(
            a,
            CacheStats {
                plan_hits: 11,
                plan_misses: 22,
                forecast_hits: 33,
                forecast_misses: 44,
            }
        );
    }
}
