//! CSV export of experiment results — so the regenerated figures can be
//! plotted with any external tool.

use std::fmt::Write as _;

use crate::experiments::{Fig1Curve, Fig2Series, Fig3Series, Fig7Point};
use crate::WeekOutcome;

/// Renders the per-slot series of several week outcomes side by side
/// (Figs. 4–6 in one table): columns
/// `slot,<policy>_violations,<policy>_servers,<policy>_energy_mj,...`.
///
/// # Panics
///
/// Panics if the outcomes cover different numbers of slots or the list
/// is empty.
pub fn week_csv(outcomes: &[WeekOutcome]) -> String {
    assert!(!outcomes.is_empty(), "need at least one outcome");
    let slots = outcomes[0].slots.len();
    assert!(
        outcomes.iter().all(|o| o.slots.len() == slots),
        "outcomes must cover the same horizon"
    );

    let mut out = String::from("slot");
    for o in outcomes {
        let p = o.policy.to_lowercase().replace(['-', ' '], "_");
        let _ = write!(
            out,
            ",{p}_violations,{p}_servers,{p}_migrations,{p}_energy_mj"
        );
    }
    out.push('\n');
    for t in 0..slots {
        let _ = write!(out, "{t}");
        for o in outcomes {
            let s = &o.slots[t];
            let _ = write!(
                out,
                ",{},{},{},{:.4}",
                s.violations,
                s.active_servers,
                s.migrations,
                s.energy.as_megajoules()
            );
        }
        out.push('\n');
    }
    out
}

/// Renders one Fig. 1 panel: `utilization_pct,freq_mhz,power_kw`
/// (infeasible points omitted).
pub fn fig1_csv(curves: &[Fig1Curve]) -> String {
    let mut out = String::from("utilization_pct,freq_mhz,power_kw\n");
    for c in curves {
        for (f, p) in &c.points {
            if let Some(p) = p {
                let _ = writeln!(
                    out,
                    "{:.0},{:.0},{:.4}",
                    c.utilization,
                    f.as_mhz(),
                    p.as_kilowatts()
                );
            }
        }
    }
    out
}

/// Renders Fig. 2: `workload,freq_mhz,normalized_time`.
pub fn fig2_csv(series: &[Fig2Series]) -> String {
    let mut out = String::from("workload,freq_mhz,normalized_time\n");
    for s in series {
        for (f, v) in &s.points {
            let _ = writeln!(out, "{},{:.0},{:.4}", s.workload, f.as_mhz(), v);
        }
    }
    out
}

/// Renders Fig. 3: `workload,freq_mhz,buips_per_watt`.
pub fn fig3_csv(series: &[Fig3Series]) -> String {
    let mut out = String::from("workload,freq_mhz,buips_per_watt\n");
    for s in series {
        for (f, v) in &s.points {
            let _ = writeln!(out, "{},{:.0},{:.4}", s.workload, f.as_mhz(), v);
        }
    }
    out
}

/// Renders Fig. 7: `static_w,epact_mj,coat_mj,saving_pct`.
pub fn fig7_csv(points: &[Fig7Point]) -> String {
    let mut out = String::from("static_w,epact_mj,coat_mj,saving_pct\n");
    for p in points {
        let _ = writeln!(
            out,
            "{:.0},{:.4},{:.4},{:.2}",
            p.static_power.as_watts(),
            p.epact_energy.as_megajoules(),
            p.coat_energy.as_megajoules(),
            p.saving_pct
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SlotOutcome;
    use ntc_units::{Energy, Frequency};

    fn outcome(name: &str, slots: usize) -> WeekOutcome {
        WeekOutcome {
            policy: name.into(),
            slots: (0..slots)
                .map(|i| SlotOutcome {
                    violations: i,
                    active_servers: 10 + i,
                    migrations: i / 2,
                    energy: Energy::from_megajoules(1.0 + i as f64),
                    planned_freq: Frequency::from_ghz(1.9),
                    mean_freq: Frequency::from_ghz(1.5),
                })
                .collect(),
        }
    }

    #[test]
    fn week_csv_layout() {
        let csv = week_csv(&[outcome("EPACT", 2), outcome("COAT-OPT", 2)]);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("slot,epact_violations"));
        assert!(header.contains("coat_opt_energy_mj"));
        assert_eq!(lines.count(), 2);
        assert!(csv.contains("1,1,11,0,2.0000"));
    }

    #[test]
    fn fig_csvs_have_headers() {
        assert!(fig2_csv(&[]).starts_with("workload,freq_mhz,"));
        assert!(fig3_csv(&[]).starts_with("workload,freq_mhz,"));
        assert!(fig7_csv(&[]).starts_with("static_w,"));
        assert!(fig1_csv(&[]).starts_with("utilization_pct,"));
    }

    #[test]
    #[should_panic(expected = "same horizon")]
    fn ragged_outcomes_rejected() {
        let _ = week_csv(&[outcome("A", 2), outcome("B", 3)]);
    }
}
