//! CSV and JSON export of experiment results — so the regenerated
//! figures can be plotted with any external tool. The JSON emitters are
//! built on the same [`Value`] writer the spec codec uses
//! ([`spec_json`](crate::spec_json)); there is no second hand-rolled
//! emitter to drift.

use std::fmt::Write as _;

use crate::engine::SweepResult;
use crate::experiments::{Fig1Curve, Fig2Series, Fig3Series, Fig7Point};
use crate::spec_json::{policy_tag, server_tag, Value};
use crate::{AblationFlags, WeekOutcome};

/// Renders the per-slot series of several week outcomes side by side
/// (Figs. 4–6 in one table): columns
/// `slot,<policy>_violations,<policy>_servers,<policy>_energy_mj,...`.
///
/// # Panics
///
/// Panics if the outcomes cover different numbers of slots or the list
/// is empty.
pub fn week_csv(outcomes: &[WeekOutcome]) -> String {
    assert!(!outcomes.is_empty(), "need at least one outcome");
    let slots = outcomes[0].slots.len();
    assert!(
        outcomes.iter().all(|o| o.slots.len() == slots),
        "outcomes must cover the same horizon"
    );

    let mut out = String::from("slot");
    for o in outcomes {
        let p = o.policy.to_lowercase().replace(['-', ' '], "_");
        let _ = write!(
            out,
            ",{p}_violations,{p}_servers,{p}_migrations,{p}_energy_mj"
        );
    }
    out.push('\n');
    for t in 0..slots {
        let _ = write!(out, "{t}");
        for o in outcomes {
            let s = &o.slots[t];
            let _ = write!(
                out,
                ",{},{},{},{:.4}",
                s.violations,
                s.active_servers,
                s.migrations,
                s.energy.as_megajoules()
            );
        }
        out.push('\n');
    }
    out
}

/// Renders one Fig. 1 panel: `utilization_pct,freq_mhz,power_kw`
/// (infeasible points omitted).
pub fn fig1_csv(curves: &[Fig1Curve]) -> String {
    let mut out = String::from("utilization_pct,freq_mhz,power_kw\n");
    for c in curves {
        for (f, p) in &c.points {
            if let Some(p) = p {
                let _ = writeln!(
                    out,
                    "{:.0},{:.0},{:.4}",
                    c.utilization,
                    f.as_mhz(),
                    p.as_kilowatts()
                );
            }
        }
    }
    out
}

/// Renders Fig. 2: `workload,freq_mhz,normalized_time`.
pub fn fig2_csv(series: &[Fig2Series]) -> String {
    let mut out = String::from("workload,freq_mhz,normalized_time\n");
    for s in series {
        for (f, v) in &s.points {
            let _ = writeln!(out, "{},{:.0},{:.4}", s.workload, f.as_mhz(), v);
        }
    }
    out
}

/// Renders Fig. 3: `workload,freq_mhz,buips_per_watt`.
pub fn fig3_csv(series: &[Fig3Series]) -> String {
    let mut out = String::from("workload,freq_mhz,buips_per_watt\n");
    for s in series {
        for (f, v) in &s.points {
            let _ = writeln!(out, "{},{:.0},{:.4}", s.workload, f.as_mhz(), v);
        }
    }
    out
}

/// Renders Fig. 7: `static_w,epact_mj,coat_mj,saving_pct`.
pub fn fig7_csv(points: &[Fig7Point]) -> String {
    let mut out = String::from("static_w,epact_mj,coat_mj,saving_pct\n");
    for p in points {
        let _ = writeln!(
            out,
            "{:.0},{:.4},{:.4},{:.2}",
            p.static_power.as_watts(),
            p.epact_energy.as_megajoules(),
            p.coat_energy.as_megajoules(),
            p.saving_pct
        );
    }
    out
}

/// Renders week outcomes as JSON: one object per outcome with the
/// policy name, headline totals and the per-slot series (the same data
/// [`week_csv`] tabulates, in a structured form).
pub fn week_json(outcomes: &[WeekOutcome]) -> String {
    let rows = outcomes.iter().map(week_value).collect();
    Value::Array(rows).render()
}

fn week_value(outcome: &WeekOutcome) -> Value {
    let series = |f: &dyn Fn(&crate::SlotOutcome) -> f64| {
        Value::Array(outcome.slots.iter().map(|s| Value::Number(f(s))).collect())
    };
    Value::Object(vec![
        ("policy".into(), Value::String(outcome.policy.clone())),
        ("slots".into(), Value::Number(outcome.slots.len() as f64)),
        (
            "total_energy_mj".into(),
            Value::Number(outcome.total_energy().as_megajoules()),
        ),
        (
            "total_violations".into(),
            Value::Number(outcome.total_violations() as f64),
        ),
        (
            "total_migrations".into(),
            Value::Number(outcome.total_migrations() as f64),
        ),
        (
            "mean_active_servers".into(),
            Value::Number(outcome.mean_active_servers()),
        ),
        ("energy_mj".into(), series(&|s| s.energy.as_megajoules())),
        ("violations".into(), series(&|s| s.violations as f64)),
        (
            "active_servers".into(),
            series(&|s| s.active_servers as f64),
        ),
        ("migrations".into(), series(&|s| s.migrations as f64)),
    ])
}

/// Renders a (possibly partial) sweep as JSON: a `cells` array
/// carrying each completed cell's full identity (fleet, static-power
/// scale, policy, server, QoS floor, accounting backend) with its
/// headline metrics, a `groups` array with the seed-averaged mean±std
/// rows from [`SweepResult::seed_groups`], and a `failures` array with
/// one entry per failed or skipped cell (index, label, seed, pipeline
/// stage, failure kind and message) — empty for a clean sweep.
pub fn sweep_json(sweep: &SweepResult, ablation: AblationFlags) -> String {
    let cells = sweep
        .cells
        .iter()
        .map(|c| {
            let spec = c.cell;
            Value::Object(vec![
                ("label".into(), Value::String(spec.label(ablation))),
                (
                    "policy".into(),
                    Value::String(policy_tag(spec.policy).into()),
                ),
                (
                    "server".into(),
                    Value::String(server_tag(spec.server).into()),
                ),
                (
                    "qos_floor_mhz".into(),
                    spec.qos_floor_mhz.map_or(Value::Null, Value::Number),
                ),
                (
                    "static_power_scale".into(),
                    Value::Number(spec.static_power_scale),
                ),
                ("backend".into(), Value::String(spec.backend.label().into())),
                ("num_vms".into(), Value::Number(spec.fleet.num_vms as f64)),
                ("seed".into(), Value::Number(spec.fleet.seed as f64)),
                ("weeks".into(), Value::Number(spec.fleet.weeks as f64)),
                (
                    "energy_mj".into(),
                    Value::Number(c.outcome.total_energy().as_megajoules()),
                ),
                (
                    "violations".into(),
                    Value::Number(c.outcome.total_violations() as f64),
                ),
                (
                    "migrations".into(),
                    Value::Number(c.outcome.total_migrations() as f64),
                ),
                (
                    "mean_active_servers".into(),
                    Value::Number(c.outcome.mean_active_servers()),
                ),
            ])
        })
        .collect();
    let groups = sweep
        .seed_groups()
        .iter()
        .map(|g| {
            let stat = |ms: crate::MeanStd| {
                Value::Object(vec![
                    ("mean".into(), Value::Number(ms.mean)),
                    ("std".into(), Value::Number(ms.std)),
                ])
            };
            Value::Object(vec![
                ("label".into(), Value::String(g.label(ablation))),
                ("policy".into(), Value::String(policy_tag(g.policy).into())),
                ("server".into(), Value::String(server_tag(g.server).into())),
                (
                    "qos_floor_mhz".into(),
                    g.qos_floor_mhz.map_or(Value::Null, Value::Number),
                ),
                (
                    "static_power_scale".into(),
                    Value::Number(g.static_power_scale),
                ),
                ("backend".into(), Value::String(g.backend.label().into())),
                ("runs".into(), Value::Number(g.runs as f64)),
                ("energy_mj".into(), stat(g.energy_mj)),
                ("violations".into(), stat(g.violations)),
                ("migrations".into(), stat(g.migrations)),
                ("mean_active_servers".into(), stat(g.mean_active_servers)),
            ])
        })
        .collect();
    let failures = sweep
        .failed()
        .iter()
        .map(|f| {
            Value::Object(vec![
                ("index".into(), Value::Number(f.index as f64)),
                ("label".into(), Value::String(f.label.clone())),
                ("seed".into(), Value::Number(f.cell.fleet.seed as f64)),
                (
                    "stage".into(),
                    f.stage()
                        .map_or(Value::Null, |s| Value::String(s.label().into())),
                ),
                ("kind".into(), Value::String(f.kind_label().into())),
                ("message".into(), Value::String(f.message())),
            ])
        })
        .collect();
    let totals = sweep.cache_totals();
    Value::Object(vec![
        ("threads".into(), Value::Number(sweep.threads as f64)),
        (
            "cells_total".into(),
            Value::Number(sweep.total_cells() as f64),
        ),
        (
            "cells_failed".into(),
            Value::Number(sweep.failed().len() as f64),
        ),
        (
            "plan_cache_hits".into(),
            Value::Number(totals.plan_hits as f64),
        ),
        (
            "plan_cache_misses".into(),
            Value::Number(totals.plan_misses as f64),
        ),
        (
            "forecast_cache_hits".into(),
            Value::Number(totals.forecast_hits as f64),
        ),
        (
            "forecast_cache_misses".into(),
            Value::Number(totals.forecast_misses as f64),
        ),
        ("cells".into(), Value::Array(cells)),
        ("groups".into(), Value::Array(groups)),
        ("failures".into(), Value::Array(failures)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec_json::parse_value;
    use crate::SlotOutcome;
    use ntc_units::{Energy, Frequency};

    fn outcome(name: &str, slots: usize) -> WeekOutcome {
        WeekOutcome {
            policy: name.into(),
            slots: (0..slots)
                .map(|i| SlotOutcome {
                    violations: i,
                    active_servers: 10 + i,
                    migrations: i / 2,
                    energy: Energy::from_megajoules(1.0 + i as f64),
                    planned_freq: Frequency::from_ghz(1.9),
                    mean_freq: Frequency::from_ghz(1.5),
                })
                .collect(),
        }
    }

    #[test]
    fn week_csv_layout() {
        let csv = week_csv(&[outcome("EPACT", 2), outcome("COAT-OPT", 2)]);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("slot,epact_violations"));
        assert!(header.contains("coat_opt_energy_mj"));
        assert_eq!(lines.count(), 2);
        assert!(csv.contains("1,1,11,0,2.0000"));
    }

    #[test]
    fn fig_csvs_have_headers() {
        assert!(fig2_csv(&[]).starts_with("workload,freq_mhz,"));
        assert!(fig3_csv(&[]).starts_with("workload,freq_mhz,"));
        assert!(fig7_csv(&[]).starts_with("static_w,"));
        assert!(fig1_csv(&[]).starts_with("utilization_pct,"));
    }

    #[test]
    #[should_panic(expected = "same horizon")]
    fn ragged_outcomes_rejected() {
        let _ = week_csv(&[outcome("A", 2), outcome("B", 3)]);
    }

    #[test]
    fn week_json_is_well_formed_and_complete() {
        let json = week_json(&[outcome("EPACT", 3), outcome("COAT", 3)]);
        let value = parse_value(&json).expect("emitted JSON must parse");
        let rows = value.as_array("root").unwrap();
        assert_eq!(rows.len(), 2);
        let first = rows[0].as_object("row").unwrap();
        let field = |name: &str| &first.iter().find(|(k, _)| k == name).unwrap().1;
        assert_eq!(field("policy").as_string("policy").unwrap(), "EPACT");
        assert_eq!(field("slots").as_f64("slots").unwrap(), 3.0);
        assert_eq!(field("total_violations").as_f64("v").unwrap(), 3.0);
        assert_eq!(field("energy_mj").as_array("e").unwrap().len(), 3);
        assert_eq!(field("violations").as_array("v").unwrap().len(), 3);
    }

    #[test]
    fn sweep_json_reports_failures() {
        use crate::{CellStage, Engine, ExperimentSpec, FaultSpec, PolicySpec, ServerSpec};
        let mut spec = ExperimentSpec::default_sweep();
        spec.fleets[0].num_vms = 8;
        spec.policies = vec![PolicySpec::Epact, PolicySpec::Coat];
        spec.servers = vec![ServerSpec::Ntc];
        spec.max_servers = 80;
        let sweep = Engine::with_threads(2)
            .inject_fault(FaultSpec::panic_at(1, CellStage::Plan))
            .run(&spec)
            .unwrap();
        let json = sweep_json(&sweep, spec.ablation);
        let value = parse_value(&json).expect("emitted JSON must parse");
        let obj = value.as_object("root").unwrap();
        let field = |name: &str| &obj.iter().find(|(k, _)| k == name).unwrap().1;
        assert_eq!(field("cells_total").as_f64("t").unwrap(), 2.0);
        assert_eq!(field("cells_failed").as_f64("f").unwrap(), 1.0);
        assert_eq!(field("cells").as_array("cells").unwrap().len(), 1);
        let failures = field("failures").as_array("failures").unwrap();
        assert_eq!(failures.len(), 1);
        let failure = failures[0].as_object("failure").unwrap();
        let ffield = |name: &str| &failure.iter().find(|(k, _)| k == name).unwrap().1;
        assert_eq!(ffield("index").as_f64("index").unwrap(), 1.0);
        assert_eq!(ffield("label").as_string("label").unwrap(), "COAT/NTC");
        assert_eq!(ffield("stage").as_string("stage").unwrap(), "plan");
        assert_eq!(ffield("kind").as_string("kind").unwrap(), "panic");
        assert!(ffield("message")
            .as_string("message")
            .unwrap()
            .contains("injected"));
    }

    #[test]
    fn sweep_json_carries_cells_and_seed_groups() {
        use crate::{Engine, ExperimentSpec, PolicySpec, ServerSpec};
        let mut spec = ExperimentSpec::default_sweep().with_seeds(&[1, 2]);
        spec.fleets.iter_mut().for_each(|f| f.num_vms = 8);
        spec.policies = vec![PolicySpec::Epact];
        spec.servers = vec![ServerSpec::Ntc];
        spec.max_servers = 80;
        let sweep = Engine::with_threads(2).run(&spec).unwrap();
        let json = sweep_json(&sweep, spec.ablation);
        let value = parse_value(&json).expect("emitted JSON must parse");
        let obj = value.as_object("root").unwrap();
        let field = |name: &str| &obj.iter().find(|(k, _)| k == name).unwrap().1;
        let cells = field("cells").as_array("cells").unwrap();
        assert_eq!(cells.len(), 2);
        // Single-policy, single-arm sweep: nothing dedups, so the plan
        // cache reports only misses — but the counters must be present.
        let misses = field("plan_cache_misses").as_f64("misses").unwrap();
        assert!(misses > 0.0, "planning slots must be counted");
        assert_eq!(field("forecast_cache_hits").as_f64("fh").unwrap(), 0.0);
        let seed_of = |cell: &Value| {
            let fields = cell.as_object("cell").unwrap();
            fields
                .iter()
                .find(|(k, _)| k == "seed")
                .unwrap()
                .1
                .as_u64("seed")
                .unwrap()
        };
        assert_eq!(seed_of(&cells[0]), 1);
        assert_eq!(seed_of(&cells[1]), 2);
        let backend_of = |cell: &Value| {
            let fields = cell.as_object("cell").unwrap();
            fields
                .iter()
                .find(|(k, _)| k == "backend")
                .unwrap()
                .1
                .as_string("backend")
                .unwrap()
                .to_string()
        };
        assert_eq!(backend_of(&cells[0]), "analytic");
        let groups = field("groups").as_array("groups").unwrap();
        assert_eq!(groups.len(), 1);
        let group = groups[0].as_object("group").unwrap();
        let runs = &group.iter().find(|(k, _)| k == "runs").unwrap().1;
        assert_eq!(runs.as_f64("runs").unwrap(), 2.0);
        let energy = &group.iter().find(|(k, _)| k == "energy_mj").unwrap().1;
        assert!(energy.as_object("energy").is_ok(), "mean/std object");
    }
}
