//! The engine's failure model: per-cell error capture, sweep-level
//! failure policies, and deterministic fault injection.
//!
//! Every cell of a sweep is an independent run, so one misbehaving cell
//! must never cost the results of the others. The engine wraps each
//! cell in [`std::panic::catch_unwind`] and converts both panics and
//! structured [`ntc_core::Error`]s into a [`CellError`] carrying the
//! cell's spec-order index, its label and full [`CellSpec`] identity,
//! the pipeline [`CellStage`] that was executing, and the cause. A
//! [`SweepResult`](crate::SweepResult) then holds the partial results:
//! completed cells in `cells`, failures in `failures`, with
//! [`failed`](crate::SweepResult::failed) /
//! [`succeeded`](crate::SweepResult::succeeded) accessors.
//!
//! What happens to the *rest* of the sweep is the spec's
//! [`FailurePolicy`]: [`KeepGoing`](FailurePolicy::KeepGoing) (the
//! default) finishes every remaining cell and reports the failures
//! alongside the results; [`FailFast`](FailurePolicy::FailFast) raises
//! a shared abort flag so unstarted cells are skipped (reported as
//! [`FailureCause::Skipped`]).
//!
//! # Fault injection
//!
//! The isolation guarantee is only worth having if it is provable, so
//! the engine carries a deterministic fault-injection instrument:
//! [`Engine::inject_fault`](crate::Engine::inject_fault) arms a
//! [`FaultSpec`] that panics (or reports an error) the moment the
//! targeted cell enters the targeted stage. The integration tests
//! fault one cell of a multi-cell sweep and assert every other cell is
//! bit-identical to a clean run — which holds because all cross-cell
//! caches are `OnceLock`-based: a panicking initializer leaves the
//! lock unset, and any sibling re-initializes it from the same pure
//! function of the spec.
//!
//! # Stage tracking
//!
//! Workers record the stage they are executing in a thread-local
//! ([`enter`]); a cell runs entirely on one worker, so when a panic is
//! caught the thread-local still names the stage that was active. The
//! same hook is where armed panic faults fire, which keeps the
//! injection points and the attribution points identical by
//! construction.

use std::cell::Cell;

use ntc_core::Error;
use serde::{Deserialize, Serialize};

use crate::engine::CellSpec;

/// The stages of one cell's evaluation, as the failure model reports
/// them: the engine-side [`Fleet`](CellStage::Fleet) (trace
/// generation) and [`Setup`](CellStage::Setup) (backend + simulator
/// construction) stages, then the four stages of the
/// [`WeekSim`](crate::WeekSim) slot pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellStage {
    /// Generating (or fetching from the shared cache) the cell's fleet.
    Fleet,
    /// Building the accounting backend, policy and simulator.
    Setup,
    /// The day-ahead forecast stage of the slot pipeline (never entered
    /// by oracle sweeps, which plan from the actual traces).
    Forecast,
    /// The plan stage: the policy packs VMs and fixes the DVFS band.
    Plan,
    /// The govern stage: the online governor settles operating points.
    Govern,
    /// The account stage: the backend prices the governed slot.
    Account,
}

impl CellStage {
    /// Short display tag, also used in sweep JSON and the CLI table.
    pub fn label(&self) -> &'static str {
        match self {
            CellStage::Fleet => "fleet",
            CellStage::Setup => "setup",
            CellStage::Forecast => "forecast",
            CellStage::Plan => "plan",
            CellStage::Govern => "govern",
            CellStage::Account => "account",
        }
    }
}

impl std::fmt::Display for CellStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How a [`FaultSpec`] manifests when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Panic with an "injected fault" payload — exercises the
    /// `catch_unwind` capture path.
    Panic,
    /// Report [`ntc_core::Error::FaultInjected`] from a fallible stage
    /// — exercises the structured-error capture path. Only the
    /// [`Fleet`](CellStage::Fleet) and [`Setup`](CellStage::Setup)
    /// stages have a fallible path; error faults armed deeper in the
    /// pipeline never fire.
    Error,
}

/// A deliberate fault in one cell of a sweep: the test-only injection
/// instrument behind [`Engine::inject_fault`](crate::Engine::inject_fault).
///
/// Firing is deterministic — the fault triggers the first time cell
/// `cell` enters stage `stage`, wherever the scheduler placed that
/// cell — so a faulted sweep is exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Spec-order index of the targeted cell.
    pub cell: usize,
    /// The pipeline stage at which the fault fires.
    pub stage: CellStage,
    /// Panic or structured error.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// A fault that panics when cell `cell` enters `stage`.
    pub fn panic_at(cell: usize, stage: CellStage) -> Self {
        Self {
            cell,
            stage,
            kind: FaultKind::Panic,
        }
    }

    /// A fault that makes cell `cell`'s setup stage report
    /// [`ntc_core::Error::FaultInjected`] instead of panicking.
    pub fn error_at(cell: usize) -> Self {
        Self {
            cell,
            stage: CellStage::Setup,
            kind: FaultKind::Error,
        }
    }
}

/// What to do with the rest of a sweep once one cell has failed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailurePolicy {
    /// Finish every remaining cell and report the failures alongside
    /// the completed results (the default).
    #[default]
    KeepGoing,
    /// Raise a shared abort flag: cells not yet started are skipped
    /// (reported as [`FailureCause::Skipped`]); cells already running
    /// finish normally.
    FailFast,
}

impl FailurePolicy {
    /// Short display tag, also the spec-JSON encoding.
    pub fn label(&self) -> &'static str {
        match self {
            FailurePolicy::KeepGoing => "keep_going",
            FailurePolicy::FailFast => "fail_fast",
        }
    }
}

/// Why a cell failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureCause {
    /// The cell panicked; the payload is rendered to a string.
    Panic {
        /// The stage that was executing when the panic unwound.
        stage: CellStage,
        /// The panic payload (or a placeholder for non-string payloads).
        payload: String,
    },
    /// A fallible stage reported a structured error.
    Error {
        /// The stage that reported the error.
        stage: CellStage,
        /// The structured error.
        error: Error,
    },
    /// The cell never ran: an earlier failure aborted the sweep under
    /// [`FailurePolicy::FailFast`].
    Skipped,
}

/// One failed (or skipped) cell of a sweep, with enough context to act
/// on: which cell (index + label + full spec identity), which pipeline
/// stage, and the panic payload or structured error.
#[derive(Debug, Clone, PartialEq)]
pub struct CellError {
    /// Spec-order index of the cell ([`ExperimentSpec::cells`]
    /// order).
    ///
    /// [`ExperimentSpec::cells`]: crate::ExperimentSpec::cells
    pub index: usize,
    /// The cell's display label (e.g. `EPACT/NTC/sp0.50`).
    pub label: String,
    /// The cell's full identity: fleet, scale, policy, server, floor,
    /// backend.
    pub cell: CellSpec,
    /// Why the cell failed.
    pub cause: FailureCause,
}

impl CellError {
    pub(crate) fn new(index: usize, cell: CellSpec, label: String, cause: FailureCause) -> Self {
        Self {
            index,
            label,
            cell,
            cause,
        }
    }

    /// The stage that was executing when the cell failed, or `None`
    /// for a cell skipped by fail-fast before it started.
    pub fn stage(&self) -> Option<CellStage> {
        match &self.cause {
            FailureCause::Panic { stage, .. } | FailureCause::Error { stage, .. } => Some(*stage),
            FailureCause::Skipped => None,
        }
    }

    /// Short tag for the failure class: `"panic"`, `"error"` or
    /// `"skipped"`.
    pub fn kind_label(&self) -> &'static str {
        match &self.cause {
            FailureCause::Panic { .. } => "panic",
            FailureCause::Error { .. } => "error",
            FailureCause::Skipped => "skipped",
        }
    }

    /// Human-readable description of the cause alone (the panic
    /// payload, the error's `Display` text, or the skip notice).
    pub fn message(&self) -> String {
        match &self.cause {
            FailureCause::Panic { payload, .. } => payload.clone(),
            FailureCause::Error { error, .. } => error.to_string(),
            FailureCause::Skipped => "aborted by fail-fast before starting".to_string(),
        }
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.stage() {
            Some(stage) => write!(
                f,
                "cell {} ({}) {} at stage {stage}: {}",
                self.index,
                self.label,
                match self.cause {
                    FailureCause::Panic { .. } => "panicked",
                    _ => "failed",
                },
                self.message()
            ),
            None => write!(f, "cell {} ({}) {}", self.index, self.label, self.message()),
        }
    }
}

impl std::error::Error for CellError {}

thread_local! {
    /// The stage the calling worker is currently executing. A cell
    /// runs entirely on one worker thread, so this is exact at
    /// panic-capture time.
    static CURRENT_STAGE: Cell<CellStage> = const { Cell::new(CellStage::Fleet) };
    /// The fault armed for the cell currently running on this worker.
    static ARMED: Cell<Option<(CellStage, FaultKind)>> = const { Cell::new(None) };
}

/// Marks the calling worker as executing `stage` of its current cell,
/// and fires an armed panic fault targeting that stage. Called by the
/// engine (fleet/setup) and by the [`WeekSim`](crate::WeekSim) slot
/// pipeline (forecast/plan/govern/account); the cost is two
/// thread-local accesses, far below per-stage work.
pub(crate) fn enter(stage: CellStage) {
    CURRENT_STAGE.with(|s| s.set(stage));
    if let Some((at, FaultKind::Panic)) = ARMED.with(Cell::get) {
        if at == stage {
            ARMED.with(|a| a.set(None)); // fire exactly once
            panic!("injected fault at stage {stage}");
        }
    }
}

/// The injected structured error for `stage` and `cell`, if an
/// error-kind fault targeting it is armed. Consulted only on the
/// fallible engine-side stages.
pub(crate) fn injected_error(stage: CellStage, cell: usize) -> Option<Error> {
    match ARMED.with(Cell::get) {
        Some((at, FaultKind::Error)) if at == stage => {
            ARMED.with(|a| a.set(None));
            Some(Error::FaultInjected { cell })
        }
        _ => None,
    }
}

/// Arms `fault` on the calling worker if it targets cell `index`, and
/// resets the stage tracker for the new cell.
pub(crate) fn arm(fault: Option<&FaultSpec>, index: usize) {
    CURRENT_STAGE.with(|s| s.set(CellStage::Fleet));
    let armed = fault.filter(|f| f.cell == index).map(|f| (f.stage, f.kind));
    ARMED.with(|a| a.set(armed));
}

/// Disarms any remaining fault after a cell finishes (fired or not).
pub(crate) fn disarm() {
    ARMED.with(|a| a.set(None));
}

/// The stage the calling worker last entered — read by the engine
/// right after catching a panic to attribute it.
pub(crate) fn current_stage() -> CellStage {
    CURRENT_STAGE.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_labels_are_stable() {
        let stages = [
            CellStage::Fleet,
            CellStage::Setup,
            CellStage::Forecast,
            CellStage::Plan,
            CellStage::Govern,
            CellStage::Account,
        ];
        let labels: Vec<_> = stages.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            ["fleet", "setup", "forecast", "plan", "govern", "account"]
        );
        assert_eq!(FailurePolicy::KeepGoing.label(), "keep_going");
        assert_eq!(FailurePolicy::FailFast.label(), "fail_fast");
        assert_eq!(FailurePolicy::default(), FailurePolicy::KeepGoing);
    }

    #[test]
    fn armed_panic_fault_fires_once_at_its_stage() {
        arm(Some(&FaultSpec::panic_at(3, CellStage::Govern)), 3);
        enter(CellStage::Plan); // wrong stage: no fire
        let caught = std::panic::catch_unwind(|| enter(CellStage::Govern));
        assert!(caught.is_err(), "the armed stage must panic");
        assert_eq!(current_stage(), CellStage::Govern);
        enter(CellStage::Govern); // disarmed after firing
        disarm();
    }

    #[test]
    fn fault_for_another_cell_never_arms() {
        arm(Some(&FaultSpec::panic_at(7, CellStage::Plan)), 3);
        enter(CellStage::Plan);
        assert_eq!(current_stage(), CellStage::Plan);
        disarm();
    }

    #[test]
    fn error_fault_reports_fault_injected() {
        arm(Some(&FaultSpec::error_at(2)), 2);
        assert_eq!(injected_error(CellStage::Fleet, 2), None);
        assert_eq!(
            injected_error(CellStage::Setup, 2),
            Some(Error::FaultInjected { cell: 2 })
        );
        // fired once, then disarmed
        assert_eq!(injected_error(CellStage::Setup, 2), None);
        disarm();
    }
}
