//! Pluggable slot-accounting backends — the **account** stage of the
//! slot pipeline.
//!
//! [`WeekSim`](crate::WeekSim) evaluates each hourly slot in four
//! stages: *forecast* (day-ahead predictions), *plan* (the allocation
//! policy packs VMs and fixes the DVFS band), *govern* (the online
//! governor settles one [`GovernedSample`] operating point per active
//! server per 5-minute sample) and *account* (an implementation of
//! [`SlotBackend`] prices those operating points into energy and QoS
//! violations). The first three stages are shared by every backend;
//! only the pricing differs:
//!
//! * [`AnalyticBackend`] integrates the paper's §IV analytic
//!   [`ServerPowerModel`] — the evaluation path of §VI-C, and the
//!   default;
//! * [`ArchsimBackend`] drives the [`ntc_archsim`] interval-model
//!   server simulator per operating point, replacing the analytic
//!   wait-for-memory and bandwidth heuristics with the converged
//!   contention model and adding Table-I-style QoS degradation checks
//!   against the x86 baseline.
//!
//! # The backend contract (cache soundness)
//!
//! The engine's [`PlanCache`](crate::cache) and `ForecastCache` share
//! plans and day-ahead forecasts across every cell whose *planning
//! inputs* coincide — including cells that differ only in backend. That
//! sharing is sound if and only if a backend **conserves the upstream
//! stages**: it may read the governed operating points but must not
//! influence what is forecast, how VMs are packed, or which frequency
//! the governor picks. Concretely, `account` must be a pure function of
//! `(server model, governed slot)` — no feedback into planning state.
//!
//! A backend that *does* parameterize planning (say, a future
//! latency-aware packer) must surface every planning-relevant parameter
//! through [`BackendSpec::planning_inputs`], which is folded into the
//! plan-group fingerprint: distinct fingerprints get distinct plan
//! groups, and the dedup stays sound. Both built-in backends are pure
//! accounting, so their fingerprints are empty and an
//! `analytic`+`archsim` sweep plans each (fleet, policy) arm exactly
//! once.

use std::collections::HashMap;
use std::sync::Mutex;

use ntc_archsim::qos::QosBaseline;
use ntc_archsim::{Kernel, Platform, ServerSim};
use ntc_core::GovernedSample;
use ntc_power::{ServerLoad, ServerPowerModel};
use ntc_units::{Energy, Frequency, Percent, Seconds};
use ntc_workload::MemClass;
use serde::{Deserialize, Serialize};

use crate::engine::ServerSpec;

/// The govern stage's output for one slot: per active server, its
/// dominant (worst-case) hosted memory class and one
/// [`GovernedSample`] per 5-minute sample, in server-major order.
///
/// Stored flat and reused across all 168 slots of a run, so the hot
/// loop allocates nothing once the buffers reach steady size.
#[derive(Debug, Default)]
pub struct GovernedSlot {
    classes: Vec<MemClass>,
    samples: Vec<GovernedSample>,
    samples_per_server: usize,
    sample_period: Seconds,
}

impl GovernedSlot {
    /// An empty slot buffer; fill it with [`reset`](Self::reset) /
    /// [`push_server`](Self::push_server) /
    /// [`push_sample`](Self::push_sample).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the buffers and fixes this slot's sample geometry.
    pub fn reset(&mut self, sample_period: Seconds, samples_per_server: usize) {
        self.classes.clear();
        self.samples.clear();
        self.samples_per_server = samples_per_server.max(1);
        self.sample_period = sample_period;
    }

    /// Opens the next active server; its samples follow via
    /// [`push_sample`](Self::push_sample).
    pub fn push_server(&mut self, class: MemClass) {
        self.classes.push(class);
    }

    /// Appends one governed sample to the most recently pushed server.
    pub fn push_sample(&mut self, sample: GovernedSample) {
        self.samples.push(sample);
    }

    /// Wall-clock duration of one sample (5 minutes on the paper grid).
    pub fn sample_period(&self) -> Seconds {
        self.sample_period
    }

    /// Number of active servers in the slot.
    pub fn num_servers(&self) -> usize {
        self.classes.len()
    }

    /// Iterates the active servers as (dominant class, samples) pairs,
    /// in the same server-major order they were pushed.
    pub fn servers(&self) -> impl Iterator<Item = (MemClass, &[GovernedSample])> + '_ {
        self.classes
            .iter()
            .copied()
            .zip(self.samples.chunks(self.samples_per_server))
    }
}

/// What a backend returns for one slot: the accounting totals the week
/// outcome is built from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotAccounts {
    /// Server-samples in violation (demand beyond the ceiling, memory
    /// overflow, or — backend-dependent — a missed QoS bound).
    pub violations: usize,
    /// Energy integrated over the slot.
    pub energy: Energy,
    /// Sum of served frequencies over all active server-samples, MHz.
    pub freq_sum_mhz: f64,
    /// Active server-samples priced (the divisor for the mean).
    pub freq_count: usize,
}

impl SlotAccounts {
    /// All-zero accounts, the fold identity.
    pub fn empty() -> Self {
        Self {
            violations: 0,
            energy: Energy::ZERO,
            freq_sum_mhz: 0.0,
            freq_count: 0,
        }
    }

    /// Mean served frequency over the slot (zero when no server ran).
    pub fn mean_freq(&self) -> Frequency {
        if self.freq_count == 0 {
            Frequency::ZERO
        } else {
            Frequency::from_mhz(self.freq_sum_mhz / self.freq_count as f64)
        }
    }
}

impl Default for SlotAccounts {
    fn default() -> Self {
        Self::empty()
    }
}

/// The account stage: prices a governed slot into energy, violations
/// and frequency statistics. See the [module docs](self) for the
/// conservation contract an implementation must honour.
pub trait SlotBackend: std::fmt::Debug {
    /// Short identity label (`"analytic"`, `"archsim"`).
    fn name(&self) -> &'static str;

    /// Prices one governed slot against `server`'s power model.
    ///
    /// Must be a pure function of its arguments (memoization of pure
    /// sub-results is fine) and must iterate server-major,
    /// sample-minor so floating-point accumulation order is
    /// deterministic.
    fn account(&self, server: &ServerPowerModel, slot: &GovernedSlot) -> SlotAccounts;
}

/// The paper's analytic accounting (§VI-C): every governed sample is
/// priced through [`ServerPowerModel::power`], and violations are the
/// govern stage's demand violations. This is bit-identical to the
/// pre-pipeline monolithic `WeekSim` loop — the golden regression test
/// in `tests/engine_sweep.rs` pins it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyticBackend;

impl SlotBackend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn account(&self, server: &ServerPowerModel, slot: &GovernedSlot) -> SlotAccounts {
        let mut acc = SlotAccounts::empty();
        let period = slot.sample_period();
        for (_, samples) in slot.servers() {
            for s in samples {
                if s.demand_violated {
                    acc.violations += 1;
                }
                let p = server.power(s.freq, s.cpu_util, s.mem_util);
                acc.energy += p * period;
                acc.freq_sum_mhz += s.freq.as_mhz();
                acc.freq_count += 1;
            }
        }
        acc
    }
}

/// One converged interval-model operating point, memoized per
/// (memory class, frequency): the quantities `account` reads per
/// sample.
#[derive(Debug, Clone, Copy)]
struct SimPoint {
    /// Fraction of busy cycles stalled waiting for memory.
    wfm_fraction: f64,
    /// Chip-wide DRAM read bandwidth at full load, bytes/s.
    read_bytes_per_sec: f64,
    /// Chip-wide LLC accesses at full load, per second.
    llc_accesses_per_sec: f64,
    /// Whether the class meets the 2× QoS degradation bound here.
    qos_met: bool,
}

/// Detailed accounting through the [`ntc_archsim`] interval model.
///
/// Per governed sample, the dominant hosted memory class is run through
/// [`ServerSim`] at the served frequency (memoized — at most
/// `classes × DVFS levels` simulations per run). The converged
/// wait-for-memory fraction and realized DRAM/LLC traffic replace the
/// analytic model's fixed heuristics in the [`ServerLoad`], scaled by
/// the server's busy fraction, and a sample whose class misses the 2×
/// QoS degradation bound ([`QosBaseline::paper_table1`]) at its served
/// frequency counts as a violation on top of the demand violations.
///
/// This struct is also the crate's single archsim entry point: the
/// figure/table runners in [`crate::experiments`] query
/// [`exec_time`](Self::exec_time) /
/// [`normalized_time`](Self::normalized_time) /
/// [`min_qos_frequency`](Self::min_qos_frequency) instead of touching
/// `ServerSim` directly.
#[derive(Debug)]
pub struct ArchsimBackend {
    sim: ServerSim,
    baseline: QosBaseline,
    memo: Mutex<HashMap<(u8, u64), SimPoint>>,
}

impl ArchsimBackend {
    /// A backend simulating `platform`, judged against the published
    /// Table I x86 baseline times.
    pub fn new(platform: Platform) -> Self {
        Self {
            sim: ServerSim::new(platform),
            baseline: QosBaseline::paper_table1(),
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// The proposed 16-core NTC server (Table 1).
    pub fn ntc() -> Self {
        Self::new(Platform::ntc_server())
    }

    /// The Xeon X5650 QoS-reference host itself.
    pub fn x86_baseline() -> Self {
        Self::new(Platform::xeon_x5650())
    }

    /// The underlying interval-model simulator.
    pub fn sim(&self) -> &ServerSim {
        &self.sim
    }

    /// The QoS baseline the backend judges degradation against.
    pub fn baseline(&self) -> &QosBaseline {
        &self.baseline
    }

    /// Execution time of `kernel` on this platform at `f`.
    pub fn exec_time(&self, kernel: &Kernel, f: Frequency) -> Seconds {
        self.sim.run(kernel, f).exec_time
    }

    /// Execution time normalized to the QoS limit (≤ 1.0 meets QoS) —
    /// the y-axis of Fig. 2.
    pub fn normalized_time(&self, kernel: &Kernel, f: Frequency) -> f64 {
        self.baseline.normalized_time(&self.sim, kernel, f)
    }

    /// The lowest of `levels` at which `kernel` still meets QoS, or
    /// `None` if none does.
    pub fn min_qos_frequency(&self, kernel: &Kernel, levels: &[Frequency]) -> Option<Frequency> {
        self.baseline.min_qos_frequency(&self.sim, kernel, levels)
    }

    /// The memoized operating point of `class` at `f`. The governor
    /// serves a handful of discrete DVFS levels, so the table stays
    /// tiny and each (class, level) pair converges the interval model
    /// exactly once per run.
    fn point(&self, class: MemClass, f: Frequency) -> SimPoint {
        let key = (mem_class_rank(class), f.as_mhz().to_bits());
        let mut memo = self.memo.lock().expect("archsim memo never poisoned");
        if let Some(p) = memo.get(&key) {
            return *p;
        }
        let kernel =
            Kernel::by_name(class.kernel_name()).expect("every MemClass maps to a paper kernel");
        let out = self.sim.run(&kernel, f);
        let point = SimPoint {
            wfm_fraction: out.wfm_fraction,
            read_bytes_per_sec: out.dram_read_bytes_per_sec,
            llc_accesses_per_sec: out.llc_accesses_per_sec,
            qos_met: out.exec_time / self.baseline.qos_limit(&kernel) <= 1.0,
        };
        memo.insert(key, point);
        point
    }
}

impl SlotBackend for ArchsimBackend {
    fn name(&self) -> &'static str {
        "archsim"
    }

    fn account(&self, server: &ServerPowerModel, slot: &GovernedSlot) -> SlotAccounts {
        let mut acc = SlotAccounts::empty();
        let period = slot.sample_period();
        for (class, samples) in slot.servers() {
            for s in samples {
                let point = self.point(class, s.freq);
                if s.demand_violated || !point.qos_met {
                    acc.violations += 1;
                }
                // Scale the full-load chip traffic by the busy
                // fraction; the 80/20 read/write LLC split matches the
                // analytic model's first-order coupling.
                let busy = s.cpu_util.as_fraction();
                let wfm = Percent::new(s.cpu_util.value() * point.wfm_fraction);
                let load = ServerLoad {
                    cpu_active: s.cpu_util - wfm,
                    cpu_wfm: wfm,
                    mem_active: s.mem_util,
                    read_bytes_per_sec: point.read_bytes_per_sec * busy,
                    llc_reads_per_sec: point.llc_accesses_per_sec * busy * 0.8,
                    llc_writes_per_sec: point.llc_accesses_per_sec * busy * 0.2,
                };
                let p = server.power_at(s.freq, &load);
                acc.energy += p * period;
                acc.freq_sum_mhz += s.freq.as_mhz();
                acc.freq_count += 1;
            }
        }
        acc
    }
}

/// Stable ordering of the memory classes by footprint, used both for
/// memo keys and to pick a server's dominant (worst-case) class.
pub(crate) fn mem_class_rank(class: MemClass) -> u8 {
    match class {
        MemClass::Low => 0,
        MemClass::Mid => 1,
        MemClass::High => 2,
    }
}

/// An accounting backend in the sweep's backend set — the sixth cell
/// axis of [`ExperimentSpec`](crate::ExperimentSpec).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendSpec {
    /// The analytic §IV power-model integration (the default; legacy
    /// specs without a backend axis parse as this).
    #[default]
    Analytic,
    /// The interval-model archsim accounting with QoS degradation.
    Archsim,
}

impl BackendSpec {
    /// Short display label, also the CLI / JSON tag.
    pub fn label(&self) -> &'static str {
        match self {
            BackendSpec::Analytic => "analytic",
            BackendSpec::Archsim => "archsim",
        }
    }

    /// Instantiates the backend for `server`'s platform, reporting
    /// construction failures as a structured
    /// [`ntc_core::Error::BackendInit`] instead of panicking — the
    /// experiment engine turns these into per-cell failures
    /// ([`CellError`](crate::CellError)) so one misconfigured backend
    /// arm cannot tear down a sweep.
    ///
    /// For archsim, every memory class's kernel mapping is resolved
    /// here, up front: a missing kernel surfaces as a setup-stage
    /// error rather than a panic in the account stage's memo fill.
    ///
    /// # Errors
    ///
    /// Returns [`ntc_core::Error::BackendInit`] if the backend cannot
    /// serve `server`'s platform.
    pub fn try_build(&self, server: ServerSpec) -> Result<Box<dyn SlotBackend>, ntc_core::Error> {
        match self {
            BackendSpec::Analytic => Ok(Box::new(AnalyticBackend)),
            BackendSpec::Archsim => {
                for class in [MemClass::Low, MemClass::Mid, MemClass::High] {
                    if Kernel::by_name(class.kernel_name()).is_none() {
                        return Err(ntc_core::Error::BackendInit {
                            backend: self.label().to_string(),
                            reason: format!(
                                "no archsim kernel named {:?} for memory class {class:?}",
                                class.kernel_name()
                            ),
                        });
                    }
                }
                Ok(Box::new(match server {
                    ServerSpec::Ntc => ArchsimBackend::ntc(),
                    ServerSpec::Conventional => ArchsimBackend::x86_baseline(),
                }))
            }
        }
    }

    /// Instantiates the backend for `server`'s platform.
    ///
    /// # Panics
    ///
    /// Panics if construction fails — use
    /// [`try_build`](Self::try_build) where a structured error is
    /// wanted (the engine does).
    pub fn build(&self, server: ServerSpec) -> Box<dyn SlotBackend> {
        self.try_build(server).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The backend's planning-relevant parameters as f64 bit patterns,
    /// folded into the plan-group fingerprint (see the
    /// [module docs](self)). Both built-ins conserve planning, so both
    /// return an empty fingerprint and share plans freely.
    pub fn planning_inputs(&self) -> Vec<u64> {
        Vec::new()
    }
}

impl std::fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for BackendSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "analytic" => Ok(BackendSpec::Analytic),
            "archsim" => Ok(BackendSpec::Archsim),
            other => Err(format!(
                "unknown backend {other:?} (expected analytic or archsim)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_core::DvfsGovernor;

    fn governed_slot(model: &ServerPowerModel, class: MemClass, demands: &[f64]) -> GovernedSlot {
        let gov = DvfsGovernor::new(model);
        let mut slot = GovernedSlot::new();
        slot.reset(Seconds::new(300.0), demands.len());
        slot.push_server(class);
        for &d in demands {
            slot.push_sample(gov.govern_sample(d, 20.0, model.fmax(), model.fmin(), None));
        }
        slot
    }

    #[test]
    fn analytic_matches_direct_power_math() {
        let model = ServerPowerModel::ntc();
        let slot = governed_slot(&model, MemClass::Low, &[10.0, 55.0, 97.0]);
        let acc = AnalyticBackend.account(&model, &slot);
        let mut energy = Energy::ZERO;
        for (_, samples) in slot.servers() {
            for s in samples {
                energy += model.power(s.freq, s.cpu_util, s.mem_util) * Seconds::new(300.0);
            }
        }
        assert_eq!(acc.energy, energy);
        assert_eq!(acc.violations, 0);
        assert_eq!(acc.freq_count, 3);
    }

    #[test]
    fn governed_slot_iterates_server_major() {
        let model = ServerPowerModel::ntc();
        let gov = DvfsGovernor::new(&model);
        let mut slot = GovernedSlot::new();
        slot.reset(Seconds::new(300.0), 2);
        for class in [MemClass::Low, MemClass::High] {
            slot.push_server(class);
            for d in [5.0, 80.0] {
                slot.push_sample(gov.govern_sample(d, 10.0, model.fmax(), model.fmin(), None));
            }
        }
        let servers: Vec<_> = slot.servers().collect();
        assert_eq!(servers.len(), 2);
        assert_eq!(servers[0].0, MemClass::Low);
        assert_eq!(servers[1].0, MemClass::High);
        assert_eq!(servers[0].1.len(), 2);
        assert_eq!(slot.num_servers(), 2);
    }

    #[test]
    fn archsim_flags_qos_misses_the_analytic_backend_ignores() {
        // A high-mem server at a deep near-threshold frequency is far
        // beyond the 2x degradation bound: archsim must count the
        // violation, analytic must not (demand itself is servable).
        let model = ServerPowerModel::ntc();
        let gov = DvfsGovernor::new(&model);
        let mut slot = GovernedSlot::new();
        slot.reset(Seconds::new(300.0), 1);
        slot.push_server(MemClass::High);
        // tiny demand -> the governor picks the lowest level
        slot.push_sample(gov.govern_sample(0.5, 5.0, model.fmax(), model.fmin(), None));
        let analytic = AnalyticBackend.account(&model, &slot);
        let archsim = ArchsimBackend::ntc().account(&model, &slot);
        assert_eq!(analytic.violations, 0);
        assert_eq!(archsim.violations, 1, "high-mem at fmin must miss QoS");
        assert!(archsim.energy > Energy::ZERO);
    }

    #[test]
    fn archsim_memoizes_operating_points() {
        let backend = ArchsimBackend::ntc();
        let model = ServerPowerModel::ntc();
        let slot = governed_slot(&model, MemClass::Mid, &[40.0; 12]);
        let _ = backend.account(&model, &slot);
        // 12 identical samples converge the interval model once.
        assert_eq!(backend.memo.lock().unwrap().len(), 1);
        let again = backend.account(&model, &slot);
        let first = backend.account(&model, &slot);
        assert_eq!(again, first, "memoized accounting must be stable");
    }

    #[test]
    fn backend_spec_round_trips_labels() {
        for spec in [BackendSpec::Analytic, BackendSpec::Archsim] {
            let parsed: BackendSpec = spec.label().parse().unwrap();
            assert_eq!(parsed, spec);
            assert_eq!(spec.to_string(), spec.label());
        }
        assert!("gem5".parse::<BackendSpec>().is_err());
        assert!(BackendSpec::default() == BackendSpec::Analytic);
        assert!(BackendSpec::Archsim.planning_inputs().is_empty());
    }

    #[test]
    fn try_build_resolves_every_memory_class_kernel() {
        // The archsim kernel mapping is validated at construction, so
        // the account-stage memo fill can never hit a missing kernel.
        for spec in [BackendSpec::Analytic, BackendSpec::Archsim] {
            for server in [ServerSpec::Ntc, ServerSpec::Conventional] {
                assert!(spec.try_build(server).is_ok(), "{spec}/{server:?}");
            }
        }
    }

    #[test]
    fn built_backends_report_their_names() {
        assert_eq!(
            BackendSpec::Analytic.build(ServerSpec::Ntc).name(),
            "analytic"
        );
        assert_eq!(
            BackendSpec::Archsim.build(ServerSpec::Conventional).name(),
            "archsim"
        );
    }
}
