//! JSON (de)serialization for [`ExperimentSpec`] — the on-disk form the
//! CLI `sweep` subcommand reads and writes — plus the crate's shared
//! JSON [`Value`] writer that [`export`](crate::export) reuses for
//! result emission, so there is exactly one JSON emitter in the tree.
//!
//! # Examples
//!
//! ```
//! use ntc_datacenter::{spec_json, ExperimentSpec};
//!
//! let spec = ExperimentSpec::default_sweep();
//! let text = spec_json::to_json(&spec);
//! assert_eq!(spec_json::from_json(&text).unwrap(), spec);
//! ```

use crate::backend::BackendSpec;
use crate::engine::{
    AblationFlags, ExperimentSpec, FleetSpec, PolicySpec, PredictorSpec, ServerSpec,
};
use crate::fault::FailurePolicy;

/// Renders `spec` as pretty-printed JSON.
pub fn to_json(spec: &ExperimentSpec) -> String {
    let fleets = spec.fleets.iter().map(fleet_value).collect();
    let policies = spec
        .policies
        .iter()
        .map(|&p| Value::String(policy_tag(p).to_string()))
        .collect();
    let servers = spec
        .servers
        .iter()
        .map(|&s| Value::String(server_tag(s).to_string()))
        .collect();
    let floors = spec
        .qos_floors_mhz
        .iter()
        .map(|f| match f {
            Some(mhz) => Value::Number(*mhz),
            None => Value::Null,
        })
        .collect();
    let scales = spec
        .static_power_scales
        .iter()
        .map(|&s| Value::Number(s))
        .collect();
    let backends = spec
        .backends
        .iter()
        .map(|&b| Value::String(b.label().to_string()))
        .collect();
    Value::Object(vec![
        ("name".into(), Value::String(spec.name.clone())),
        ("fleets".into(), Value::Array(fleets)),
        ("policies".into(), Value::Array(policies)),
        ("servers".into(), Value::Array(servers)),
        ("qos_floors_mhz".into(), Value::Array(floors)),
        ("static_power_scales".into(), Value::Array(scales)),
        ("backends".into(), Value::Array(backends)),
        (
            "predictor".into(),
            Value::String(predictor_tag(spec.predictor).to_string()),
        ),
        ("max_servers".into(), Value::Number(spec.max_servers as f64)),
        (
            "correlation_only".into(),
            Value::Bool(spec.ablation.correlation_only),
        ),
        (
            "failure_policy".into(),
            Value::String(spec.failure_policy.label().to_string()),
        ),
    ])
    .render()
}

fn fleet_value(fleet: &FleetSpec) -> Value {
    Value::Object(vec![
        ("num_vms".into(), Value::Number(fleet.num_vms as f64)),
        ("seed".into(), Value::Number(fleet.seed as f64)),
        ("weeks".into(), Value::Number(fleet.weeks as f64)),
    ])
}

fn parse_fleet(val: &Value, path: &str) -> Result<FleetSpec, String> {
    let mut fleet = FleetSpec {
        num_vms: 0,
        seed: 0,
        weeks: 2,
    };
    for (fkey, fval) in val.as_object(path)? {
        match fkey.as_str() {
            "num_vms" => fleet.num_vms = fval.as_usize(&format!("{path}.num_vms"))?,
            "seed" => fleet.seed = fval.as_u64(&format!("{path}.seed"))?,
            "weeks" => fleet.weeks = fval.as_usize(&format!("{path}.weeks"))?,
            other => return Err(format!("unknown field {path}.{other}")),
        }
    }
    Ok(fleet)
}

/// Parses a spec from JSON text.
///
/// Unknown fields are rejected, missing fields report their path. A
/// legacy single-fleet spec (`"fleet": {...}` instead of the
/// `"fleets": [...]` axis, no `static_power_scales`) parses into the
/// equivalent one-fleet, scale-1.0 sweep, and a spec without a
/// `backends` array (or with an empty one) defaults to the analytic
/// backend.
///
/// # Errors
///
/// Returns a human-readable message describing the first syntax or
/// schema problem encountered.
pub fn from_json(text: &str) -> Result<ExperimentSpec, String> {
    let value = parse_value(text)?;
    let obj = value.as_object("spec")?;
    let mut spec = ExperimentSpec {
        name: String::new(),
        fleets: Vec::new(),
        static_power_scales: Vec::new(),
        policies: Vec::new(),
        servers: Vec::new(),
        qos_floors_mhz: Vec::new(),
        backends: Vec::new(),
        predictor: PredictorSpec::Oracle,
        max_servers: 0,
        ablation: AblationFlags::default(),
        // Legacy specs predate the failure model: keep going, as the
        // old engine effectively promised for clean sweeps.
        failure_policy: FailurePolicy::default(),
    };
    let mut seen_fleet = false;
    let mut seen_fleets = false;
    for (key, val) in obj {
        match key.as_str() {
            "name" => spec.name = val.as_string("name")?.to_string(),
            // Legacy single-fleet form, kept parseable forever.
            "fleet" => {
                seen_fleet = true;
                spec.fleets.push(parse_fleet(val, "fleet")?);
            }
            "fleets" => {
                seen_fleets = true;
                for (i, item) in val.as_array("fleets")?.iter().enumerate() {
                    spec.fleets
                        .push(parse_fleet(item, &format!("fleets[{i}]"))?);
                }
            }
            "policies" => {
                for (i, item) in val.as_array("policies")?.iter().enumerate() {
                    let tag = item.as_string(&format!("policies[{i}]"))?;
                    spec.policies.push(parse_policy(tag)?);
                }
            }
            "servers" => {
                for (i, item) in val.as_array("servers")?.iter().enumerate() {
                    let tag = item.as_string(&format!("servers[{i}]"))?;
                    spec.servers.push(parse_server(tag)?);
                }
            }
            "qos_floors_mhz" => {
                for (i, item) in val.as_array("qos_floors_mhz")?.iter().enumerate() {
                    spec.qos_floors_mhz.push(match item {
                        Value::Null => None,
                        other => Some(other.as_f64(&format!("qos_floors_mhz[{i}]"))?),
                    });
                }
            }
            "static_power_scales" => {
                for (i, item) in val.as_array("static_power_scales")?.iter().enumerate() {
                    spec.static_power_scales
                        .push(item.as_f64(&format!("static_power_scales[{i}]"))?);
                }
            }
            "backends" => {
                for (i, item) in val.as_array("backends")?.iter().enumerate() {
                    let tag = item.as_string(&format!("backends[{i}]"))?;
                    spec.backends.push(parse_backend(tag)?);
                }
            }
            "predictor" => spec.predictor = parse_predictor(val.as_string("predictor")?)?,
            "max_servers" => spec.max_servers = val.as_usize("max_servers")?,
            "correlation_only" => {
                spec.ablation.correlation_only = val.as_bool("correlation_only")?
            }
            "failure_policy" => {
                spec.failure_policy = parse_failure_policy(val.as_string("failure_policy")?)?
            }
            other => return Err(format!("unknown field {other}")),
        }
    }
    if seen_fleet && seen_fleets {
        return Err("specify either fleet (legacy) or fleets, not both".to_string());
    }
    if !seen_fleet && !seen_fleets {
        return Err("missing field fleets (or legacy fleet)".to_string());
    }
    if spec.qos_floors_mhz.is_empty() {
        spec.qos_floors_mhz.push(None);
    }
    if spec.static_power_scales.is_empty() {
        spec.static_power_scales.push(1.0);
    }
    if spec.backends.is_empty() {
        // Legacy specs predate the backend axis: analytic accounting.
        spec.backends.push(BackendSpec::Analytic);
    }
    Ok(spec)
}

fn parse_backend(tag: &str) -> Result<BackendSpec, String> {
    tag.parse()
}

fn parse_failure_policy(tag: &str) -> Result<FailurePolicy, String> {
    match tag {
        "keep_going" => Ok(FailurePolicy::KeepGoing),
        "fail_fast" => Ok(FailurePolicy::FailFast),
        other => Err(format!(
            "unknown failure policy {other:?} (expected keep_going or fail_fast)"
        )),
    }
}

pub(crate) fn policy_tag(p: PolicySpec) -> &'static str {
    match p {
        PolicySpec::Epact => "epact",
        PolicySpec::Coat => "coat",
        PolicySpec::CoatOpt => "coat_opt",
        PolicySpec::LoadBalance => "load_balance",
    }
}

fn parse_policy(tag: &str) -> Result<PolicySpec, String> {
    match tag {
        "epact" => Ok(PolicySpec::Epact),
        "coat" => Ok(PolicySpec::Coat),
        "coat_opt" => Ok(PolicySpec::CoatOpt),
        "load_balance" => Ok(PolicySpec::LoadBalance),
        other => Err(format!(
            "unknown policy {other:?} (expected epact, coat, coat_opt or load_balance)"
        )),
    }
}

pub(crate) fn server_tag(s: ServerSpec) -> &'static str {
    match s {
        ServerSpec::Ntc => "ntc",
        ServerSpec::Conventional => "conventional",
    }
}

fn parse_server(tag: &str) -> Result<ServerSpec, String> {
    match tag {
        "ntc" => Ok(ServerSpec::Ntc),
        "conventional" => Ok(ServerSpec::Conventional),
        other => Err(format!(
            "unknown server {other:?} (expected ntc or conventional)"
        )),
    }
}

fn predictor_tag(p: PredictorSpec) -> &'static str {
    match p {
        PredictorSpec::Oracle => "oracle",
        PredictorSpec::Arima => "arima",
        PredictorSpec::SeasonalNaive => "seasonal_naive",
    }
}

fn parse_predictor(tag: &str) -> Result<PredictorSpec, String> {
    match tag {
        "oracle" => Ok(PredictorSpec::Oracle),
        "arima" => Ok(PredictorSpec::Arima),
        "seasonal_naive" => Ok(PredictorSpec::SeasonalNaive),
        other => Err(format!(
            "unknown predictor {other:?} (expected oracle, arima or seasonal_naive)"
        )),
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// Parses arbitrary JSON text into a [`Value`] tree (crate-internal:
/// the export tests use it to check emitted JSON is well-formed).
pub(crate) fn parse_value(text: &str) -> Result<Value, String> {
    Parser::new(text).parse()
}

/// The JSON subset the spec and export formats need. Doubles as the
/// crate's one JSON *writer*: build a tree, [`Value::render`] it.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }

    pub(crate) fn as_object(&self, path: &str) -> Result<&[(String, Value)], String> {
        match self {
            Value::Object(fields) => Ok(fields),
            other => Err(format!(
                "{path} must be an object, got {}",
                other.type_name()
            )),
        }
    }

    pub(crate) fn as_array(&self, path: &str) -> Result<&[Value], String> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(format!(
                "{path} must be an array, got {}",
                other.type_name()
            )),
        }
    }

    pub(crate) fn as_string(&self, path: &str) -> Result<&str, String> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(format!(
                "{path} must be a string, got {}",
                other.type_name()
            )),
        }
    }

    pub(crate) fn as_bool(&self, path: &str) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(format!(
                "{path} must be a boolean, got {}",
                other.type_name()
            )),
        }
    }

    pub(crate) fn as_f64(&self, path: &str) -> Result<f64, String> {
        match self {
            Value::Number(n) => Ok(*n),
            other => Err(format!(
                "{path} must be a number, got {}",
                other.type_name()
            )),
        }
    }

    pub(crate) fn as_u64(&self, path: &str) -> Result<u64, String> {
        let n = self.as_f64(path)?;
        if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
            return Err(format!("{path} must be a non-negative integer, got {n}"));
        }
        Ok(n as u64)
    }

    pub(crate) fn as_usize(&self, path: &str) -> Result<usize, String> {
        let n = self.as_u64(path)?;
        usize::try_from(n).map_err(|_| format!("{path} is too large"))
    }

    /// Whether this value renders on one line (no nested structure).
    fn is_scalar(&self) -> bool {
        !matches!(self, Value::Array(_) | Value::Object(_))
    }

    /// Pretty-prints the tree: objects multiline with two-space
    /// indentation, scalar arrays inline, structured arrays one item
    /// per line. Output ends with a newline and round-trips through
    /// the parser (f64 `Display` never emits exponents).
    pub(crate) fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        use std::fmt::Write as _;
        let pad = |n: usize| "  ".repeat(n);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Number(n) => {
                let _ = write!(out, "{n}");
            }
            Value::String(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                } else if items.iter().all(Value::is_scalar) {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        out.push_str(&pad(indent + 1));
                        item.write(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    out.push_str(&pad(indent));
                    out.push(']');
                }
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad(indent + 1));
                    let _ = write!(out, "\"{}\": ", escape(key));
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad(indent));
                out.push('}');
            }
        }
    }
}

/// Minimal recursive-descent JSON parser (no escapes beyond the ones
/// [`escape`] emits, no exponents in the grammar we accept — plenty for
/// the spec format, zero dependencies).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Value, String> {
        let value = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing input at byte {}", self.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.peek()?;
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let escaped = self.bytes.get(self.pos + 1).ok_or("unterminated escape")?;
                    out.push(match escaped {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'n' => '\n',
                        b't' => '\t',
                        other => return Err(format!("unsupported escape \\{}", *other as char)),
                    });
                    self.pos += 2;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar: lean on str validity.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty by the match above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || *b == b'.')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_default_sweep() {
        let spec = ExperimentSpec::default_sweep();
        let text = to_json(&spec);
        assert_eq!(from_json(&text).unwrap(), spec);
    }

    #[test]
    fn round_trips_every_knob() {
        let mut spec = ExperimentSpec::default_sweep();
        spec.name = "full \"axis\" sweep".to_string();
        spec.policies.push(PolicySpec::LoadBalance);
        spec.qos_floors_mhz = vec![None, Some(1200.0), Some(1800.0)];
        spec.predictor = PredictorSpec::Arima;
        spec.ablation.correlation_only = true;
        let text = to_json(&spec);
        assert_eq!(from_json(&text).unwrap(), spec);
    }

    #[test]
    fn round_trips_fleet_set_and_scale_axes() {
        let mut spec = ExperimentSpec::default_sweep().with_seeds(&[1, 2, 3]);
        spec.fleets[2].num_vms = 96; // a size sweep mixed into the set
        spec.fleets[2].weeks = 3;
        spec.static_power_scales = vec![0.25, 1.0, 1.5];
        let text = to_json(&spec);
        assert_eq!(from_json(&text).unwrap(), spec);
    }

    #[test]
    fn round_trips_the_backend_axis() {
        let mut spec = ExperimentSpec::default_sweep();
        spec.backends = vec![BackendSpec::Analytic, BackendSpec::Archsim];
        let text = to_json(&spec);
        assert!(text.contains("\"backends\""), "{text}");
        assert_eq!(from_json(&text).unwrap(), spec);
        spec.backends = vec![BackendSpec::Archsim];
        assert_eq!(from_json(&to_json(&spec)).unwrap(), spec);
    }

    #[test]
    fn round_trips_the_failure_policy() {
        let mut spec = ExperimentSpec::default_sweep();
        spec.failure_policy = FailurePolicy::FailFast;
        let text = to_json(&spec);
        assert!(text.contains("\"failure_policy\": \"fail_fast\""), "{text}");
        assert_eq!(from_json(&text).unwrap(), spec);
    }

    #[test]
    fn missing_failure_policy_defaults_to_keep_going() {
        let text = r#"{"fleet": {"num_vms": 4, "seed": 1}}"#;
        let spec = from_json(text).unwrap();
        assert_eq!(spec.failure_policy, FailurePolicy::KeepGoing);
    }

    #[test]
    fn rejects_unknown_failure_policy() {
        let text = r#"{"fleet": {"num_vms": 4, "seed": 1}, "failure_policy": "retry"}"#;
        let err = from_json(text).unwrap_err();
        assert!(err.contains("retry"), "{err}");
    }

    #[test]
    fn legacy_single_fleet_spec_still_parses() {
        // The exact shape PR 1's to_json emitted: "fleet" object, no
        // fleets/static_power_scales arrays.
        let text = concat!(
            "{\n",
            "  \"name\": \"policy-comparison\",\n",
            "  \"fleet\": {\"num_vms\": 48, \"seed\": 2024, \"weeks\": 2},\n",
            "  \"policies\": [\"epact\", \"coat\", \"coat_opt\"],\n",
            "  \"servers\": [\"ntc\", \"conventional\"],\n",
            "  \"qos_floors_mhz\": [null],\n",
            "  \"predictor\": \"oracle\",\n",
            "  \"max_servers\": 600,\n",
            "  \"correlation_only\": false\n",
            "}\n"
        );
        let spec = from_json(text).unwrap();
        assert_eq!(spec, ExperimentSpec::default_sweep());
        assert_eq!(spec.fleets.len(), 1);
        assert_eq!(spec.static_power_scales, vec![1.0]);
        // No "backends" field in legacy JSON: analytic accounting.
        assert_eq!(spec.backends, vec![BackendSpec::Analytic]);
    }

    #[test]
    fn empty_backend_list_defaults_to_analytic() {
        let text = r#"{"fleet": {"num_vms": 4, "seed": 1}, "backends": []}"#;
        let spec = from_json(text).unwrap();
        assert_eq!(spec.backends, vec![BackendSpec::Analytic]);
    }

    #[test]
    fn rejects_unknown_backend() {
        let text = r#"{"fleet": {"num_vms": 4, "seed": 1}, "backends": ["gem5"]}"#;
        let err = from_json(text).unwrap_err();
        assert!(err.contains("gem5"), "{err}");
    }

    #[test]
    fn rejects_both_fleet_forms_at_once() {
        let text = r#"{"fleet": {"num_vms": 4, "seed": 1}, "fleets": [{"num_vms": 4, "seed": 1}]}"#;
        let err = from_json(text).unwrap_err();
        assert!(err.contains("not both"), "{err}");
    }

    #[test]
    fn rejects_unknown_fields() {
        let text = r#"{"fleet": {"num_vms": 4, "seed": 1}, "frobnicate": 3}"#;
        let err = from_json(text).unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
    }

    #[test]
    fn rejects_unknown_policy() {
        let text = r#"{"fleet": {"num_vms": 4, "seed": 1}, "policies": ["greedy"]}"#;
        let err = from_json(text).unwrap_err();
        assert!(err.contains("greedy"), "{err}");
    }

    #[test]
    fn rejects_missing_fleet() {
        let err = from_json(r#"{"name": "x"}"#).unwrap_err();
        assert!(err.contains("fleet"), "{err}");
    }

    #[test]
    fn rejects_syntax_errors() {
        assert!(from_json("{").is_err());
        assert!(from_json(r#"{"name": }"#).is_err());
        assert!(from_json("{} trailing").is_err());
        assert!(from_json(r#"{"fleet": {"num_vms": -3, "seed": 1}}"#).is_err());
    }

    #[test]
    fn empty_floor_list_defaults_to_no_floor() {
        let text = r#"{"fleet": {"num_vms": 4, "seed": 1}, "qos_floors_mhz": []}"#;
        let spec = from_json(text).unwrap();
        assert_eq!(spec.qos_floors_mhz, vec![None]);
    }

    #[test]
    fn empty_scale_list_defaults_to_unit_scale() {
        let text = r#"{"fleet": {"num_vms": 4, "seed": 1}, "static_power_scales": []}"#;
        let spec = from_json(text).unwrap();
        assert_eq!(spec.static_power_scales, vec![1.0]);
    }

    #[test]
    fn value_renderer_round_trips_structures() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::Number(1.5), Value::Null]),
            ),
            (
                "b".into(),
                Value::Array(vec![Value::Object(vec![(
                    "k".into(),
                    Value::String("x\"y".into()),
                )])]),
            ),
            ("c".into(), Value::Object(vec![])),
            ("d".into(), Value::Array(vec![])),
            ("e".into(), Value::Bool(true)),
        ]);
        let text = v.render();
        assert_eq!(parse_value(&text).unwrap(), v);
    }
}
