//! The data-center evaluation harness (§VI-C of the paper).
//!
//! [`WeekSim`] drives an [`AllocationPolicy`](ntc_core::AllocationPolicy)
//! over a one-week horizon of
//! hourly slots: at each slot boundary the policy allocates VMs to
//! servers from *predicted* utilization, then the slot is replayed with
//! the *actual* traces — the online DVFS governor picks a frequency per
//! server per 5-minute sample, energy is integrated through the server
//! power model, and overutilized server-samples are counted as SLA
//! violations (Fig. 4). The [`experiments`] module packages the runs
//! that regenerate every figure of the evaluation.
//!
//! # Examples
//!
//! ```
//! use ntc_core::Epact;
//! use ntc_datacenter::WeekSim;
//! use ntc_power::ServerPowerModel;
//! use ntc_workload::ClusterTraceGenerator;
//!
//! let fleet = ClusterTraceGenerator::google_like(24, 7).generate();
//! let sim = WeekSim::new(&fleet, ServerPowerModel::ntc(), 600);
//! let outcome = sim.run_with_oracle(&Epact::new());
//! assert_eq!(outcome.slots.len(), 168);
//! ```
//!
//! # Failure model
//!
//! Sweeps over many cells are fault-isolated: a panicking or erroring
//! cell becomes a structured [`CellError`] (index, label, pipeline
//! stage, cause) in [`SweepResult::failed`], while every other cell's
//! result stays bit-identical to a clean run. The spec's
//! [`FailurePolicy`] chooses between finishing the remaining cells
//! (the default) and aborting them (`FailFast`; `ntcdc sweep
//! --fail-fast` on the CLI). The [`fault`] module documents the model
//! and the deterministic fault-injection instrument
//! ([`Engine::inject_fault`]) that proves the isolation guarantee:
//!
//! ```
//! use ntc_datacenter::{Engine, ExperimentSpec, FaultSpec};
//!
//! let mut spec = ExperimentSpec::default_sweep();
//! spec.fleets[0].num_vms = 16; // keep the doctest fast
//! spec.max_servers = 200;
//! let sweep = Engine::new()
//!     .inject_fault(FaultSpec::error_at(0)) // fault the first cell
//!     .run(&spec)
//!     .unwrap();
//! assert_eq!(sweep.succeeded().len(), 5);
//! assert_eq!(sweep.failed()[0].index, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
mod cache;
mod engine;
pub mod experiments;
pub mod export;
pub mod fault;
mod outcome;
pub mod spec_json;
mod weeksim;

pub use backend::{
    AnalyticBackend, ArchsimBackend, BackendSpec, GovernedSlot, SlotAccounts, SlotBackend,
};
pub use cache::CacheStats;
pub use engine::{
    AblationFlags, CellOutcome, CellSpec, Engine, ExperimentSpec, FleetSpec, GroupOutcome,
    PolicySpec, PredictorSpec, ServerSpec, SweepResult,
};
pub use fault::{CellError, CellStage, FailureCause, FailurePolicy, FaultKind, FaultSpec};
pub use outcome::{MeanStd, SlotOutcome, WeekOutcome};
pub use weeksim::{WeekSim, WeekSimBuilder};
