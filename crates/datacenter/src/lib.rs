//! The data-center evaluation harness (§VI-C of the paper).
//!
//! [`WeekSim`] drives an [`AllocationPolicy`](ntc_core::AllocationPolicy)
//! over a one-week horizon of
//! hourly slots: at each slot boundary the policy allocates VMs to
//! servers from *predicted* utilization, then the slot is replayed with
//! the *actual* traces — the online DVFS governor picks a frequency per
//! server per 5-minute sample, energy is integrated through the server
//! power model, and overutilized server-samples are counted as SLA
//! violations (Fig. 4). The [`experiments`] module packages the runs
//! that regenerate every figure of the evaluation.
//!
//! # Examples
//!
//! ```
//! use ntc_core::Epact;
//! use ntc_datacenter::WeekSim;
//! use ntc_power::ServerPowerModel;
//! use ntc_workload::ClusterTraceGenerator;
//!
//! let fleet = ClusterTraceGenerator::google_like(24, 7).generate();
//! let sim = WeekSim::new(&fleet, ServerPowerModel::ntc(), 600);
//! let outcome = sim.run_with_oracle(&Epact::new());
//! assert_eq!(outcome.slots.len(), 168);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
mod cache;
mod engine;
pub mod experiments;
pub mod export;
mod outcome;
pub mod spec_json;
mod weeksim;

pub use backend::{
    AnalyticBackend, ArchsimBackend, BackendSpec, GovernedSlot, SlotAccounts, SlotBackend,
};
pub use cache::CacheStats;
pub use engine::{
    AblationFlags, CellOutcome, CellSpec, Engine, ExperimentSpec, FleetSpec, GroupOutcome,
    PolicySpec, PredictorSpec, ServerSpec, SweepResult,
};
pub use outcome::{MeanStd, SlotOutcome, WeekOutcome};
pub use weeksim::{WeekSim, WeekSimBuilder};
