//! Property-based tests of the allocation algorithms.

use ntc_core::{migration_count, OneDimAllocator, SlotPlan, TwoDimAllocator};
use ntc_trace::TimeSeries;
use ntc_units::Frequency;
use proptest::prelude::*;

fn vm_cpu(n: usize, len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..30.0, len), n)
}

fn to_series(v: Vec<Vec<f64>>) -> Vec<TimeSeries> {
    v.into_iter().map(TimeSeries::from_values).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn alg1_places_every_vm_exactly_once(cpu in vm_cpu(10, 6)) {
        let cpu = to_series(cpu);
        let alloc = OneDimAllocator::new(Frequency::from_ghz(1.9), Frequency::from_ghz(3.1));
        let a = alloc.allocate(&cpu);
        prop_assert_eq!(a.len(), cpu.len());
        // server ids are contiguous from 0
        let max = a.iter().copied().max().unwrap();
        for s in 0..=max {
            prop_assert!(a.contains(&s), "server {} is empty", s);
        }
    }

    #[test]
    fn alg1_respects_cap_for_multi_vm_servers(cpu in vm_cpu(12, 4)) {
        let cpu = to_series(cpu);
        let alloc = OneDimAllocator::new(Frequency::from_ghz(1.9), Frequency::from_ghz(3.1));
        let a = alloc.allocate(&cpu);
        let servers = a.iter().copied().max().unwrap() + 1;
        for s in 0..servers {
            let members: Vec<&TimeSeries> =
                a.iter().enumerate().filter(|&(_, &x)| x == s).map(|(vm, _)| &cpu[vm]).collect();
            if members.len() < 2 {
                continue; // a lone oversized VM is admitted unconditionally
            }
            let agg = TimeSeries::aggregate(4, members.iter().copied());
            prop_assert!(
                !agg.exceeds(alloc.cap_cpu(), 1e-6),
                "server {} exceeds cap with {} VMs",
                s,
                members.len()
            );
        }
    }

    #[test]
    fn alg1_is_deterministic(cpu in vm_cpu(8, 4)) {
        let cpu = to_series(cpu);
        let alloc = OneDimAllocator::new(Frequency::from_ghz(1.9), Frequency::from_ghz(3.1));
        prop_assert_eq!(alloc.allocate(&cpu), alloc.allocate(&cpu));
    }

    #[test]
    fn alg2_feasible_per_sample(
        cpu in vm_cpu(10, 4),
        mem in prop::collection::vec(prop::collection::vec(0.0f64..20.0, 4), 10),
    ) {
        let cpu = to_series(cpu);
        let mem = to_series(mem);
        let alloc = TwoDimAllocator::new(61.3, 100.0, 3);
        let a = alloc.allocate(&cpu, &mem);
        let servers = a.iter().copied().max().unwrap() + 1;
        for s in 0..servers {
            let members: Vec<usize> =
                a.iter().enumerate().filter(|&(_, &x)| x == s).map(|(vm, _)| vm).collect();
            if members.len() < 2 {
                continue;
            }
            let agg_cpu = TimeSeries::aggregate(4, members.iter().map(|&v| &cpu[v]));
            let agg_mem = TimeSeries::aggregate(4, members.iter().map(|&v| &mem[v]));
            prop_assert!(!agg_cpu.exceeds(61.3, 1e-6));
            prop_assert!(!agg_mem.exceeds(100.0, 1e-6));
        }
    }

    #[test]
    fn migrations_bounded_by_fleet_size(
        a in prop::collection::vec(0usize..4, 12),
        b in prop::collection::vec(0usize..4, 12),
    ) {
        let f = Frequency::from_ghz(1.9);
        let fmin = Frequency::from_mhz(100.0);
        let fmax = Frequency::from_ghz(3.1);
        let norm = |v: Vec<usize>| -> SlotPlan {
            // compact indices so num_servers matches
            let max = v.iter().copied().max().unwrap_or(0);
            SlotPlan::new(v, max + 1, 61.3, 100.0, f, fmin, fmax)
        };
        let pa = norm(a);
        let pb = norm(b);
        let m = migration_count(&pa, &pb);
        prop_assert!(m <= 12);
        prop_assert_eq!(migration_count(&pa, &pa.clone()), 0);
    }

    #[test]
    fn migration_symmetry_under_relabeling(assign in prop::collection::vec(0usize..3, 9)) {
        // relabeling servers (0<->1<->2 rotation) costs nothing
        let f = Frequency::from_ghz(1.9);
        let fmin = Frequency::from_mhz(100.0);
        let fmax = Frequency::from_ghz(3.1);
        let rotated: Vec<usize> = assign.iter().map(|&s| (s + 1) % 3).collect();
        let pa = SlotPlan::new(assign, 3, 61.3, 100.0, f, fmin, fmax);
        let pb = SlotPlan::new(rotated, 3, 61.3, 100.0, f, fmin, fmax);
        prop_assert_eq!(migration_count(&pa, &pb), 0);
    }
}
