//! Brute-force optimal allocation for small instances — the yardstick
//! for EPACT's optimality gap.
//!
//! The allocation problem (partition VMs into servers minimizing
//! worst-case slot power subject to per-sample caps) is NP-hard in
//! general; for fleets of up to ~10 VMs the full partition space can be
//! enumerated. The test suite uses this to bound how far Algorithm 1's
//! greedy packing lands from the true optimum.

use ntc_power::ServerPowerModel;
use ntc_trace::TimeSeries;
use ntc_units::{Frequency, Percent, Power};

/// The exact optimum for one slot: assignment, server count, and its
/// worst-case power.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveResult {
    /// `assignment[vm] = server index`.
    pub assignment: Vec<usize>,
    /// Number of servers used.
    pub num_servers: usize,
    /// Worst-case power of the plan (every server at the level covering
    /// its own peak).
    pub power: Power,
}

/// Worst-case power of a candidate partition: each server runs at the
/// lowest DVFS level covering its peak aggregated demand; infeasible
/// partitions (a server's peak above 100%) return `None`.
fn partition_power(
    server: &ServerPowerModel,
    cpu: &[TimeSeries],
    assignment: &[usize],
    num_servers: usize,
) -> Option<Power> {
    let slot_len = cpu[0].len();
    let mut aggregates = vec![TimeSeries::zeros(slot_len); num_servers];
    for (vm, &s) in assignment.iter().enumerate() {
        aggregates[s].add_in_place(&cpu[vm]);
    }
    let mut total = Power::ZERO;
    for agg in &aggregates {
        let peak = agg.peak();
        if peak > 100.0 + 1e-9 {
            return None;
        }
        let needed = Frequency::from_mhz(peak / 100.0 * server.fmax().as_mhz());
        let level = server
            .cores()
            .vf_curve()
            .level_at_or_above(needed)
            .unwrap_or_else(|| server.fmax());
        // worst case: the server is busy at its peak for the whole slot
        let util = Percent::new((peak * server.fmax().ratio(level)).min(100.0));
        total += server.power(level, util, Percent::ZERO);
    }
    Some(total)
}

/// Enumerates every partition of the VMs (restricted growth strings)
/// and returns the feasible partition with the lowest worst-case power.
///
/// # Panics
///
/// Panics if `cpu` is empty or holds more than 12 VMs (the partition
/// count — the Bell number — explodes beyond that).
pub fn optimal_allocation(server: &ServerPowerModel, cpu: &[TimeSeries]) -> ExhaustiveResult {
    assert!(!cpu.is_empty(), "no VMs to allocate");
    assert!(
        cpu.len() <= 12,
        "exhaustive search is limited to 12 VMs (got {})",
        cpu.len()
    );

    let n = cpu.len();
    let mut best: Option<ExhaustiveResult> = None;

    // Restricted growth strings: a[0] = 0, a[i] <= max(a[..i]) + 1.
    let mut a = vec![0usize; n];
    loop {
        let num_servers = a.iter().copied().max().unwrap_or(0) + 1;
        if let Some(power) = partition_power(server, cpu, &a, num_servers) {
            if best.as_ref().is_none_or(|b| power < b.power) {
                best = Some(ExhaustiveResult {
                    assignment: a.clone(),
                    num_servers,
                    power,
                });
            }
        }

        // next restricted growth string
        let mut i = n - 1;
        loop {
            if i == 0 {
                return best.expect("singleton partition is always feasible at <=100% per VM or the caller passed oversized VMs");
            }
            let prefix_max = a[..i].iter().copied().max().unwrap_or(0);
            if a[i] <= prefix_max {
                a[i] += 1;
                for v in a.iter_mut().skip(i + 1) {
                    *v = 0;
                }
                break;
            }
            a[i] = 0;
            i -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AllocationPolicy, Epact, SlotContext};

    fn flat(v: f64) -> TimeSeries {
        TimeSeries::constant(4, v)
    }

    #[test]
    fn two_small_vms_share_a_server() {
        let server = ServerPowerModel::ntc();
        let cpu = vec![flat(10.0), flat(10.0)];
        let res = optimal_allocation(&server, &cpu);
        assert_eq!(res.num_servers, 1, "two 10% VMs share one server");
    }

    #[test]
    fn oversubscription_forces_a_split() {
        let server = ServerPowerModel::ntc();
        let cpu = vec![flat(60.0), flat(60.0)];
        let res = optimal_allocation(&server, &cpu);
        assert_eq!(res.num_servers, 2, "120% cannot share");
    }

    #[test]
    fn optimum_prefers_near_ntc_opt_loading() {
        // Six 30% VMs: one server would need 180% (infeasible), two
        // need 90% each (Fmax operation), three run at 60% ~ 1.9 GHz.
        // The energy-proportional optimum is three servers.
        let server = ServerPowerModel::ntc();
        let cpu = vec![flat(30.0); 6];
        let res = optimal_allocation(&server, &cpu);
        assert_eq!(
            res.num_servers, 3,
            "the optimum should land at the 1.9 GHz loading"
        );
    }

    #[test]
    fn epact_is_near_optimal_on_small_instances() {
        let server = ServerPowerModel::ntc();
        // heterogeneous small instance
        let cpu: Vec<TimeSeries> = [25.0, 25.0, 30.0, 20.0, 15.0, 35.0, 10.0]
            .iter()
            .map(|&v| flat(v))
            .collect();
        let mem = vec![flat(1.0); cpu.len()];
        let opt = optimal_allocation(&server, &cpu);

        let ctx = SlotContext::new(&cpu, &mem, &server, 100);
        let plan = Epact::new().allocate(&ctx);
        let epact_power = partition_power(&server, &cpu, plan.assignments(), plan.num_servers())
            .expect("EPACT plans are feasible");

        let gap = epact_power.as_watts() / opt.power.as_watts();
        assert!(
            gap <= 1.25,
            "EPACT (greedy) must be within 25% of the brute-force optimum, gap {:.3} ({} vs {})",
            gap,
            epact_power,
            opt.power
        );
    }

    #[test]
    fn anti_correlated_pairing_is_recognized() {
        let server = ServerPowerModel::ntc();
        let day = TimeSeries::from_values(vec![50.0, 50.0, 10.0, 10.0]);
        let night = TimeSeries::from_values(vec![10.0, 10.0, 50.0, 50.0]);
        let cpu = vec![day.clone(), day, night.clone(), night];
        let res = optimal_allocation(&server, &cpu);
        // optimal: two servers, each one day + one night VM (peak 60)
        assert_eq!(res.num_servers, 2);
        let a = &res.assignment;
        assert_ne!(a[0], a[1], "two day VMs must not share: {a:?}");
    }

    #[test]
    #[should_panic(expected = "limited to 12")]
    fn large_instances_rejected() {
        let server = ServerPowerModel::ntc();
        let cpu = vec![flat(1.0); 13];
        let _ = optimal_allocation(&server, &cpu);
    }
}
