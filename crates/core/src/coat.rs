use ntc_power::DataCenterPowerModel;
use ntc_trace::{CorrelationCache, PatternStats, TimeSeries};
use ntc_units::{Frequency, Percent};
use serde::{Deserialize, Serialize};

use crate::{AllocationPolicy, SlotContext, SlotPlan};

/// Correlation-aware consolidation packing shared by [`Coat`] and
/// [`CoatOpt`]: first-fit-decreasing into as few servers as possible,
/// preferring the feasible server whose complementary pattern best
/// matches the VM (the CPU-load-correlation awareness of Kim et al.,
/// DATE'13) and checking both the CPU and memory caps per sample.
///
/// `cache` holds the memoized Pearson terms over `cpu` — built from the
/// slot context so a day-level cache is reused when one is attached.
fn consolidate(
    cpu: &[TimeSeries],
    mem: &[TimeSeries],
    cap_cpu: f64,
    cap_mem: f64,
    mut cache: CorrelationCache<'_>,
) -> Vec<usize> {
    let slot_len = cpu[0].len();
    let mut order: Vec<usize> = (0..cpu.len()).collect();
    order.sort_by(|&a, &b| {
        cpu[b]
            .peak()
            .partial_cmp(&cpu[a].peak())
            .expect("finite utilizations")
    });

    let mut srv_cpu: Vec<TimeSeries> = Vec::new();
    let mut srv_mem: Vec<TimeSeries> = Vec::new();
    let mut stats: Vec<PatternStats> = Vec::new();
    let mut assignment = vec![usize::MAX; cpu.len()];
    for vm in order {
        // Among servers that fit, pick the one with the most
        // complementary (least correlated) load.
        let mut best: Option<(usize, f64)> = None;
        for j in 0..srv_cpu.len() {
            // Short-circuit: a CPU-infeasible server skips the memory scan.
            if srv_cpu[j].sum_exceeds(&cpu[vm], cap_cpu, 1e-9)
                || srv_mem[j].sum_exceeds(&mem[vm], cap_mem, 1e-9)
            {
                continue;
            }
            let phi = stats[j].complement_correlation(&cache, vm);
            if best.is_none_or(|(_, b)| phi > b) {
                best = Some((j, phi));
            }
        }
        let j = match best {
            Some((j, _)) => j,
            None => {
                srv_cpu.push(TimeSeries::zeros(slot_len));
                srv_mem.push(TimeSeries::zeros(slot_len));
                stats.push(cache.pattern());
                srv_cpu.len() - 1
            }
        };
        srv_cpu[j].add_in_place(&cpu[vm]);
        srv_mem[j].add_in_place(&mem[vm]);
        stats[j].admit(&mut cache, vm);
        assignment[vm] = j;
    }
    assignment
}

/// COAT: COnsolidation-Aware allocaTion (the paper's rendering of Kim et
/// al., DATE'13) — the state-of-the-art baseline EPACT is compared
/// against.
///
/// COAT consolidates VMs onto the minimum number of servers, filling
/// each to its *maximum* capacity (100% at Fmax), using CPU-load
/// correlation to avoid co-locating VMs that peak together, and turns
/// everything else off. On conventional servers this is near-optimal; on
/// energy-proportional NTC servers it forces the inefficient Fmax
/// operating point and leaves no slack for mispredictions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coat {
    _private: (),
}

impl Coat {
    /// Creates the policy.
    pub fn new() -> Self {
        Self { _private: () }
    }
}

impl AllocationPolicy for Coat {
    fn name(&self) -> &str {
        "COAT"
    }

    fn reallocation_period_slots(&self) -> usize {
        24 // daily patterns, after Kim et al.
    }

    fn allocate(&self, ctx: &SlotContext<'_>) -> SlotPlan {
        let fmax = ctx.server().fmax();
        let assignments = consolidate(
            ctx.predicted_cpu(),
            ctx.predicted_mem(),
            100.0,
            100.0,
            ctx.corr_cpu(),
        );
        let n = assignments.iter().max().map_or(1, |&m| m + 1);
        SlotPlan::new(
            assignments,
            n.min(ctx.max_servers().max(1)),
            100.0,
            100.0,
            fmax,
            fmax, // consolidation runs servers at the highest frequency
            fmax,
        )
    }
}

/// COAT-OPT: COAT with the *optimal fixed cap* — consolidation against
/// the capacity at the frequency that minimizes worst-case data-center
/// power (`F_NTC_opt`, ≈1.9 GHz), kept fixed for the whole horizon.
///
/// The fixed cap removes COAT's biggest inefficiency (running at Fmax)
/// but, unlike EPACT, cannot adapt the cap to the slot's workload mix
/// nor raise frequency beyond it to absorb mispredictions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoatOpt {
    _private: (),
}

impl CoatOpt {
    /// Creates the policy.
    pub fn new() -> Self {
        Self { _private: () }
    }

    /// The fixed optimal frequency for `ctx`'s server fleet.
    pub fn fixed_frequency(ctx: &SlotContext<'_>) -> Frequency {
        DataCenterPowerModel::new(ctx.server().clone(), ctx.max_servers()).ntc_optimal_frequency()
    }
}

impl AllocationPolicy for CoatOpt {
    fn name(&self) -> &str {
        "COAT-OPT"
    }

    fn reallocation_period_slots(&self) -> usize {
        24 // the cap is fixed and the packing follows daily patterns
    }

    fn allocate(&self, ctx: &SlotContext<'_>) -> SlotPlan {
        let fmax = ctx.server().fmax();
        let fopt = Self::fixed_frequency(ctx);
        let cap_cpu = fopt.ratio(fmax) * 100.0;
        let assignments = consolidate(
            ctx.predicted_cpu(),
            ctx.predicted_mem(),
            cap_cpu,
            100.0,
            ctx.corr_cpu(),
        );
        let n = assignments.iter().max().map_or(1, |&m| m + 1);
        SlotPlan::new(
            assignments,
            n.min(ctx.max_servers().max(1)),
            cap_cpu,
            100.0,
            fopt,
            fopt, // the cap frequency is fixed for the whole horizon:
            fopt, // no online slack below or above it
        )
    }
}

/// Worst-case data-center power of running `n` servers flat out at `f` —
/// a helper the benches use to compare policies' planned operating
/// points.
pub fn worst_case_power(ctx: &SlotContext<'_>, n: usize, f: Frequency) -> ntc_units::Power {
    ctx.server().power(f, Percent::FULL, Percent::ZERO) * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_power::ServerPowerModel;

    fn ctx_fixture<'a>(
        cpu: &'a [TimeSeries],
        mem: &'a [TimeSeries],
        server: &'a ServerPowerModel,
    ) -> SlotContext<'a> {
        SlotContext::new(cpu, mem, server, 600)
    }

    #[test]
    fn coat_consolidates_to_fewer_servers_than_epact() {
        let server = ServerPowerModel::ntc();
        let cpu = vec![TimeSeries::constant(12, 5.0); 60];
        let mem = vec![TimeSeries::constant(12, 0.5); 60];
        let ctx = ctx_fixture(&cpu, &mem, &server);
        let coat = Coat::new().allocate(&ctx);
        let epact = crate::Epact::new().allocate(&ctx);
        assert!(
            coat.num_servers() < epact.num_servers(),
            "COAT ({}) must use fewer servers than EPACT ({})",
            coat.num_servers(),
            epact.num_servers()
        );
        assert_eq!(coat.planned_freq(), server.fmax());
    }

    #[test]
    fn coat_opt_uses_optimal_fixed_cap() {
        let server = ServerPowerModel::ntc();
        let cpu = vec![TimeSeries::constant(12, 5.0); 30];
        let mem = vec![TimeSeries::constant(12, 0.5); 30];
        let ctx = ctx_fixture(&cpu, &mem, &server);
        let plan = CoatOpt::new().allocate(&ctx);
        assert!(
            (1.4..=2.2).contains(&plan.planned_freq().as_ghz()),
            "COAT-OPT cap must sit at F_NTC_opt, got {}",
            plan.planned_freq()
        );
        assert_eq!(
            plan.dvfs_ceiling(),
            plan.planned_freq(),
            "the cap is fixed: no slack above it"
        );
        // and it needs more servers than plain COAT
        let coat = Coat::new().allocate(&ctx);
        assert!(plan.num_servers() >= coat.num_servers());
    }

    #[test]
    fn consolidation_respects_caps() {
        let server = ServerPowerModel::ntc();
        let cpu: Vec<TimeSeries> = (0..40)
            .map(|i| TimeSeries::constant(12, 4.0 + (i % 4) as f64))
            .collect();
        let mem = vec![TimeSeries::constant(12, 2.0); 40];
        let ctx = ctx_fixture(&cpu, &mem, &server);
        for plan in [Coat::new().allocate(&ctx), CoatOpt::new().allocate(&ctx)] {
            for agg in plan.aggregate_per_server(&cpu) {
                assert!(!agg.exceeds(plan.cap_cpu(), 1e-6));
            }
        }
    }

    #[test]
    fn correlation_awareness_separates_peaking_vms() {
        let server = ServerPowerModel::ntc();
        let spiky = TimeSeries::from_values(vec![55.0, 5.0, 55.0, 5.0]);
        let calm = TimeSeries::from_values(vec![5.0, 55.0, 5.0, 55.0]);
        let cpu = vec![spiky.clone(), spiky, calm.clone(), calm];
        let mem = vec![TimeSeries::constant(4, 1.0); 4];
        let ctx = ctx_fixture(&cpu, &mem, &server);
        let plan = Coat::new().allocate(&ctx);
        // the two spiky VMs must not share a server (sum would be 110)
        assert_ne!(plan.assignments()[0], plan.assignments()[1]);
    }
}
