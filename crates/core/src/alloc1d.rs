use ntc_trace::{CorrelationCache, TimeSeries};
use ntc_units::Frequency;

use crate::Error;

/// Algorithm 1 of the paper: the 1-D (CPU-only) correlation-aware
/// first-fit-decreasing allocator used when CPU dominates.
///
/// Servers are filled one at a time. An empty server receives the first
/// unallocated VM unconditionally; afterwards the allocator repeatedly
/// computes the server's *complementary pattern* `max(Patt) − Patt` and
/// admits the unallocated VM with the highest Pearson correlation φ to
/// that pattern, subject to the frequency-cap feasibility
/// `max(Patt + Ũ) · Fmax ≤ Fopt` (i.e. the aggregated load must stay
/// below `Fopt/Fmax` of capacity). When no VM fits, the next server is
/// opened.
///
/// # Examples
///
/// ```
/// use ntc_core::OneDimAllocator;
/// use ntc_trace::TimeSeries;
/// use ntc_units::Frequency;
///
/// let cpu = vec![TimeSeries::constant(4, 30.0); 4];
/// let alloc = OneDimAllocator::new(Frequency::from_ghz(1.9), Frequency::from_ghz(3.1));
/// let assignment = alloc.allocate(&cpu);
/// // cap = 1.9/3.1 ~ 61.3% -> two 30% VMs per server
/// assert_eq!(assignment.iter().filter(|&&s| s == 0).count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OneDimAllocator {
    fopt: Frequency,
    fmax: Frequency,
}

impl OneDimAllocator {
    /// Creates the allocator for a slot whose target frequency is
    /// `fopt` on servers with maximum frequency `fmax`.
    ///
    /// # Errors
    ///
    /// Returns an error if `fopt` is zero or exceeds `fmax`.
    pub fn try_new(fopt: Frequency, fmax: Frequency) -> Result<Self, Error> {
        if fopt <= Frequency::ZERO || fopt > fmax {
            return Err(Error::InvalidFrequencyTarget { fopt, fmax });
        }
        Ok(Self { fopt, fmax })
    }

    /// Creates the allocator, panicking on an invalid frequency pair.
    ///
    /// Thin wrapper over [`OneDimAllocator::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if `fopt` is zero or exceeds `fmax`.
    #[track_caller]
    pub fn new(fopt: Frequency, fmax: Frequency) -> Self {
        match Self::try_new(fopt, fmax) {
            Ok(alloc) => alloc,
            Err(e) => panic!("{e}"),
        }
    }

    /// The CPU cap implied by the frequency pair, percent of capacity at
    /// `Fmax`.
    pub fn cap_cpu(&self) -> f64 {
        self.fopt.ratio(self.fmax) * 100.0
    }

    /// Allocates every VM, returning `assignment[vm] = server index`.
    ///
    /// VMs are visited in first-fit-*decreasing* order of peak CPU (the
    /// paper's FFD choice), but the returned vector is indexed by the
    /// original VM order.
    ///
    /// # Panics
    ///
    /// Panics if `predicted_cpu` is empty or series lengths differ.
    pub fn allocate(&self, predicted_cpu: &[TimeSeries]) -> Vec<usize> {
        let mut cache = CorrelationCache::new(predicted_cpu);
        self.allocate_with_cache(predicted_cpu, &mut cache)
    }

    /// [`allocate`](Self::allocate) against a caller-provided
    /// correlation cache — the form `ntc_core::Epact` uses so a
    /// day-level cache attached to the slot context is reused instead
    /// of rebuilding Pearson terms per slot.
    ///
    /// # Panics
    ///
    /// Panics if `predicted_cpu` is empty, series lengths differ, or
    /// `cache` covers a different number of series.
    pub fn allocate_with_cache(
        &self,
        predicted_cpu: &[TimeSeries],
        cache: &mut CorrelationCache<'_>,
    ) -> Vec<usize> {
        assert!(!predicted_cpu.is_empty(), "no VMs to allocate");
        let slot_len = predicted_cpu[0].len();
        assert!(
            predicted_cpu.iter().all(|s| s.len() == slot_len),
            "all series must cover the same slot"
        );
        assert_eq!(
            cache.num_series(),
            predicted_cpu.len(),
            "cache must cover every VM"
        );
        let cap = self.cap_cpu();

        // First-fit-decreasing pool: indices sorted by descending peak.
        let mut pool: Vec<usize> = (0..predicted_cpu.len()).collect();
        pool.sort_by(|&a, &b| {
            predicted_cpu[b]
                .peak()
                .partial_cmp(&predicted_cpu[a].peak())
                .expect("finite utilizations")
        });

        let mut assignment = vec![usize::MAX; predicted_cpu.len()];
        let mut server = 0usize;
        let mut pattern = TimeSeries::zeros(slot_len);
        // Pairwise Pearson terms are shared by every candidate scan of
        // the slot; the running accumulator turns each φ query into
        // O(1) instead of an O(len) pass over a materialized
        // complement.
        let mut stats = cache.pattern();
        let mut server_empty = true;

        while !pool.is_empty() {
            if server_empty {
                // Line 4-6: first unallocated VM goes in unconditionally.
                let vm = pool.remove(0);
                pattern.add_in_place(&predicted_cpu[vm]);
                stats.admit(cache, vm);
                assignment[vm] = server;
                server_empty = false;
                continue;
            }
            // Lines 8-12: best VM by correlation with the server's
            // complementary pattern, subject to the frequency cap.
            let mut best: Option<(usize, f64)> = None;
            for (pos, &vm) in pool.iter().enumerate() {
                if pattern.peak_of_sum(&predicted_cpu[vm]) > cap + 1e-9 {
                    continue;
                }
                let phi = stats.complement_correlation(cache, vm);
                if best.is_none_or(|(_, b)| phi > b) {
                    best = Some((pos, phi));
                }
            }
            match best {
                Some((pos, _)) => {
                    let vm = pool.remove(pos);
                    pattern.add_in_place(&predicted_cpu[vm]);
                    stats.admit(cache, vm);
                    assignment[vm] = server;
                }
                None => {
                    // Line 14: open the next server.
                    server += 1;
                    pattern.reset_zeros(slot_len);
                    stats.reset();
                    server_empty = true;
                }
            }
        }
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(g: f64) -> Frequency {
        Frequency::from_ghz(g)
    }

    fn alloc() -> OneDimAllocator {
        OneDimAllocator::new(ghz(1.9), ghz(3.1))
    }

    #[test]
    fn cap_matches_frequency_ratio() {
        assert!((alloc().cap_cpu() - 100.0 * 1.9 / 3.1).abs() < 1e-9);
    }

    #[test]
    fn respects_the_cap() {
        let cpu = vec![TimeSeries::constant(6, 25.0); 8];
        let a = alloc().allocate(&cpu);
        // cap 61.29% -> 2 VMs of 25% per server (3 would be 75%)
        let mut counts = std::collections::HashMap::new();
        for &s in &a {
            *counts.entry(s).or_insert(0) += 1;
        }
        assert!(counts.values().all(|&c| c <= 2));
        assert_eq!(counts.len(), 4);
    }

    #[test]
    fn prefers_anti_correlated_vms() {
        // Two day-peaking and two night-peaking VMs; the cap admits any
        // pair, but correlation matching must pair day with night.
        let day = TimeSeries::from_values(vec![30.0, 30.0, 5.0, 5.0]);
        let night = TimeSeries::from_values(vec![5.0, 5.0, 30.0, 30.0]);
        let cpu = vec![day.clone(), day, night.clone(), night];
        let a = alloc().allocate(&cpu);
        // VM 0 (day) must share with a night VM, not with VM 1.
        assert_eq!(a[0], a[2], "day+night must co-locate: {a:?}");
        assert_eq!(a[1], a[3], "the other pair likewise: {a:?}");
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn oversized_vm_still_gets_a_server() {
        // A VM above the cap is admitted into an empty server
        // unconditionally (Alg. 1 lines 3-6).
        let cpu = vec![TimeSeries::constant(4, 90.0), TimeSeries::constant(4, 10.0)];
        let a = alloc().allocate(&cpu);
        assert_ne!(a[0], a[1], "the 90% VM must be alone");
    }

    #[test]
    fn single_vm() {
        let cpu = vec![TimeSeries::constant(4, 3.0)];
        assert_eq!(alloc().allocate(&cpu), vec![0]);
    }

    #[test]
    fn ffd_order_packs_tight() {
        // Mixed sizes: FFD should not strand big VMs.
        let sizes = [50.0, 10.0, 10.0, 50.0, 10.0, 10.0];
        let cpu: Vec<TimeSeries> = sizes.iter().map(|&v| TimeSeries::constant(4, v)).collect();
        let a = alloc().allocate(&cpu);
        let servers = a.iter().collect::<std::collections::HashSet<_>>().len();
        // cap 61.29: {50,10} {50,10} {10,10} = 3 servers is optimal
        assert!(servers <= 3, "FFD should need <= 3 servers, used {servers}");
    }
}
