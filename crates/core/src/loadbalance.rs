use ntc_units::Frequency;
use serde::{Deserialize, Serialize};

use crate::{AllocationPolicy, SlotContext, SlotPlan};

/// The load-balancing extreme: spread VMs thinly so every server runs
/// cool and slow.
///
/// §V-A argues that on NTC hardware *neither* consolidation *nor* load
/// balancing is optimal — consolidation overpays in the superlinear
/// high-frequency region, load balancing overpays in per-server static
/// power. This policy implements the latter extreme for comparison: it
/// opens enough servers to keep each below `target_util` percent of
/// Fmax-capacity (default 25%, i.e. servers idle near the bottom of the
/// DVFS range) and assigns each VM to the least-loaded server.
///
/// # Examples
///
/// ```
/// use ntc_core::{AllocationPolicy, LoadBalance};
///
/// let policy = LoadBalance::new();
/// assert_eq!(policy.name(), "LOAD-BAL");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadBalance {
    target_util: f64,
}

impl LoadBalance {
    /// Creates the policy with the default 25% per-server target.
    pub fn new() -> Self {
        Self { target_util: 25.0 }
    }

    /// Overrides the per-server target utilization (percent of
    /// Fmax-capacity).
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in `(0, 100]`.
    pub fn with_target_util(mut self, target: f64) -> Self {
        assert!(
            target > 0.0 && target <= 100.0,
            "target utilization must be in (0, 100]"
        );
        self.target_util = target;
        self
    }

    /// The per-server target utilization.
    pub fn target_util(&self) -> f64 {
        self.target_util
    }
}

impl Default for LoadBalance {
    fn default() -> Self {
        Self::new()
    }
}

impl AllocationPolicy for LoadBalance {
    fn name(&self) -> &str {
        "LOAD-BAL"
    }

    fn allocate(&self, ctx: &SlotContext<'_>) -> SlotPlan {
        let server = ctx.server();
        let fmax = server.fmax();
        let peak = ctx.peak_aggregate_cpu();
        let n = ((peak / self.target_util).ceil() as usize).clamp(1, ctx.max_servers());

        // Least-loaded-first balancing on mean predicted CPU.
        let cpu = ctx.predicted_cpu();
        let mut load = vec![0.0f64; n];
        let mut order: Vec<usize> = (0..cpu.len()).collect();
        order.sort_by(|&a, &b| {
            cpu[b]
                .mean()
                .partial_cmp(&cpu[a].mean())
                .expect("finite utilizations")
        });
        let mut assignment = vec![0usize; cpu.len()];
        for vm in order {
            let (j, _) = load
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
                .expect("at least one server");
            load[j] += cpu[vm].mean();
            assignment[vm] = j;
        }

        // Plan frequency: the level serving the per-server peak share.
        let per_server_peak = peak / n as f64;
        let needed =
            Frequency::from_mhz((per_server_peak / 100.0 * fmax.as_mhz()).min(fmax.as_mhz()));
        let planned = server
            .cores()
            .vf_curve()
            .level_at_or_above(needed)
            .unwrap_or(fmax);

        SlotPlan::new(
            assignment,
            n,
            self.target_util.max(per_server_peak.min(100.0)).max(1.0),
            100.0,
            planned,
            server.fmin(),
            fmax,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_power::ServerPowerModel;
    use ntc_trace::TimeSeries;

    #[test]
    fn spreads_across_many_servers() {
        let server = ServerPowerModel::ntc();
        let cpu = vec![TimeSeries::constant(12, 5.0); 40]; // 200% total
        let mem = vec![TimeSeries::constant(12, 1.0); 40];
        let ctx = SlotContext::new(&cpu, &mem, &server, 600);
        let lb = LoadBalance::new().allocate(&ctx);
        let epact = crate::Epact::new().allocate(&ctx);
        // 200% at 25% target -> 8 servers; EPACT needs ~4.
        assert_eq!(lb.num_servers(), 8);
        assert!(lb.num_servers() > epact.num_servers());
    }

    #[test]
    fn balances_evenly() {
        let server = ServerPowerModel::ntc();
        let cpu = vec![TimeSeries::constant(12, 4.0); 24];
        let mem = vec![TimeSeries::constant(12, 1.0); 24];
        let ctx = SlotContext::new(&cpu, &mem, &server, 600);
        let plan = LoadBalance::new().allocate(&ctx);
        let counts: Vec<usize> = plan.vms_per_server().iter().map(|v| v.len()).collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1, "least-loaded must even out: {counts:?}");
    }

    #[test]
    fn respects_server_limit() {
        let server = ServerPowerModel::ntc();
        let cpu = vec![TimeSeries::constant(12, 6.0); 30];
        let mem = vec![TimeSeries::constant(12, 1.0); 30];
        let ctx = SlotContext::new(&cpu, &mem, &server, 3);
        let plan = LoadBalance::new().allocate(&ctx);
        assert!(plan.num_servers() <= 3);
    }

    #[test]
    #[should_panic(expected = "target utilization")]
    fn bad_target_rejected() {
        let _ = LoadBalance::new().with_target_util(0.0);
    }
}
