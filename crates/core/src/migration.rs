//! VM migration accounting between consecutive slot plans.
//!
//! Consolidation-style policies repack aggressively and therefore move
//! VMs between physical hosts at every re-allocation; live migration
//! costs network traffic and downtime, so the number of moved VMs is a
//! standard secondary metric (the paper cites migration-based methods
//! [Ruan et al.] as related work). Server indices are arbitrary labels
//! within each plan, so a naive index comparison over-counts; this
//! module first matches each new server to the old server it inherited
//! the most VMs from, then counts the VMs that actually moved.

use std::collections::HashMap;

use crate::SlotPlan;

/// Number of VMs that must migrate to get from `prev` to `next`.
///
/// Each server of `next` is matched (greedily, largest overlap first)
/// to at most one server of `prev`; VMs not covered by their server's
/// match are counted as migrations. A pure relabeling therefore costs
/// zero.
///
/// # Panics
///
/// Panics if the two plans cover different VM counts.
///
/// # Examples
///
/// ```
/// use ntc_core::{migration_count, SlotPlan};
/// use ntc_units::Frequency;
///
/// let f = Frequency::from_ghz(1.9);
/// let fmin = Frequency::from_mhz(100.0);
/// let fmax = Frequency::from_ghz(3.1);
/// let a = SlotPlan::new(vec![0, 0, 1], 2, 61.0, 100.0, f, fmin, fmax);
/// // same grouping, labels swapped: no migration
/// let b = SlotPlan::new(vec![1, 1, 0], 2, 61.0, 100.0, f, fmin, fmax);
/// assert_eq!(migration_count(&a, &b), 0);
/// ```
pub fn migration_count(prev: &SlotPlan, next: &SlotPlan) -> usize {
    assert_eq!(
        prev.assignments().len(),
        next.assignments().len(),
        "plans must cover the same fleet"
    );

    // overlap[(new, old)] = number of shared VMs
    let mut overlap: HashMap<(usize, usize), usize> = HashMap::new();
    for (vm, (&new_s, &old_s)) in next
        .assignments()
        .iter()
        .zip(prev.assignments())
        .enumerate()
    {
        let _ = vm;
        *overlap.entry((new_s, old_s)).or_insert(0) += 1;
    }

    // Greedy maximum matching by descending overlap.
    let mut pairs: Vec<((usize, usize), usize)> = overlap.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut new_matched: HashMap<usize, usize> = HashMap::new();
    let mut old_taken: Vec<bool> = vec![false; prev.num_servers()];
    for ((new_s, old_s), _) in pairs {
        if !new_matched.contains_key(&new_s) && !old_taken[old_s] {
            new_matched.insert(new_s, old_s);
            old_taken[old_s] = true;
        }
    }

    next.assignments()
        .iter()
        .zip(prev.assignments())
        .filter(|&(&new_s, &old_s)| new_matched.get(&new_s) != Some(&old_s))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_units::Frequency;

    fn plan(assignments: Vec<usize>, n: usize) -> SlotPlan {
        SlotPlan::new(
            assignments,
            n,
            61.0,
            100.0,
            Frequency::from_ghz(1.9),
            Frequency::from_mhz(100.0),
            Frequency::from_ghz(3.1),
        )
    }

    #[test]
    fn identical_plans_have_zero_migrations() {
        let a = plan(vec![0, 1, 0, 1], 2);
        assert_eq!(migration_count(&a, &a.clone()), 0);
    }

    #[test]
    fn relabeling_is_free() {
        let a = plan(vec![0, 0, 1, 1, 2], 3);
        let b = plan(vec![2, 2, 0, 0, 1], 3);
        assert_eq!(migration_count(&a, &b), 0);
    }

    #[test]
    fn single_move_counts_once() {
        let a = plan(vec![0, 0, 1, 1], 2);
        let b = plan(vec![0, 1, 1, 1], 2);
        assert_eq!(migration_count(&a, &b), 1);
    }

    #[test]
    fn full_reshuffle_counts_most_vms() {
        let a = plan(vec![0, 0, 0, 1, 1, 1], 2);
        let b = plan(vec![0, 1, 0, 1, 0, 1], 2);
        // best matching keeps at most 2+2 VMs in place -> 2 migrations
        assert_eq!(migration_count(&a, &b), 2);
    }

    #[test]
    fn consolidation_from_spread_counts_moves() {
        // 4 servers -> 1 server: three of the four VMs must move.
        let a = plan(vec![0, 1, 2, 3], 4);
        let b = plan(vec![0, 0, 0, 0], 1);
        assert_eq!(migration_count(&a, &b), 3);
    }

    #[test]
    #[should_panic(expected = "same fleet")]
    fn mismatched_fleets_rejected() {
        let a = plan(vec![0], 1);
        let b = plan(vec![0, 0], 1);
        let _ = migration_count(&a, &b);
    }
}
