use ntc_power::ServerPowerModel;
use ntc_trace::{CorrelationCache, DayCache, TimeSeries};
use ntc_units::Frequency;
use serde::{Deserialize, Serialize};

use crate::Error;

/// Day-level prefix-sum caches backing a slot's correlation queries:
/// the CPU and memory [`DayCache`]s plus the offset of the slot window
/// within the day. Attached to a [`SlotContext`] via
/// [`with_day_window`](SlotContext::with_day_window).
#[derive(Debug, Clone, Copy)]
struct DayWindow<'a> {
    cpu: &'a DayCache,
    mem: &'a DayCache,
    offset: usize,
}

/// Everything a policy sees when allocating one time slot: the predicted
/// per-VM utilization patterns for the slot and the server model.
///
/// Utilizations are percent of one server's capacity (CPU capacity is
/// defined at `Fmax`).
#[derive(Debug)]
pub struct SlotContext<'a> {
    predicted_cpu: &'a [TimeSeries],
    predicted_mem: &'a [TimeSeries],
    server: &'a ServerPowerModel,
    max_servers: usize,
    day: Option<DayWindow<'a>>,
}

impl<'a> SlotContext<'a> {
    /// Builds a context, validating the prediction lists.
    ///
    /// # Errors
    ///
    /// Returns an error if the CPU and memory prediction lists differ in
    /// length, are empty, contain series of unequal length, or
    /// `max_servers` is zero.
    pub fn try_new(
        predicted_cpu: &'a [TimeSeries],
        predicted_mem: &'a [TimeSeries],
        server: &'a ServerPowerModel,
        max_servers: usize,
    ) -> Result<Self, Error> {
        if predicted_cpu.len() != predicted_mem.len() {
            return Err(Error::PredictionCountMismatch {
                cpu: predicted_cpu.len(),
                mem: predicted_mem.len(),
            });
        }
        if predicted_cpu.is_empty() {
            return Err(Error::NoVms);
        }
        if max_servers == 0 {
            return Err(Error::NoServers);
        }
        let len = predicted_cpu[0].len();
        if !predicted_cpu
            .iter()
            .chain(predicted_mem.iter())
            .all(|s| s.len() == len)
        {
            return Err(Error::RaggedSeries);
        }
        Ok(Self {
            predicted_cpu,
            predicted_mem,
            server,
            max_servers,
            day: None,
        })
    }

    /// Builds a context, panicking on invalid input.
    ///
    /// Thin wrapper over [`SlotContext::try_new`] for call sites (tests,
    /// examples, experiment runners) where invalid input is a bug.
    ///
    /// # Panics
    ///
    /// Panics if the CPU and memory prediction lists differ in length,
    /// are empty, contain series of unequal length, or `max_servers`
    /// is zero.
    #[track_caller]
    pub fn new(
        predicted_cpu: &'a [TimeSeries],
        predicted_mem: &'a [TimeSeries],
        server: &'a ServerPowerModel,
        max_servers: usize,
    ) -> Self {
        match Self::try_new(predicted_cpu, predicted_mem, server, max_servers) {
            Ok(ctx) => ctx,
            Err(e) => panic!("{e}"),
        }
    }

    /// Attaches day-level prefix-sum caches whose window at `offset`
    /// holds this slot's predicted values, letting
    /// [`corr_cpu`](Self::corr_cpu)/[`corr_mem`](Self::corr_mem) answer
    /// correlation queries from the day's memoized prefix sums instead
    /// of rebuilding per-slot state. The caller guarantees the day
    /// values at `offset..offset + slot_len` are the slot's predicted
    /// values; moments are bit-identical either way (see
    /// [`CorrelationCache::from_day_window`]).
    ///
    /// # Panics
    ///
    /// Panics if either cache covers a different number of series than
    /// the context has VMs, or the slot window reaches outside the day.
    pub fn with_day_window(mut self, cpu: &'a DayCache, mem: &'a DayCache, offset: usize) -> Self {
        assert_eq!(
            cpu.num_series(),
            self.num_vms(),
            "day cache must cover every VM"
        );
        assert_eq!(
            mem.num_series(),
            self.num_vms(),
            "day cache must cover every VM"
        );
        let end = offset + self.slot_len();
        assert!(
            end <= cpu.len() && end <= mem.len(),
            "slot window {offset}..{end} outside the day caches"
        );
        self.day = Some(DayWindow { cpu, mem, offset });
        self
    }

    /// A correlation cache over the slot's predicted CPU series —
    /// borrowing the attached day cache's window when one is present,
    /// otherwise building a fresh per-slot cache.
    pub fn corr_cpu(&self) -> CorrelationCache<'_> {
        match &self.day {
            Some(d) => {
                CorrelationCache::from_day_window(d.cpu, d.offset..d.offset + self.slot_len())
            }
            None => CorrelationCache::new(self.predicted_cpu),
        }
    }

    /// A correlation cache over the slot's predicted memory series; see
    /// [`corr_cpu`](Self::corr_cpu).
    pub fn corr_mem(&self) -> CorrelationCache<'_> {
        match &self.day {
            Some(d) => {
                CorrelationCache::from_day_window(d.mem, d.offset..d.offset + self.slot_len())
            }
            None => CorrelationCache::new(self.predicted_mem),
        }
    }

    /// Per-VM predicted CPU series (percent of server capacity at Fmax).
    pub fn predicted_cpu(&self) -> &[TimeSeries] {
        self.predicted_cpu
    }

    /// Per-VM predicted memory series (percent of server memory).
    pub fn predicted_mem(&self) -> &[TimeSeries] {
        self.predicted_mem
    }

    /// The server power model (provides Fmax and the DVFS levels).
    pub fn server(&self) -> &ServerPowerModel {
        self.server
    }

    /// Number of physical servers installed.
    pub fn max_servers(&self) -> usize {
        self.max_servers
    }

    /// Number of VMs.
    pub fn num_vms(&self) -> usize {
        self.predicted_cpu.len()
    }

    /// Number of samples in the slot.
    pub fn slot_len(&self) -> usize {
        self.predicted_cpu[0].len()
    }

    /// Peak (over samples) of the aggregate predicted CPU demand —
    /// the `max_n(Σ Ũcpu)` of Eq. 1.
    pub fn peak_aggregate_cpu(&self) -> f64 {
        TimeSeries::aggregate(self.slot_len(), self.predicted_cpu).peak()
    }

    /// Peak of the aggregate predicted memory demand — the
    /// `max_n(Σ Ũmem)` of Eq. 1.
    pub fn peak_aggregate_mem(&self) -> f64 {
        TimeSeries::aggregate(self.slot_len(), self.predicted_mem).peak()
    }
}

/// A policy's decision for one slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotPlan {
    assignments: Vec<usize>,
    num_servers: usize,
    cap_cpu: f64,
    cap_mem: f64,
    planned_freq: Frequency,
    dvfs_floor: Frequency,
    dvfs_ceiling: Frequency,
}

impl SlotPlan {
    /// Creates a plan.
    ///
    /// The `dvfs_floor`/`dvfs_ceiling` pair encodes how much online
    /// frequency freedom the policy grants the governor: EPACT allows
    /// the full range (`fmin..=Fmax`), COAT runs consolidated servers at
    /// the highest frequency (`floor == ceiling == Fmax`), and COAT-OPT
    /// pins servers at its fixed optimal cap.
    ///
    /// # Errors
    ///
    /// Returns an error if any assignment refers to a server
    /// `>= num_servers`, the caps are non-positive, or the planned
    /// frequency lies outside `[dvfs_floor, dvfs_ceiling]`.
    pub fn try_new(
        assignments: Vec<usize>,
        num_servers: usize,
        cap_cpu: f64,
        cap_mem: f64,
        planned_freq: Frequency,
        dvfs_floor: Frequency,
        dvfs_ceiling: Frequency,
    ) -> Result<Self, Error> {
        if num_servers == 0 {
            return Err(Error::EmptyPlan);
        }
        if let Some((vm, &server)) = assignments
            .iter()
            .enumerate()
            .find(|&(_, &s)| s >= num_servers)
        {
            return Err(Error::AssignmentOutOfRange {
                vm,
                server,
                num_servers,
            });
        }
        if cap_cpu <= 0.0 || cap_mem <= 0.0 {
            return Err(Error::NonPositiveCaps { cap_cpu, cap_mem });
        }
        if dvfs_floor > dvfs_ceiling {
            return Err(Error::InvertedDvfsRange {
                floor: dvfs_floor,
                ceiling: dvfs_ceiling,
            });
        }
        if planned_freq < dvfs_floor || planned_freq > dvfs_ceiling {
            return Err(Error::FrequencyOutsideRange {
                planned: planned_freq,
                floor: dvfs_floor,
                ceiling: dvfs_ceiling,
            });
        }
        Ok(Self {
            assignments,
            num_servers,
            cap_cpu,
            cap_mem,
            planned_freq,
            dvfs_floor,
            dvfs_ceiling,
        })
    }

    /// Creates a plan, panicking on invalid input.
    ///
    /// Thin wrapper over [`SlotPlan::try_new`] for policies whose own
    /// invariants already guarantee validity.
    ///
    /// # Panics
    ///
    /// Panics if any assignment refers to a server `>= num_servers`, the
    /// caps are non-positive, or the planned frequency lies outside
    /// `[dvfs_floor, dvfs_ceiling]`.
    #[track_caller]
    pub fn new(
        assignments: Vec<usize>,
        num_servers: usize,
        cap_cpu: f64,
        cap_mem: f64,
        planned_freq: Frequency,
        dvfs_floor: Frequency,
        dvfs_ceiling: Frequency,
    ) -> Self {
        match Self::try_new(
            assignments,
            num_servers,
            cap_cpu,
            cap_mem,
            planned_freq,
            dvfs_floor,
            dvfs_ceiling,
        ) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// `assignments()[vm]` is the server index hosting VM `vm`.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Number of turned-on servers.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// The CPU cap used during packing, percent of capacity at Fmax.
    pub fn cap_cpu(&self) -> f64 {
        self.cap_cpu
    }

    /// The memory cap used during packing, percent of server memory.
    pub fn cap_mem(&self) -> f64 {
        self.cap_mem
    }

    /// The frequency the policy planned servers to run at.
    pub fn planned_freq(&self) -> Frequency {
        self.planned_freq
    }

    /// The highest frequency the policy allows the online governor to
    /// raise a server to (Fmax for dynamic policies, the fixed cap for
    /// COAT-OPT).
    pub fn dvfs_ceiling(&self) -> Frequency {
        self.dvfs_ceiling
    }

    /// The lowest frequency the policy allows the online governor to
    /// drop a server to (fmin for EPACT; the planned frequency itself
    /// for the fixed-frequency consolidation baselines).
    pub fn dvfs_floor(&self) -> Frequency {
        self.dvfs_floor
    }

    /// The per-server list of hosted VM indices.
    pub fn vms_per_server(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_servers];
        for (vm, &s) in self.assignments.iter().enumerate() {
            out[s].push(vm);
        }
        out
    }

    /// Aggregated series (sum of `series[vm]` for VMs on each server).
    ///
    /// # Panics
    ///
    /// Panics if `series` is shorter than the assignment list.
    pub fn aggregate_per_server(&self, series: &[TimeSeries]) -> Vec<TimeSeries> {
        let mut out = Vec::new();
        self.aggregate_per_server_into(series, &mut out);
        out
    }

    /// [`aggregate_per_server`](SlotPlan::aggregate_per_server) into a
    /// caller-owned buffer, reusing its allocations — the form the
    /// slot-replay hot loop of `ntc_datacenter::WeekSim` uses. `out` is
    /// resized to `num_servers` and every entry reset before
    /// accumulation.
    ///
    /// # Panics
    ///
    /// Panics if `series` is shorter than the assignment list.
    pub fn aggregate_per_server_into(&self, series: &[TimeSeries], out: &mut Vec<TimeSeries>) {
        assert!(
            series.len() >= self.assignments.len(),
            "need one series per assigned VM"
        );
        let len = series.first().map_or(0, |s| s.len());
        out.resize_with(self.num_servers, || TimeSeries::zeros(0));
        for s in out.iter_mut() {
            s.reset_zeros(len);
        }
        for (vm, &s) in self.assignments.iter().enumerate() {
            out[s].add_in_place(&series[vm]);
        }
    }
}

/// A slot-level VM allocation policy (EPACT, COAT, COAT-OPT, …).
pub trait AllocationPolicy: std::fmt::Debug {
    /// The policy's display name.
    fn name(&self) -> &str;

    /// Produces the plan for one allocation window from predicted
    /// utilizations.
    fn allocate(&self, ctx: &SlotContext<'_>) -> SlotPlan;

    /// How many hourly slots one plan stays in force.
    ///
    /// EPACT re-allocates every slot (its defining "dynamic" property,
    /// §V-B); the consolidation baselines follow the daily utilization
    /// patterns of Kim et al. and re-allocate once per day (24 slots).
    fn reallocation_period_slots(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_series(n: usize, v: f64) -> Vec<TimeSeries> {
        vec![TimeSeries::constant(4, v); n]
    }

    #[test]
    fn context_aggregates() {
        let server = ServerPowerModel::ntc();
        let cpu = ctx_series(10, 5.0);
        let mem = ctx_series(10, 2.0);
        let ctx = SlotContext::new(&cpu, &mem, &server, 100);
        assert_eq!(ctx.num_vms(), 10);
        assert!((ctx.peak_aggregate_cpu() - 50.0).abs() < 1e-9);
        assert!((ctx.peak_aggregate_mem() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn day_window_backs_correlation_queries() {
        let server = ServerPowerModel::ntc();
        let day_series: Vec<TimeSeries> = (0..3)
            .map(|i| {
                TimeSeries::from_values((0..8).map(|t| ((i * 3 + t * 5) % 7) as f64).collect())
            })
            .collect();
        let day = ntc_trace::DayCache::new(&day_series);
        let slot_cpu: Vec<TimeSeries> = day_series.iter().map(|s| s.window(4..8)).collect();
        let slot_mem = slot_cpu.clone();
        let ctx =
            SlotContext::new(&slot_cpu, &slot_mem, &server, 100).with_day_window(&day, &day, 4);
        let mut windowed = ctx.corr_cpu();
        let mut fresh = ntc_trace::CorrelationCache::new(&slot_cpu);
        for i in 0..3 {
            assert_eq!(windowed.variance(i), fresh.variance(i));
            for j in 0..3 {
                assert!((windowed.covariance(i, j) - fresh.covariance(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside the day caches")]
    fn day_window_must_cover_the_slot() {
        let server = ServerPowerModel::ntc();
        let day_series = vec![TimeSeries::zeros(8)];
        let day = ntc_trace::DayCache::new(&day_series);
        let cpu = vec![TimeSeries::zeros(4)];
        let mem = vec![TimeSeries::zeros(4)];
        let _ = SlotContext::new(&cpu, &mem, &server, 100).with_day_window(&day, &day, 6);
    }

    #[test]
    fn plan_per_server_views() {
        let f = Frequency::from_ghz(1.9);
        let plan = SlotPlan::new(
            vec![0, 1, 0],
            2,
            61.0,
            100.0,
            f,
            Frequency::from_mhz(100.0),
            Frequency::from_ghz(3.1),
        );
        assert_eq!(plan.vms_per_server(), vec![vec![0, 2], vec![1]]);
        let series = vec![
            TimeSeries::constant(2, 1.0),
            TimeSeries::constant(2, 2.0),
            TimeSeries::constant(2, 3.0),
        ];
        let agg = plan.aggregate_per_server(&series);
        assert_eq!(agg[0].values(), &[4.0, 4.0]);
        assert_eq!(agg[1].values(), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "beyond num_servers")]
    fn bad_assignment_rejected() {
        let f = Frequency::from_ghz(1.9);
        let _ = SlotPlan::new(
            vec![2],
            2,
            50.0,
            100.0,
            f,
            Frequency::from_mhz(100.0),
            Frequency::from_ghz(3.1),
        );
    }

    #[test]
    #[should_panic(expected = "outside the online range")]
    fn inverted_frequencies_rejected() {
        let _ = SlotPlan::new(
            vec![0],
            1,
            50.0,
            100.0,
            Frequency::from_ghz(3.1),
            Frequency::from_mhz(100.0),
            Frequency::from_ghz(1.9),
        );
    }
}
