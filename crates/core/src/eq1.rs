//! Equation 1 of the paper: the CPU-side and memory-side estimates of
//! the number of servers to turn on, and the slot-level Fopt search.
//!
//! ```text
//! N̂cpu = max_n(Σ_k Ũcpu^{k,n}) · Fmax / (F_NTC_opt · 100)
//! N̂mem = max_n(Σ_k Ũmem^{k,n}) / 100
//! ```
//!
//! When `N̂cpu > N̂mem` the data center is CPU-dominated and EPACT
//! exhaustively explores server counts between the two estimates for the
//! operating frequency with the lowest worst-case power; otherwise
//! memory dominates and `Fopt = max_n(ΣŨcpu)·Fmax / (N̂mem·100)`.

use ntc_power::ServerPowerModel;
use ntc_units::{Frequency, Percent};

use crate::SlotContext;

/// The CPU-side server-count estimate `N̂cpu` (Eq. 1, left).
///
/// `f_ntc_opt` is the data-center-optimal frequency (≈1.9 GHz for the
/// NTC server, §V-A).
pub fn nhat_cpu(peak_aggregate_cpu: f64, fmax: Frequency, f_ntc_opt: Frequency) -> usize {
    assert!(peak_aggregate_cpu >= 0.0, "demand must be non-negative");
    ((peak_aggregate_cpu * fmax.as_mhz()) / (f_ntc_opt.as_mhz() * 100.0)).ceil() as usize
}

/// The memory-side server-count estimate `N̂mem` (Eq. 1, right).
pub fn nhat_mem(peak_aggregate_mem: f64) -> usize {
    assert!(peak_aggregate_mem >= 0.0, "demand must be non-negative");
    (peak_aggregate_mem / 100.0).ceil() as usize
}

/// The outcome of the Eq. 1 case split for one slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerCountDecision {
    /// Servers to turn on.
    pub num_servers: usize,
    /// The slot's target operating frequency `F_T_opt`.
    pub fopt: Frequency,
    /// `true` if the slot is CPU-dominated (Algorithm 1 applies),
    /// `false` if memory-dominated (Algorithm 2 applies).
    pub cpu_dominated: bool,
}

/// The lowest DVFS level of `server` able to serve `peak_cpu` percent of
/// Fmax-capacity spread over `n` servers (rounded up to a real level;
/// Fmax if even that is insufficient).
fn level_for(server: &ServerPowerModel, peak_cpu: f64, n: usize) -> Frequency {
    let needed = Frequency::from_mhz(
        (peak_cpu * server.fmax().as_mhz() / (n as f64 * 100.0)).min(server.fmax().as_mhz()),
    );
    server
        .cores()
        .vf_curve()
        .level_at_or_above(needed)
        .unwrap_or_else(|| server.fmax())
}

/// Runs Eq. 1 and the case split on a slot context, returning the server
/// count and target frequency EPACT will use.
///
/// In the CPU-dominated case every candidate count `N` in
/// `[max(N̂mem,1), N̂cpu]` is evaluated at its minimum feasible DVFS
/// level and the count with the lowest worst-case data-center power
/// (all `N` servers fully busy at that level) wins — the exhaustive
/// exploration of §V-B case 1.
pub fn decide(ctx: &SlotContext<'_>, f_ntc_opt: Frequency) -> ServerCountDecision {
    let server = ctx.server();
    let peak_cpu = ctx.peak_aggregate_cpu();
    let peak_mem = ctx.peak_aggregate_mem();
    let n_cpu = nhat_cpu(peak_cpu, server.fmax(), f_ntc_opt).clamp(1, ctx.max_servers());
    let n_mem = nhat_mem(peak_mem).clamp(1, ctx.max_servers());

    if n_cpu > n_mem {
        // CPU-dominated: explore all counts between the two estimates.
        let lo = n_mem.max(1);
        let hi = n_cpu;
        let mut best: Option<(usize, Frequency, f64)> = None;
        for n in lo..=hi {
            let f = level_for(server, peak_cpu, n);
            // feasibility: n servers at level f must cover the peak
            if (n as f64) * f.as_mhz() * 100.0 < peak_cpu * server.fmax().as_mhz() - 1e-6 {
                continue;
            }
            let power = server.power(f, Percent::FULL, Percent::ZERO).as_watts() * n as f64;
            if best.is_none_or(|(_, _, p)| power < p) {
                best = Some((n, f, power));
            }
        }
        let (num_servers, fopt, _) = best.unwrap_or((hi, server.fmax(), f64::MAX));
        ServerCountDecision {
            num_servers,
            fopt,
            cpu_dominated: true,
        }
    } else {
        // Memory-dominated: the server count is fixed by memory and the
        // frequency follows from spreading the CPU peak over it.
        let fopt = level_for(server, peak_cpu, n_mem);
        ServerCountDecision {
            num_servers: n_mem,
            fopt,
            cpu_dominated: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_trace::TimeSeries;

    fn f(g: f64) -> Frequency {
        Frequency::from_ghz(g)
    }

    #[test]
    fn nhat_cpu_matches_formula() {
        // 1000% of Fmax-capacity at Fopt 1.9/3.1 needs 1000*3.1/1.9/100
        // = 16.3 -> 17 servers.
        assert_eq!(nhat_cpu(1000.0, f(3.1), f(1.9)), 17);
        assert_eq!(nhat_cpu(0.0, f(3.1), f(1.9)), 0);
    }

    #[test]
    fn nhat_mem_matches_formula() {
        assert_eq!(nhat_mem(250.0), 3);
        assert_eq!(nhat_mem(300.0), 3);
        assert_eq!(nhat_mem(300.1), 4);
    }

    #[test]
    fn cpu_dominated_decision_prefers_near_optimal_frequency() {
        let server = ntc_power::ServerPowerModel::ntc();
        // 40 VMs each ~5% CPU, negligible memory: CPU-dominated.
        let cpu = vec![TimeSeries::constant(12, 5.0); 40];
        let mem = vec![TimeSeries::constant(12, 0.5); 40];
        let ctx = SlotContext::new(&cpu, &mem, &server, 600);
        let d = decide(&ctx, f(1.9));
        assert!(d.cpu_dominated);
        // peak = 200%; at 1.9 GHz servers serve 61.29% each -> ~4 servers
        assert!(
            (3..=5).contains(&d.num_servers),
            "expected ~4 servers, got {}",
            d.num_servers
        );
        assert!(
            (1.4..=2.2).contains(&d.fopt.as_ghz()),
            "Fopt should be near F_NTC_opt, got {}",
            d.fopt
        );
        // the chosen count must actually cover the demand
        assert!(d.num_servers as f64 * d.fopt.ratio(server.fmax()) * 100.0 >= 200.0 - 1e-6);
    }

    #[test]
    fn memory_dominated_decision() {
        let server = ntc_power::ServerPowerModel::ntc();
        // 30 VMs, tiny CPU but 20% memory each: memory dominates.
        let cpu = vec![TimeSeries::constant(12, 0.5); 30];
        let mem = vec![TimeSeries::constant(12, 20.0); 30];
        let ctx = SlotContext::new(&cpu, &mem, &server, 600);
        let d = decide(&ctx, f(1.9));
        assert!(!d.cpu_dominated);
        // 600% memory -> 6 servers; CPU peak 15% over 6 servers -> lowest level
        assert_eq!(d.num_servers, 6);
        assert_eq!(d.fopt, server.fmin());
    }

    #[test]
    fn decision_respects_server_limit() {
        let server = ntc_power::ServerPowerModel::ntc();
        let cpu = vec![TimeSeries::constant(12, 90.0); 50]; // absurd demand
        let mem = vec![TimeSeries::constant(12, 0.5); 50];
        let ctx = SlotContext::new(&cpu, &mem, &server, 10);
        let d = decide(&ctx, f(1.9));
        assert!(d.num_servers <= 10);
    }
}
