use ntc_trace::{CorrelationCache, TimeSeries};

use crate::Error;

/// Guard against zero distance (a perfect fill) with a small epsilon;
/// the merit then becomes very large, which is exactly the intended
/// preference.
const EPS: f64 = 1e-6;

/// Algorithm 2 of the paper: the 2-D (CPU + memory) merit-function
/// allocator used when memory dominates.
///
/// For every VM the allocator scans all candidate servers that can host
/// it at every sample of the slot (both CPU and memory caps), scores
/// each feasible server with the merit function of Eq. 2
///
/// ```text
/// M = ωcpu · φcpu / Distcpu + ωmem · φmem / Distmem
/// ωcpu = Capcpu/(Capcpu+Capmem),  ωmem = Capmem/(Capcpu+Capmem)
/// ```
///
/// where φ is the Pearson correlation of the VM's pattern with the
/// server's complementary pattern and `Dist` is the Euclidean distance
/// of the VM's pattern to the server's *remaining capacity* — high merit
/// means "same shape as the valley and close to exactly filling it".
///
/// # Examples
///
/// ```
/// use ntc_core::TwoDimAllocator;
/// use ntc_trace::TimeSeries;
///
/// let cpu = vec![TimeSeries::constant(4, 20.0); 4];
/// let mem = vec![TimeSeries::constant(4, 40.0); 4];
/// let alloc = TwoDimAllocator::new(50.0, 100.0, 2);
/// let assignment = alloc.allocate(&cpu, &mem);
/// // memory cap 100 admits two 40% VMs per server
/// assert_eq!(assignment.iter().filter(|&&s| s == 0).count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoDimAllocator {
    cap_cpu: f64,
    cap_mem: f64,
    num_servers: usize,
    use_distance: bool,
}

/// Builder for [`TwoDimAllocator`], collecting the optional knobs
/// (currently the Eq. 2 distance-term ablation) before validation.
///
/// Obtained from [`TwoDimAllocator::builder`]; finish with
/// [`build`](TwoDimAllocatorBuilder::build) (fallible) or
/// [`build_or_panic`](TwoDimAllocatorBuilder::build_or_panic).
#[derive(Debug, Clone, Copy)]
pub struct TwoDimAllocatorBuilder {
    cap_cpu: f64,
    cap_mem: f64,
    num_servers: usize,
    use_distance: bool,
}

impl TwoDimAllocatorBuilder {
    /// Disables the Euclidean-distance term of Eq. 2, scoring servers
    /// by correlation alone — the ablation the paper's Eq. 2 discussion
    /// motivates ("the Pearson Correlation cannot reflect the closeness
    /// … to the server cap").
    pub fn correlation_only(mut self) -> Self {
        self.use_distance = false;
        self
    }

    /// Validates the configuration and builds the allocator.
    ///
    /// # Errors
    ///
    /// Returns an error if either cap is non-positive or
    /// `num_servers == 0`.
    pub fn build(self) -> Result<TwoDimAllocator, Error> {
        if self.cap_cpu <= 0.0 || self.cap_mem <= 0.0 {
            return Err(Error::NonPositiveCaps {
                cap_cpu: self.cap_cpu,
                cap_mem: self.cap_mem,
            });
        }
        if self.num_servers == 0 {
            return Err(Error::NoServers);
        }
        Ok(TwoDimAllocator {
            cap_cpu: self.cap_cpu,
            cap_mem: self.cap_mem,
            num_servers: self.num_servers,
            use_distance: self.use_distance,
        })
    }

    /// Builds the allocator, panicking on invalid configuration.
    ///
    /// # Panics
    ///
    /// Panics if either cap is non-positive or `num_servers == 0`.
    #[track_caller]
    pub fn build_or_panic(self) -> TwoDimAllocator {
        match self.build() {
            Ok(alloc) => alloc,
            Err(e) => panic!("{e}"),
        }
    }
}

impl TwoDimAllocator {
    /// Starts a builder with the slot's caps (percent) and the number of
    /// servers chosen by Eq. 1; chain the optional knobs and finish with
    /// [`TwoDimAllocatorBuilder::build`].
    ///
    /// # Examples
    ///
    /// ```
    /// use ntc_core::TwoDimAllocator;
    ///
    /// let ablated = TwoDimAllocator::builder(61.3, 100.0, 4)
    ///     .correlation_only()
    ///     .build()
    ///     .unwrap();
    /// assert!((ablated.weight_cpu() + ablated.weight_mem() - 1.0).abs() < 1e-12);
    /// ```
    pub fn builder(cap_cpu: f64, cap_mem: f64, num_servers: usize) -> TwoDimAllocatorBuilder {
        TwoDimAllocatorBuilder {
            cap_cpu,
            cap_mem,
            num_servers,
            use_distance: true,
        }
    }

    /// Creates the allocator with the slot's caps (percent) and the
    /// number of servers chosen by Eq. 1.
    ///
    /// # Errors
    ///
    /// Returns an error if either cap is non-positive or
    /// `num_servers == 0`.
    pub fn try_new(cap_cpu: f64, cap_mem: f64, num_servers: usize) -> Result<Self, Error> {
        Self::builder(cap_cpu, cap_mem, num_servers).build()
    }

    /// Creates the allocator, panicking on invalid configuration.
    ///
    /// Thin wrapper over [`TwoDimAllocator::try_new`]; use
    /// [`TwoDimAllocator::builder`] to reach the optional knobs.
    ///
    /// # Panics
    ///
    /// Panics if either cap is non-positive or `num_servers == 0`.
    #[track_caller]
    pub fn new(cap_cpu: f64, cap_mem: f64, num_servers: usize) -> Self {
        Self::builder(cap_cpu, cap_mem, num_servers).build_or_panic()
    }

    /// The CPU weight ωcpu of Eq. 2.
    pub fn weight_cpu(&self) -> f64 {
        self.cap_cpu / (self.cap_cpu + self.cap_mem)
    }

    /// The memory weight ωmem of Eq. 2.
    pub fn weight_mem(&self) -> f64 {
        self.cap_mem / (self.cap_cpu + self.cap_mem)
    }

    /// The merit `M` of placing a VM with patterns `(vm_cpu, vm_mem)` on
    /// a server currently loaded with `(srv_cpu, srv_mem)` (Eq. 2).
    pub fn merit(
        &self,
        vm_cpu: &TimeSeries,
        vm_mem: &TimeSeries,
        srv_cpu: &TimeSeries,
        srv_mem: &TimeSeries,
    ) -> f64 {
        let phi_cpu = srv_cpu.complementary().correlation(vm_cpu);
        let phi_mem = srv_mem.complementary().correlation(vm_mem);
        if !self.use_distance {
            return self.weight_cpu() * phi_cpu + self.weight_mem() * phi_mem;
        }
        let dist_cpu = vm_cpu.distance(&srv_cpu.headroom_to(self.cap_cpu)) + EPS;
        let dist_mem = vm_mem.distance(&srv_mem.headroom_to(self.cap_mem)) + EPS;
        self.weight_cpu() * phi_cpu / dist_cpu + self.weight_mem() * phi_mem / dist_mem
    }

    /// Allocates every VM, returning `assignment[vm] = server index`.
    ///
    /// If a VM fits on none of the `num_servers` planned servers, a new
    /// server is opened for it (the returned indices may therefore
    /// exceed `num_servers − 1`; the caller reads the realized count
    /// from the maximum index).
    ///
    /// # Panics
    ///
    /// Panics if the inputs are empty or of mismatched lengths.
    pub fn allocate(&self, cpu: &[TimeSeries], mem: &[TimeSeries]) -> Vec<usize> {
        let mut cache_cpu = CorrelationCache::new(cpu);
        let mut cache_mem = CorrelationCache::new(mem);
        self.allocate_with_caches(cpu, mem, &mut cache_cpu, &mut cache_mem)
    }

    /// [`allocate`](Self::allocate) against caller-provided correlation
    /// caches — the form `ntc_core::Epact` uses so day-level caches
    /// attached to the slot context are reused instead of rebuilding
    /// Pearson terms per slot.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are empty or of mismatched lengths, or a
    /// cache covers a different number of series.
    pub fn allocate_with_caches(
        &self,
        cpu: &[TimeSeries],
        mem: &[TimeSeries],
        cache_cpu: &mut CorrelationCache<'_>,
        cache_mem: &mut CorrelationCache<'_>,
    ) -> Vec<usize> {
        assert!(!cpu.is_empty(), "no VMs to allocate");
        assert_eq!(cpu.len(), mem.len(), "need CPU and memory per VM");
        let slot_len = cpu[0].len();
        assert!(
            cpu.iter().chain(mem.iter()).all(|s| s.len() == slot_len),
            "all series must cover the same slot"
        );
        assert!(
            cache_cpu.num_series() == cpu.len() && cache_mem.num_series() == mem.len(),
            "caches must cover every VM"
        );

        let mut srv_cpu = vec![TimeSeries::zeros(slot_len); self.num_servers];
        let mut srv_mem = vec![TimeSeries::zeros(slot_len); self.num_servers];
        let mut assignment = vec![usize::MAX; cpu.len()];

        // Memoized Pearson terms shared by every candidate scan of the
        // slot, one accumulator per server and dimension: the φ queries
        // of Eq. 2 drop from O(len) each to O(1).
        let mut stats_cpu: Vec<_> = (0..self.num_servers).map(|_| cache_cpu.pattern()).collect();
        let mut stats_mem: Vec<_> = (0..self.num_servers).map(|_| cache_mem.pattern()).collect();

        // Visit VMs in decreasing combined-footprint order so large VMs
        // see the emptiest servers (the 1-D FFD rationale, extended).
        let mut order: Vec<usize> = (0..cpu.len()).collect();
        order.sort_by(|&a, &b| {
            let fa = cpu[a].peak() / self.cap_cpu + mem[a].peak() / self.cap_mem;
            let fb = cpu[b].peak() / self.cap_cpu + mem[b].peak() / self.cap_mem;
            fb.partial_cmp(&fa).expect("finite utilizations")
        });

        for vm in order {
            let mut best: Option<(usize, f64)> = None;
            for j in 0..srv_cpu.len() {
                // Line 3: per-sample feasibility on both dimensions,
                // without materializing the candidate sums.
                if srv_cpu[j].sum_exceeds(&cpu[vm], self.cap_cpu, 1e-9)
                    || srv_mem[j].sum_exceeds(&mem[vm], self.cap_mem, 1e-9)
                {
                    continue;
                }
                // Eq. 2 from cached terms: φ via the running pattern
                // accumulators, Dist against the headroom in place.
                let phi_cpu = stats_cpu[j].complement_correlation(cache_cpu, vm);
                let phi_mem = stats_mem[j].complement_correlation(cache_mem, vm);
                let m = if self.use_distance {
                    let dist_cpu = srv_cpu[j].headroom_distance(self.cap_cpu, &cpu[vm]) + EPS;
                    let dist_mem = srv_mem[j].headroom_distance(self.cap_mem, &mem[vm]) + EPS;
                    self.weight_cpu() * phi_cpu / dist_cpu + self.weight_mem() * phi_mem / dist_mem
                } else {
                    self.weight_cpu() * phi_cpu + self.weight_mem() * phi_mem
                };
                if best.is_none_or(|(_, bm)| m > bm) {
                    best = Some((j, m));
                }
            }
            let j = match best {
                Some((j, _)) => j,
                None => {
                    // Overflow server (misprediction headroom): open one.
                    srv_cpu.push(TimeSeries::zeros(slot_len));
                    srv_mem.push(TimeSeries::zeros(slot_len));
                    stats_cpu.push(cache_cpu.pattern());
                    stats_mem.push(cache_mem.pattern());
                    srv_cpu.len() - 1
                }
            };
            srv_cpu[j].add_in_place(&cpu[vm]);
            srv_mem[j].add_in_place(&mem[vm]);
            stats_cpu[j].admit(cache_cpu, vm);
            stats_mem[j].admit(cache_mem, vm);
            assignment[vm] = j;
        }
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        let a = TwoDimAllocator::new(61.3, 100.0, 4);
        assert!((a.weight_cpu() + a.weight_mem() - 1.0).abs() < 1e-12);
        assert!(a.weight_mem() > a.weight_cpu());
    }

    #[test]
    fn memory_cap_is_enforced() {
        // VMs of 40% memory: at most 2 per server under a 100% cap.
        let cpu = vec![TimeSeries::constant(4, 5.0); 6];
        let mem = vec![TimeSeries::constant(4, 40.0); 6];
        let a = TwoDimAllocator::new(61.3, 100.0, 3).allocate(&cpu, &mem);
        let mut counts = std::collections::HashMap::new();
        for &s in &a {
            *counts.entry(s).or_insert(0usize) += 1;
        }
        assert!(counts.values().all(|&c| c <= 2), "{a:?}");
    }

    #[test]
    fn overflow_opens_new_server() {
        let cpu = vec![TimeSeries::constant(4, 50.0); 3];
        let mem = vec![TimeSeries::constant(4, 10.0); 3];
        // one planned server, cap 61.3: only one VM fits it
        let a = TwoDimAllocator::new(61.3, 100.0, 1).allocate(&cpu, &mem);
        let servers = a.iter().collect::<std::collections::HashSet<_>>().len();
        assert_eq!(servers, 3);
    }

    #[test]
    fn merit_prefers_complementary_shapes() {
        let alloc = TwoDimAllocator::new(61.3, 100.0, 2);
        let srv_cpu = TimeSeries::from_values(vec![40.0, 10.0, 40.0, 10.0]);
        let srv_mem = TimeSeries::constant(4, 30.0);
        let fits_valleys = TimeSeries::from_values(vec![5.0, 20.0, 5.0, 20.0]);
        let peaks_together = TimeSeries::from_values(vec![20.0, 5.0, 20.0, 5.0]);
        let flat_mem = TimeSeries::constant(4, 10.0);
        let m_good = alloc.merit(&fits_valleys, &flat_mem, &srv_cpu, &srv_mem);
        let m_bad = alloc.merit(&peaks_together, &flat_mem, &srv_cpu, &srv_mem);
        assert!(
            m_good > m_bad,
            "valley-filling VM must score higher: {m_good:.4} vs {m_bad:.4}"
        );
    }

    #[test]
    fn distance_term_prefers_tight_fits() {
        // Two servers with the *same load shape* at different levels:
        // the VM correlates identically with both complements, so only
        // the Eq. 2 distance term can steer it — toward the nearly-full
        // server whose remaining capacity it matches.
        let alloc = TwoDimAllocator::new(61.3, 100.0, 2);
        let nearly_full = TimeSeries::from_values(vec![50.0, 40.0, 50.0, 40.0]);
        let nearly_empty = TimeSeries::from_values(vec![15.0, 5.0, 15.0, 5.0]);
        let flat_mem = TimeSeries::constant(4, 10.0);
        let vm = TimeSeries::from_values(vec![5.0, 10.0, 5.0, 10.0]);
        let m_full = alloc.merit(&vm, &flat_mem, &nearly_full, &flat_mem);
        let m_empty = alloc.merit(&vm, &flat_mem, &nearly_empty, &flat_mem);
        assert!(
            m_full > m_empty,
            "the tight fit must score higher: {m_full:.4} vs {m_empty:.4}"
        );
        // while the correlation-only ablation cannot tell them apart
        let co = TwoDimAllocator::builder(61.3, 100.0, 2)
            .correlation_only()
            .build_or_panic();
        let c_full = co.merit(&vm, &flat_mem, &nearly_full, &flat_mem);
        let c_empty = co.merit(&vm, &flat_mem, &nearly_empty, &flat_mem);
        assert!((c_full - c_empty).abs() < 1e-9);
    }

    #[test]
    fn per_sample_feasibility_not_just_peak() {
        // Server loaded at [60, 0]; a VM at [0, 60] fits under cap 61.3
        // per-sample even though the sum of peaks is 120.
        let cpu = vec![
            TimeSeries::from_values(vec![60.0, 0.0]),
            TimeSeries::from_values(vec![0.0, 60.0]),
        ];
        let mem = vec![TimeSeries::constant(2, 5.0); 2];
        let a = TwoDimAllocator::new(61.3, 100.0, 1).allocate(&cpu, &mem);
        assert_eq!(a[0], a[1], "anti-phased VMs must share the server");
    }
}
