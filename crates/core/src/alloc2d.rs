use ntc_trace::TimeSeries;

/// Algorithm 2 of the paper: the 2-D (CPU + memory) merit-function
/// allocator used when memory dominates.
///
/// For every VM the allocator scans all candidate servers that can host
/// it at every sample of the slot (both CPU and memory caps), scores
/// each feasible server with the merit function of Eq. 2
///
/// ```text
/// M = ωcpu · φcpu / Distcpu + ωmem · φmem / Distmem
/// ωcpu = Capcpu/(Capcpu+Capmem),  ωmem = Capmem/(Capcpu+Capmem)
/// ```
///
/// where φ is the Pearson correlation of the VM's pattern with the
/// server's complementary pattern and `Dist` is the Euclidean distance
/// of the VM's pattern to the server's *remaining capacity* — high merit
/// means "same shape as the valley and close to exactly filling it".
///
/// # Examples
///
/// ```
/// use ntc_core::TwoDimAllocator;
/// use ntc_trace::TimeSeries;
///
/// let cpu = vec![TimeSeries::constant(4, 20.0); 4];
/// let mem = vec![TimeSeries::constant(4, 40.0); 4];
/// let alloc = TwoDimAllocator::new(50.0, 100.0, 2);
/// let assignment = alloc.allocate(&cpu, &mem);
/// // memory cap 100 admits two 40% VMs per server
/// assert_eq!(assignment.iter().filter(|&&s| s == 0).count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoDimAllocator {
    cap_cpu: f64,
    cap_mem: f64,
    num_servers: usize,
    use_distance: bool,
}

impl TwoDimAllocator {
    /// Creates the allocator with the slot's caps (percent) and the
    /// number of servers chosen by Eq. 1.
    ///
    /// # Panics
    ///
    /// Panics if either cap is non-positive or `num_servers == 0`.
    pub fn new(cap_cpu: f64, cap_mem: f64, num_servers: usize) -> Self {
        assert!(cap_cpu > 0.0, "CPU cap must be positive");
        assert!(cap_mem > 0.0, "memory cap must be positive");
        assert!(num_servers > 0, "need at least one server");
        Self {
            cap_cpu,
            cap_mem,
            num_servers,
            use_distance: true,
        }
    }

    /// Disables the Euclidean-distance term of Eq. 2, scoring servers
    /// by correlation alone — the ablation the paper's Eq. 2 discussion
    /// motivates ("the Pearson Correlation cannot reflect the closeness
    /// … to the server cap").
    pub fn correlation_only(mut self) -> Self {
        self.use_distance = false;
        self
    }

    /// The CPU weight ωcpu of Eq. 2.
    pub fn weight_cpu(&self) -> f64 {
        self.cap_cpu / (self.cap_cpu + self.cap_mem)
    }

    /// The memory weight ωmem of Eq. 2.
    pub fn weight_mem(&self) -> f64 {
        self.cap_mem / (self.cap_cpu + self.cap_mem)
    }

    /// The merit `M` of placing a VM with patterns `(vm_cpu, vm_mem)` on
    /// a server currently loaded with `(srv_cpu, srv_mem)` (Eq. 2).
    pub fn merit(
        &self,
        vm_cpu: &TimeSeries,
        vm_mem: &TimeSeries,
        srv_cpu: &TimeSeries,
        srv_mem: &TimeSeries,
    ) -> f64 {
        // Guard against zero distance (a perfect fill) with a small
        // epsilon; the merit then becomes very large, which is exactly
        // the intended preference.
        const EPS: f64 = 1e-6;
        let phi_cpu = srv_cpu.complementary().correlation(vm_cpu);
        let phi_mem = srv_mem.complementary().correlation(vm_mem);
        if !self.use_distance {
            return self.weight_cpu() * phi_cpu + self.weight_mem() * phi_mem;
        }
        let dist_cpu = vm_cpu.distance(&srv_cpu.headroom_to(self.cap_cpu)) + EPS;
        let dist_mem = vm_mem.distance(&srv_mem.headroom_to(self.cap_mem)) + EPS;
        self.weight_cpu() * phi_cpu / dist_cpu + self.weight_mem() * phi_mem / dist_mem
    }

    /// Allocates every VM, returning `assignment[vm] = server index`.
    ///
    /// If a VM fits on none of the `num_servers` planned servers, a new
    /// server is opened for it (the returned indices may therefore
    /// exceed `num_servers − 1`; the caller reads the realized count
    /// from the maximum index).
    ///
    /// # Panics
    ///
    /// Panics if the inputs are empty or of mismatched lengths.
    pub fn allocate(&self, cpu: &[TimeSeries], mem: &[TimeSeries]) -> Vec<usize> {
        assert!(!cpu.is_empty(), "no VMs to allocate");
        assert_eq!(cpu.len(), mem.len(), "need CPU and memory per VM");
        let slot_len = cpu[0].len();
        assert!(
            cpu.iter().chain(mem.iter()).all(|s| s.len() == slot_len),
            "all series must cover the same slot"
        );

        let mut srv_cpu = vec![TimeSeries::zeros(slot_len); self.num_servers];
        let mut srv_mem = vec![TimeSeries::zeros(slot_len); self.num_servers];
        let mut assignment = vec![usize::MAX; cpu.len()];

        // Visit VMs in decreasing combined-footprint order so large VMs
        // see the emptiest servers (the 1-D FFD rationale, extended).
        let mut order: Vec<usize> = (0..cpu.len()).collect();
        order.sort_by(|&a, &b| {
            let fa = cpu[a].peak() / self.cap_cpu + mem[a].peak() / self.cap_mem;
            let fb = cpu[b].peak() / self.cap_cpu + mem[b].peak() / self.cap_mem;
            fb.partial_cmp(&fa).expect("finite utilizations")
        });

        for vm in order {
            let mut best: Option<(usize, f64)> = None;
            for j in 0..srv_cpu.len() {
                // Line 3: per-sample feasibility on both dimensions.
                let cpu_ok = !srv_cpu[j].add(&cpu[vm]).exceeds(self.cap_cpu, 1e-9);
                let mem_ok = !srv_mem[j].add(&mem[vm]).exceeds(self.cap_mem, 1e-9);
                if !cpu_ok || !mem_ok {
                    continue;
                }
                let m = self.merit(&cpu[vm], &mem[vm], &srv_cpu[j], &srv_mem[j]);
                if best.is_none_or(|(_, bm)| m > bm) {
                    best = Some((j, m));
                }
            }
            let j = match best {
                Some((j, _)) => j,
                None => {
                    // Overflow server (misprediction headroom): open one.
                    srv_cpu.push(TimeSeries::zeros(slot_len));
                    srv_mem.push(TimeSeries::zeros(slot_len));
                    srv_cpu.len() - 1
                }
            };
            srv_cpu[j] = srv_cpu[j].add(&cpu[vm]);
            srv_mem[j] = srv_mem[j].add(&mem[vm]);
            assignment[vm] = j;
        }
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        let a = TwoDimAllocator::new(61.3, 100.0, 4);
        assert!((a.weight_cpu() + a.weight_mem() - 1.0).abs() < 1e-12);
        assert!(a.weight_mem() > a.weight_cpu());
    }

    #[test]
    fn memory_cap_is_enforced() {
        // VMs of 40% memory: at most 2 per server under a 100% cap.
        let cpu = vec![TimeSeries::constant(4, 5.0); 6];
        let mem = vec![TimeSeries::constant(4, 40.0); 6];
        let a = TwoDimAllocator::new(61.3, 100.0, 3).allocate(&cpu, &mem);
        let mut counts = std::collections::HashMap::new();
        for &s in &a {
            *counts.entry(s).or_insert(0usize) += 1;
        }
        assert!(counts.values().all(|&c| c <= 2), "{a:?}");
    }

    #[test]
    fn overflow_opens_new_server() {
        let cpu = vec![TimeSeries::constant(4, 50.0); 3];
        let mem = vec![TimeSeries::constant(4, 10.0); 3];
        // one planned server, cap 61.3: only one VM fits it
        let a = TwoDimAllocator::new(61.3, 100.0, 1).allocate(&cpu, &mem);
        let servers = a.iter().collect::<std::collections::HashSet<_>>().len();
        assert_eq!(servers, 3);
    }

    #[test]
    fn merit_prefers_complementary_shapes() {
        let alloc = TwoDimAllocator::new(61.3, 100.0, 2);
        let srv_cpu = TimeSeries::from_values(vec![40.0, 10.0, 40.0, 10.0]);
        let srv_mem = TimeSeries::constant(4, 30.0);
        let fits_valleys = TimeSeries::from_values(vec![5.0, 20.0, 5.0, 20.0]);
        let peaks_together = TimeSeries::from_values(vec![20.0, 5.0, 20.0, 5.0]);
        let flat_mem = TimeSeries::constant(4, 10.0);
        let m_good = alloc.merit(&fits_valleys, &flat_mem, &srv_cpu, &srv_mem);
        let m_bad = alloc.merit(&peaks_together, &flat_mem, &srv_cpu, &srv_mem);
        assert!(
            m_good > m_bad,
            "valley-filling VM must score higher: {m_good:.4} vs {m_bad:.4}"
        );
    }

    #[test]
    fn distance_term_prefers_tight_fits() {
        // Two servers with the *same load shape* at different levels:
        // the VM correlates identically with both complements, so only
        // the Eq. 2 distance term can steer it — toward the nearly-full
        // server whose remaining capacity it matches.
        let alloc = TwoDimAllocator::new(61.3, 100.0, 2);
        let nearly_full = TimeSeries::from_values(vec![50.0, 40.0, 50.0, 40.0]);
        let nearly_empty = TimeSeries::from_values(vec![15.0, 5.0, 15.0, 5.0]);
        let flat_mem = TimeSeries::constant(4, 10.0);
        let vm = TimeSeries::from_values(vec![5.0, 10.0, 5.0, 10.0]);
        let m_full = alloc.merit(&vm, &flat_mem, &nearly_full, &flat_mem);
        let m_empty = alloc.merit(&vm, &flat_mem, &nearly_empty, &flat_mem);
        assert!(
            m_full > m_empty,
            "the tight fit must score higher: {m_full:.4} vs {m_empty:.4}"
        );
        // while the correlation-only ablation cannot tell them apart
        let co = TwoDimAllocator::new(61.3, 100.0, 2).correlation_only();
        let c_full = co.merit(&vm, &flat_mem, &nearly_full, &flat_mem);
        let c_empty = co.merit(&vm, &flat_mem, &nearly_empty, &flat_mem);
        assert!((c_full - c_empty).abs() < 1e-9);
    }

    #[test]
    fn per_sample_feasibility_not_just_peak() {
        // Server loaded at [60, 0]; a VM at [0, 60] fits under cap 61.3
        // per-sample even though the sum of peaks is 120.
        let cpu = vec![
            TimeSeries::from_values(vec![60.0, 0.0]),
            TimeSeries::from_values(vec![0.0, 60.0]),
        ];
        let mem = vec![TimeSeries::constant(2, 5.0); 2];
        let a = TwoDimAllocator::new(61.3, 100.0, 1).allocate(&cpu, &mem);
        assert_eq!(a[0], a[1], "anti-phased VMs must share the server");
    }
}
