use ntc_units::Frequency;

/// Errors shared by the fallible constructors across the policy and
/// simulation layers (`SlotContext::try_new`, `SlotPlan::try_new`, the
/// allocator builders, `ntc_datacenter::WeekSim::try_new`, and the
/// experiment engine).
///
/// The `Display` text of each variant contains the exact wording the old
/// panicking constructors used, so callers that matched on panic messages
/// (and `#[should_panic(expected = ...)]` tests) keep working through the
/// thin `new` wrappers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The CPU and memory prediction lists differ in length.
    PredictionCountMismatch {
        /// Number of CPU prediction series.
        cpu: usize,
        /// Number of memory prediction series.
        mem: usize,
    },
    /// A context or allocation request carries no VMs.
    NoVms,
    /// The data center was configured with zero servers.
    NoServers,
    /// Prediction series of unequal length were passed for one slot.
    RaggedSeries,
    /// A plan was built over zero servers.
    EmptyPlan,
    /// An assignment refers to a server index outside the plan.
    AssignmentOutOfRange {
        /// The VM with the offending assignment.
        vm: usize,
        /// The server index it was assigned to.
        server: usize,
        /// The number of servers the plan declared.
        num_servers: usize,
    },
    /// A packing cap (CPU or memory) was zero or negative.
    NonPositiveCaps {
        /// The CPU cap, percent of capacity at Fmax.
        cap_cpu: f64,
        /// The memory cap, percent of server memory.
        cap_mem: f64,
    },
    /// The DVFS floor lies above the ceiling.
    InvertedDvfsRange {
        /// The requested floor.
        floor: Frequency,
        /// The requested ceiling.
        ceiling: Frequency,
    },
    /// The planned frequency lies outside `[floor, ceiling]`.
    FrequencyOutsideRange {
        /// The planned frequency.
        planned: Frequency,
        /// The online floor.
        floor: Frequency,
        /// The online ceiling.
        ceiling: Frequency,
    },
    /// An allocator frequency target is zero or above Fmax.
    InvalidFrequencyTarget {
        /// The requested target frequency.
        fopt: Frequency,
        /// The server's maximum frequency.
        fmax: Frequency,
    },
    /// A fleet's horizon is too short for training plus evaluation.
    HorizonTooShort {
        /// Samples the fleet carries.
        have: usize,
        /// Samples required (two weeks).
        need: usize,
    },
    /// An experiment spec contains no runnable cells.
    EmptySpec,
    /// A static-power scale factor is negative, NaN or infinite.
    BadStaticPowerScale {
        /// The offending scale factor.
        scale: f64,
    },
    /// An accounting backend could not be constructed for its server
    /// platform (reported per cell by the experiment engine instead of
    /// panicking mid-sweep).
    BackendInit {
        /// The backend's label (`"analytic"`, `"archsim"`).
        backend: String,
        /// What went wrong.
        reason: String,
    },
    /// A fault deliberately injected into one sweep cell by the
    /// engine's fault-injection instrument (testing only; never
    /// produced by a production code path).
    FaultInjected {
        /// Spec-order index of the targeted cell.
        cell: usize,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::PredictionCountMismatch { cpu, mem } => write!(
                f,
                "need one CPU and one memory prediction per VM \
                 (got {cpu} CPU vs {mem} memory series)"
            ),
            Self::NoVms => write!(f, "context needs at least one VM"),
            Self::NoServers => write!(f, "data center needs at least one server"),
            Self::RaggedSeries => {
                write!(f, "all prediction series must cover the same slot")
            }
            Self::EmptyPlan => write!(f, "plan must use at least one server"),
            Self::AssignmentOutOfRange {
                vm,
                server,
                num_servers,
            } => write!(
                f,
                "assignment to a server beyond num_servers \
                 (VM {vm} on server {server} of {num_servers})"
            ),
            Self::NonPositiveCaps { cap_cpu, cap_mem } => write!(
                f,
                "caps must be positive (got CPU {cap_cpu}, memory {cap_mem})"
            ),
            Self::InvertedDvfsRange { floor, ceiling } => write!(
                f,
                "DVFS floor above the ceiling ({} > {})",
                floor.as_mhz(),
                ceiling.as_mhz()
            ),
            Self::FrequencyOutsideRange {
                planned,
                floor,
                ceiling,
            } => write!(
                f,
                "planned frequency outside the online range \
                 ({} not in [{}, {}] MHz)",
                planned.as_mhz(),
                floor.as_mhz(),
                ceiling.as_mhz()
            ),
            Self::InvalidFrequencyTarget { fopt, fmax } => write!(
                f,
                "Fopt must be positive and cannot exceed Fmax \
                 (got {} with Fmax {} MHz)",
                fopt.as_mhz(),
                fmax.as_mhz()
            ),
            Self::HorizonTooShort { have, need } => write!(
                f,
                "fleet must carry a training week plus the evaluation week \
                 ({have} samples, need {need})"
            ),
            Self::EmptySpec => write!(f, "experiment spec needs at least one cell"),
            Self::BadStaticPowerScale { scale } => write!(
                f,
                "static-power scale must be finite and non-negative (got {scale})"
            ),
            Self::BackendInit { backend, reason } => {
                write!(f, "backend {backend} failed to initialize: {reason}")
            }
            Self::FaultInjected { cell } => {
                write!(f, "injected fault in cell {cell}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Failures of the trace-level cache constructors
/// (`ntc_trace::CorrelationCache::try_new`, `ntc_trace::DayCache::try_new`)
/// map onto the shared policy-layer error so `?` composes across the
/// crates.
impl From<ntc_trace::Error> for Error {
    fn from(e: ntc_trace::Error) -> Self {
        match e {
            ntc_trace::Error::EmptySeriesSet => Error::NoVms,
            ntc_trace::Error::RaggedSeries => Error::RaggedSeries,
        }
    }
}

/// Convenience alias for results carrying [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    // The wrappers' panic messages are these Display strings; the
    // substrings asserted here are the ones historical
    // `#[should_panic(expected = ...)]` tests match on.
    #[test]
    fn display_preserves_legacy_panic_wording() {
        let cases: Vec<(Error, &str)> = vec![
            (
                Error::PredictionCountMismatch { cpu: 3, mem: 2 },
                "need one CPU and one memory prediction per VM",
            ),
            (Error::NoVms, "context needs at least one VM"),
            (Error::NoServers, "data center needs at least one server"),
            (
                Error::RaggedSeries,
                "all prediction series must cover the same slot",
            ),
            (Error::EmptyPlan, "plan must use at least one server"),
            (
                Error::AssignmentOutOfRange {
                    vm: 0,
                    server: 5,
                    num_servers: 4,
                },
                "beyond num_servers",
            ),
            (
                Error::NonPositiveCaps {
                    cap_cpu: 0.0,
                    cap_mem: 1.0,
                },
                "caps must be positive",
            ),
            (
                Error::InvertedDvfsRange {
                    floor: Frequency::from_ghz(2.0),
                    ceiling: Frequency::from_ghz(1.0),
                },
                "DVFS floor above the ceiling",
            ),
            (
                Error::FrequencyOutsideRange {
                    planned: Frequency::from_ghz(3.0),
                    floor: Frequency::from_ghz(1.0),
                    ceiling: Frequency::from_ghz(2.0),
                },
                "outside the online range",
            ),
            (
                Error::HorizonTooShort {
                    have: 100,
                    need: 4032,
                },
                "training week",
            ),
            (Error::EmptySpec, "at least one cell"),
            (
                Error::BadStaticPowerScale { scale: -1.0 },
                "finite and non-negative",
            ),
            (
                Error::BackendInit {
                    backend: "archsim".to_string(),
                    reason: "missing kernel".to_string(),
                },
                "failed to initialize",
            ),
            (Error::FaultInjected { cell: 3 }, "injected fault in cell 3"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(
                text.contains(needle),
                "{err:?} must display {needle:?}, got {text:?}"
            );
        }
    }
}
