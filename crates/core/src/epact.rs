use ntc_power::DataCenterPowerModel;
use serde::{Deserialize, Serialize};

use crate::{eq1, AllocationPolicy, OneDimAllocator, SlotContext, SlotPlan, TwoDimAllocator};

/// EPACT: the Energy Proportionality-Aware dynamiC allocaTion method
/// (§V-B of the paper).
///
/// Per slot, EPACT:
///
/// 1. computes the Eq. 1 estimates `N̂cpu` / `N̂mem` from the predicted
///    utilization patterns;
/// 2. in the CPU-dominated case, exhaustively explores server counts
///    between the two estimates for the slot frequency `F_T_opt` with
///    the lowest worst-case data-center power, then packs VMs with the
///    correlation-aware 1-D FFD of Algorithm 1;
/// 3. in the memory-dominated case, fixes the server count at `N̂mem`,
///    derives `Fopt` from spreading the CPU peak, and packs with the
///    Eq. 2 merit function of Algorithm 2 (CPU *and* memory caps);
/// 4. leaves the online governor free to raise frequency up to Fmax per
///    sample — the slack that absorbs mispredictions (Fig. 4).
///
/// # Examples
///
/// ```
/// use ntc_core::{AllocationPolicy, Epact};
/// # use ntc_core::SlotContext;
/// # use ntc_power::ServerPowerModel;
/// # use ntc_trace::TimeSeries;
/// let policy = Epact::new();
/// assert_eq!(policy.name(), "EPACT");
/// # let server = ServerPowerModel::ntc();
/// # let cpu = vec![TimeSeries::constant(12, 5.0); 8];
/// # let mem = vec![TimeSeries::constant(12, 1.0); 8];
/// # let ctx = SlotContext::new(&cpu, &mem, &server, 100);
/// # let _ = policy.allocate(&ctx);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Epact {
    correlation_only: bool,
}

impl Epact {
    /// Creates the policy.
    pub fn new() -> Self {
        Self {
            correlation_only: false,
        }
    }

    /// Creates the ablated policy whose memory-dominated Algorithm 2
    /// path scores servers by correlation alone, dropping the Eq. 2
    /// distance term (see
    /// [`TwoDimAllocatorBuilder::correlation_only`](crate::TwoDimAllocatorBuilder::correlation_only)).
    pub fn correlation_only() -> Self {
        Self {
            correlation_only: true,
        }
    }
}

impl AllocationPolicy for Epact {
    fn name(&self) -> &str {
        if self.correlation_only {
            "EPACT-corrOnly"
        } else {
            "EPACT"
        }
    }

    fn allocate(&self, ctx: &SlotContext<'_>) -> SlotPlan {
        let server = ctx.server();
        let fmax = server.fmax();
        // F_NTC_opt: the data-center-optimal frequency of §V-A.
        let dc = DataCenterPowerModel::new(server.clone(), ctx.max_servers());
        let f_ntc_opt = dc.ntc_optimal_frequency();

        let decision = eq1::decide(ctx, f_ntc_opt);
        let cap_cpu = decision.fopt.ratio(fmax) * 100.0;

        let (assignments, realized_servers) = if decision.cpu_dominated {
            let alloc = OneDimAllocator::new(decision.fopt, fmax);
            // ctx.corr_cpu() reuses a day-level cache when one is
            // attached (see SlotContext::with_day_window).
            let mut cache = ctx.corr_cpu();
            let a = alloc.allocate_with_cache(ctx.predicted_cpu(), &mut cache);
            let n = a.iter().max().map_or(1, |&m| m + 1);
            (a, n)
        } else {
            let mut builder = TwoDimAllocator::builder(cap_cpu, 100.0, decision.num_servers);
            if self.correlation_only {
                builder = builder.correlation_only();
            }
            let alloc = builder.build_or_panic();
            let mut cache_cpu = ctx.corr_cpu();
            let mut cache_mem = ctx.corr_mem();
            let a = alloc.allocate_with_caches(
                ctx.predicted_cpu(),
                ctx.predicted_mem(),
                &mut cache_cpu,
                &mut cache_mem,
            );
            let n = a.iter().max().map_or(1, |&m| m + 1);
            (a, n)
        };

        SlotPlan::new(
            assignments,
            realized_servers.min(ctx.max_servers().max(1)),
            cap_cpu,
            100.0,
            decision.fopt,
            server.fmin(), // EPACT keeps full DVFS slack online,
            fmax,          // downward and upward
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntc_power::ServerPowerModel;
    use ntc_trace::TimeSeries;

    #[test]
    fn cpu_dominated_slot_runs_near_f_ntc_opt() {
        let server = ServerPowerModel::ntc();
        let cpu = vec![TimeSeries::constant(12, 5.0); 60];
        let mem = vec![TimeSeries::constant(12, 0.4); 60];
        let ctx = SlotContext::new(&cpu, &mem, &server, 600);
        let plan = Epact::new().allocate(&ctx);
        assert!(
            (1.4..=2.2).contains(&plan.planned_freq().as_ghz()),
            "EPACT must target ~1.9 GHz, got {}",
            plan.planned_freq()
        );
        assert_eq!(plan.dvfs_ceiling(), server.fmax());
        // 300% demand at cap ~61.3% -> ~5-6 servers
        assert!(
            (5..=7).contains(&plan.num_servers()),
            "got {} servers",
            plan.num_servers()
        );
    }

    #[test]
    fn memory_dominated_slot_uses_alg2() {
        let server = ServerPowerModel::ntc();
        // Heavy memory, light CPU: N̂mem ~ 8 > N̂cpu ~ 1.
        let cpu = vec![TimeSeries::constant(12, 0.3); 40];
        let mem = vec![TimeSeries::constant(12, 20.0); 40];
        let ctx = SlotContext::new(&cpu, &mem, &server, 600);
        let plan = Epact::new().allocate(&ctx);
        assert_eq!(plan.num_servers(), 8, "800% memory -> 8 servers");
        // frequency follows the (tiny) CPU demand
        assert_eq!(plan.planned_freq(), server.fmin());
        // packing respects the memory cap everywhere
        let per_server = plan.aggregate_per_server(&mem);
        for s in &per_server {
            assert!(!s.exceeds(100.0, 1e-6));
        }
    }

    #[test]
    fn every_vm_is_placed_exactly_once() {
        let server = ServerPowerModel::ntc();
        let cpu: Vec<TimeSeries> = (0..25)
            .map(|i| TimeSeries::constant(12, 1.0 + (i % 5) as f64))
            .collect();
        let mem = vec![TimeSeries::constant(12, 1.5); 25];
        let ctx = SlotContext::new(&cpu, &mem, &server, 600);
        let plan = Epact::new().allocate(&ctx);
        assert_eq!(plan.assignments().len(), 25);
        let placed: usize = plan.vms_per_server().iter().map(|v| v.len()).sum();
        assert_eq!(placed, 25);
    }

    #[test]
    fn plan_cpu_respects_cap() {
        let server = ServerPowerModel::ntc();
        let cpu: Vec<TimeSeries> = (0..48)
            .map(|i| {
                TimeSeries::from_values((0..12).map(|t| 3.0 + ((i + t) % 7) as f64 * 0.5).collect())
            })
            .collect();
        let mem = vec![TimeSeries::constant(12, 1.0); 48];
        let ctx = SlotContext::new(&cpu, &mem, &server, 600);
        let plan = Epact::new().allocate(&ctx);
        for agg in plan.aggregate_per_server(&cpu) {
            assert!(
                !agg.exceeds(plan.cap_cpu(), 1e-6),
                "a server exceeds the planned cap"
            );
        }
    }
}
