//! EPACT — Energy Proportionality-Aware dynamiC allocaTion — and the
//! consolidation baselines it is evaluated against (§V of the paper).
//!
//! The crate implements the paper's contribution verbatim:
//!
//! * [`eq1`] — the CPU- and memory-side estimates of how many servers to
//!   turn on (Eq. 1), and the slot-level case split;
//! * [`OneDimAllocator`] — Algorithm 1: correlation-aware
//!   first-fit-decreasing over CPU only (the CPU-dominated case);
//! * [`TwoDimAllocator`] — Algorithm 2: the merit function of Eq. 2
//!   combining Pearson correlation and Euclidean distance over both CPU
//!   and memory (the memory-dominated case);
//! * [`Epact`] — the complete policy: predict → Eq. 1 → allocate →
//!   per-sample online DVFS;
//! * [`Coat`] / [`CoatOpt`] — the state-of-the-art consolidation
//!   baselines (correlation-aware VM allocation after Kim et al.,
//!   DATE'13), at maximum cap and at the optimal fixed cap respectively;
//! * [`DvfsGovernor`] — the per-sample frequency selection shared by all
//!   policies.
//!
//! # Examples
//!
//! ```
//! use ntc_core::{AllocationPolicy, Epact, SlotContext};
//! use ntc_power::ServerPowerModel;
//! use ntc_trace::TimeSeries;
//!
//! let server = ServerPowerModel::ntc();
//! let cpu = vec![TimeSeries::constant(12, 4.0); 32];
//! let mem = vec![TimeSeries::constant(12, 1.0); 32];
//! let ctx = SlotContext::new(&cpu, &mem, &server, 600);
//! let plan = Epact::new().allocate(&ctx);
//! assert!(plan.num_servers() >= 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alloc1d;
mod alloc2d;
mod coat;
mod epact;
pub mod eq1;
mod error;
pub mod exhaustive;
mod governor;
mod loadbalance;
mod migration;
mod plan;

pub use alloc1d::OneDimAllocator;
pub use alloc2d::{TwoDimAllocator, TwoDimAllocatorBuilder};
pub use coat::{worst_case_power, Coat, CoatOpt};
pub use epact::Epact;
pub use error::{Error, Result};
pub use governor::{DvfsGovernor, GovernedSample};
pub use loadbalance::LoadBalance;
pub use migration::migration_count;
pub use plan::{AllocationPolicy, SlotContext, SlotPlan};
