use ntc_power::ServerPowerModel;
use ntc_units::{Frequency, Percent};

/// The per-sample online DVFS governor (§V-B, closing paragraph).
///
/// After allocation, every policy sets — per 5-minute sample and per
/// server — the lowest DVFS level whose capacity covers the server's
/// *actual* CPU demand, bounded above by the policy's ceiling (Fmax for
/// the dynamic policies, the fixed optimal cap for COAT-OPT).
///
/// # Examples
///
/// ```
/// use ntc_core::DvfsGovernor;
/// use ntc_power::ServerPowerModel;
///
/// let server = ServerPowerModel::ntc();
/// let gov = DvfsGovernor::new(&server);
/// // 50% of Fmax-capacity needs at least 1.55 GHz: next level is 1.7 GHz
/// let f = gov.level_for_demand(50.0, server.fmax());
/// assert_eq!(f.as_mhz(), 1700.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsGovernor {
    levels: Vec<Frequency>,
    fmax: Frequency,
}

impl DvfsGovernor {
    /// Creates a governor for `server`'s DVFS levels.
    pub fn new(server: &ServerPowerModel) -> Self {
        Self {
            levels: server.dvfs_levels(),
            fmax: server.fmax(),
        }
    }

    /// The lowest DVFS level whose capacity covers `demand` (percent of
    /// Fmax-capacity), clamped to `ceiling`. Demand beyond the ceiling's
    /// capacity returns the ceiling (and the caller records a QoS
    /// violation).
    pub fn level_for_demand(&self, demand: f64, ceiling: Frequency) -> Frequency {
        assert!(demand >= 0.0, "demand must be non-negative");
        let needed_mhz = demand / 100.0 * self.fmax.as_mhz();
        self.levels
            .iter()
            .copied()
            .find(|f| f.as_mhz() + 1e-9 >= needed_mhz && *f <= ceiling)
            .unwrap_or(ceiling)
    }

    /// Core-busy utilization at frequency `f` for a `demand` expressed
    /// against Fmax-capacity (running slower means busier cores), capped
    /// at 100%.
    pub fn utilization_at(&self, demand: f64, f: Frequency) -> Percent {
        assert!(demand >= 0.0, "demand must be non-negative");
        if f == Frequency::ZERO {
            return Percent::FULL;
        }
        Percent::new((demand * self.fmax.ratio(f)).min(100.0))
    }

    /// `true` if `demand` (percent of Fmax-capacity) cannot be served
    /// even at `ceiling` — the violation predicate of Fig. 4.
    pub fn is_violated(&self, demand: f64, ceiling: Frequency) -> bool {
        demand / 100.0 * self.fmax.as_mhz() > ceiling.as_mhz() * (1.0 + 1e-9)
    }

    /// The full per-sample governing decision — the *govern* stage of
    /// the slot pipeline. Given a server's raw CPU/memory demand for one
    /// 5-minute sample and the plan's frequency band, it settles the
    /// serving frequency, the resulting core-busy utilization and the
    /// demand-violation flag in one place, so every accounting backend
    /// prices the same operating point.
    ///
    /// `floor` is the plan's DVFS floor (COAT-OPT pins it to the fixed
    /// cap); `qos_floor`, when present, additionally lifts the level to
    /// `min(qos_floor, ceiling)` (§VI-B3 per-class QoS-safe minima).
    pub fn govern_sample(
        &self,
        demand_cpu: f64,
        demand_mem: f64,
        ceiling: Frequency,
        floor: Frequency,
        qos_floor: Option<Frequency>,
    ) -> GovernedSample {
        let demand_violated = self.is_violated(demand_cpu, ceiling) || demand_mem > 100.0 + 1e-9;
        let mut freq = self
            .level_for_demand(demand_cpu.min(100.0), ceiling)
            .max(floor);
        if let Some(q) = qos_floor {
            freq = freq.max(q.min(ceiling));
        }
        let cpu_util = self.utilization_at(demand_cpu.min(100.0), freq);
        GovernedSample {
            freq,
            cpu_util,
            mem_util: Percent::new(demand_mem.min(100.0)),
            demand_violated,
        }
    }
}

/// One server-sample operating point as settled by the govern stage:
/// the DVFS level actually served, the core-busy utilization at that
/// level, the (capped) memory utilization, and whether raw demand
/// exceeded what the plan's ceiling could serve.
///
/// This is the unit of exchange between the govern stage and the
/// accounting backends — backends price it but never change it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernedSample {
    /// Serving frequency after floor/ceiling/QoS-floor resolution.
    pub freq: Frequency,
    /// Core-busy utilization at `freq` (running slower means busier).
    pub cpu_util: Percent,
    /// Memory utilization, capped at 100%.
    pub mem_util: Percent,
    /// Raw demand exceeded the ceiling's capacity (or memory overflowed):
    /// the slot records a violation regardless of backend.
    pub demand_violated: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gov() -> (ServerPowerModel, DvfsGovernor) {
        let s = ServerPowerModel::ntc();
        let g = DvfsGovernor::new(&s);
        (s, g)
    }

    #[test]
    fn zero_demand_gets_lowest_level() {
        let (s, g) = gov();
        assert_eq!(g.level_for_demand(0.0, s.fmax()), s.fmin());
    }

    #[test]
    fn full_demand_gets_fmax() {
        let (s, g) = gov();
        assert_eq!(g.level_for_demand(100.0, s.fmax()), s.fmax());
    }

    #[test]
    fn ceiling_caps_the_level() {
        let (_, g) = gov();
        let ceiling = Frequency::from_ghz(1.9);
        let f = g.level_for_demand(90.0, ceiling);
        assert_eq!(f, ceiling, "demand beyond the ceiling clamps to it");
        assert!(g.is_violated(90.0, ceiling));
        assert!(!g.is_violated(61.0, ceiling));
    }

    #[test]
    fn utilization_rises_as_frequency_falls() {
        let (s, g) = gov();
        let at_fmax = g.utilization_at(40.0, s.fmax());
        let at_half = g.utilization_at(40.0, Frequency::from_mhz(1550.0));
        assert!((at_fmax.value() - 40.0).abs() < 1e-9);
        assert!((at_half.value() - 80.0).abs() < 1e-9);
        // saturates at 100
        assert_eq!(
            g.utilization_at(90.0, Frequency::from_mhz(310.0)),
            Percent::FULL
        );
    }

    #[test]
    fn chosen_level_always_covers_demand_when_feasible() {
        let (s, g) = gov();
        for demand in [1.0, 7.0, 23.0, 48.0, 61.0, 77.0, 99.0] {
            let f = g.level_for_demand(demand, s.fmax());
            assert!(
                f.as_mhz() >= demand / 100.0 * s.fmax().as_mhz() - 1e-6,
                "level {f} cannot serve {demand}%"
            );
        }
    }
}
