//! Quickstart: build the NTC server power model, sweep its DVFS levels,
//! and see why "consolidate at Fmax" stops being the right answer.
//!
//! Run with: `cargo run --release --example quickstart`

use ntc_dc::power::proportionality::{dynamic_range, ep_index};
use ntc_dc::power::{DataCenterPowerModel, ServerLoad, ServerPowerModel};
use ntc_dc::units::Percent;

fn main() {
    let server = ServerPowerModel::ntc();

    println!("NTC server (16x Cortex-A57, 28nm FD-SOI, 16MB LLC, 16GB DDR4)");
    println!("frequency range: {} - {}\n", server.fmin(), server.fmax());

    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "freq", "cores W", "LLC W", "uncore W", "DRAM W", "total W"
    );
    for f in server.dvfs_levels() {
        let load = ServerLoad::mixed(
            Percent::FULL,
            0.15,
            Percent::new(25.0),
            server.peak_read_bw(),
        );
        let b = server.breakdown(f, &load);
        println!(
            "{:<10} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>10.2}",
            f.to_string(),
            b.cores.as_watts(),
            b.llc.as_watts(),
            b.uncore.as_watts(),
            b.dram.as_watts(),
            b.total().as_watts()
        );
    }

    println!(
        "\nenergy proportionality index @ Fmax: {:.3} (conventional: {:.3})",
        ep_index(&server, server.fmax(), 50),
        {
            let conv = ServerPowerModel::conventional_e5_2620();
            ep_index(&conv, conv.fmax(), 50)
        }
    );
    println!(
        "dynamic range (peak/idle): {:.2}x",
        dynamic_range(&server, server.fmax())
    );

    let dc = DataCenterPowerModel::new(server, 80);
    let (fopt, p) = dc.optimal_frequency(Percent::new(20.0));
    println!(
        "\ndata-center optimum at 20% utilization: run servers at {fopt} ({} total)",
        p
    );
    println!("=> not Fmax: consolidation-at-top-speed wastes energy on NTC hardware.");
}
