//! Server-level study: Table I (cross-platform execution times), Fig. 2
//! (QoS degradation across DVFS levels) and Fig. 3 (efficiency in
//! BUIPS/W) for the three banking workload classes.
//!
//! Run with: `cargo run --release --example server_qos_sweep`

use ntc_dc::archsim::qos::QosBaseline;
use ntc_dc::archsim::{efficiency, Kernel, Platform, ServerSim};
use ntc_dc::datacenter::experiments;
use ntc_dc::power::ServerPowerModel;

fn main() {
    // --- Table I ---
    println!("=== Table I: QoS analysis across platforms ===");
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>12}",
        "workload", "x86@2.66", "QoS limit", "Cavium@2", "NTC@2"
    );
    for r in experiments::table1() {
        println!(
            "{:<10} {:>11.3}s {:>13.3}s {:>11.3}s {:>11.3}s",
            r.workload, r.x86_secs, r.qos_limit_secs, r.cavium_secs, r.ntc_secs
        );
    }

    // --- Fig. 2 ---
    let sim = ServerSim::new(Platform::ntc_server());
    let baseline = QosBaseline::paper_table1();
    let freqs = experiments::fig2_frequencies();
    println!("\n=== Fig. 2: normalized execution time (QoS limit = 1.0) ===");
    print!("{:<10}", "workload");
    for f in &freqs {
        print!(" {:>7.1}G", f.as_ghz());
    }
    println!();
    for k in Kernel::paper_classes() {
        print!("{:<10}", k.name());
        for &f in &freqs {
            print!(" {:>8.2}", baseline.normalized_time(&sim, &k, f));
        }
        println!();
    }
    for k in Kernel::paper_classes() {
        match baseline.min_qos_frequency(&sim, &k, &freqs) {
            Some(f) => println!("{}: lowest QoS-safe frequency {f}", k.name()),
            None => println!("{}: QoS unreachable on this grid", k.name()),
        }
    }

    // --- Fig. 3 ---
    let model = ServerPowerModel::ntc();
    println!("\n=== Fig. 3: efficiency (BUIPS/W) ===");
    print!("{:<10}", "workload");
    for f in &freqs {
        print!(" {:>7.1}G", f.as_ghz());
    }
    println!();
    for k in Kernel::paper_classes() {
        print!("{:<10}", k.name());
        for &f in &freqs {
            print!(" {:>8.3}", efficiency::buips_per_watt(&sim, &model, &k, f));
        }
        println!();
        let (fpk, epk) = efficiency::optimal_efficiency_frequency(&sim, &model, &k, &freqs);
        println!("  -> peak {epk:.3} BUIPS/W at {fpk}");
    }
}
