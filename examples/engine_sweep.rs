//! The parallel experiment engine: declare a sweep once as an
//! [`ExperimentSpec`], fan its cells across all cores, get the paper's
//! policy table back in spec order — plus the JSON round trip the CLI
//! `sweep --spec` flag consumes.
//!
//! Run with: `cargo run --release --example engine_sweep [num_vms]`
//! (defaults to 120 VMs).

use ntc_dc::datacenter::{spec_json, Engine, ExperimentSpec};

fn main() {
    let num_vms: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);

    let mut spec = ExperimentSpec::default_sweep();
    spec.fleet.num_vms = num_vms;
    spec.qos_floors_mhz = vec![None, Some(1800.0)];

    println!("spec as the CLI would read it (ntcdc sweep --spec file.json):\n");
    print!("{}", spec_json::to_json(&spec));

    let engine = Engine::new();
    println!(
        "\nrunning {} cells on {} worker threads...",
        spec.cells().len(),
        engine.threads()
    );
    let sweep = engine.run(&spec).expect("valid spec");

    println!(
        "\n{:<28} {:>10} {:>14} {:>11} {:>14}",
        "cell", "wall (ms)", "energy (MJ)", "violations", "mean servers"
    );
    for cell in &sweep.cells {
        println!(
            "{:<28} {:>10.0} {:>14.1} {:>11} {:>14.1}",
            cell.cell.label(spec.ablation),
            cell.wall.as_secs_f64() * 1e3,
            cell.outcome.total_energy().as_megajoules(),
            cell.outcome.total_violations(),
            cell.outcome.mean_active_servers()
        );
    }
    let serial: f64 = sweep.cells.iter().map(|c| c.wall.as_secs_f64()).sum();
    println!(
        "\ntotal wall {:.2}s vs {:.2}s of cell time ({:.2}x)",
        sweep.wall.as_secs_f64(),
        serial,
        serial / sweep.wall.as_secs_f64().max(1e-9)
    );
}
