//! The parallel experiment engine: declare a sweep once as an
//! [`ExperimentSpec`] — policies × servers × QoS floors × fleet seeds ×
//! static-power scales — fan its cells across all cores, and get the
//! paper's policy table back in spec order with seed-averaged mean±std
//! rows. No loop in this file runs a simulation; the engine owns the
//! sweep.
//!
//! Run with: `cargo run --release --example engine_sweep [num_vms]`
//! (defaults to 120 VMs).

use ntc_dc::datacenter::{spec_json, Engine, ExperimentSpec};

fn main() {
    let num_vms: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);

    // Three fleet seeds and two static-power arms, on top of the
    // default policy x server cross: 3 x 2 x 3 x 2 = 36 cells.
    let mut spec = ExperimentSpec::default_sweep().with_seeds(&[2024, 2025, 2026]);
    spec.fleets.iter_mut().for_each(|f| f.num_vms = num_vms);
    spec.static_power_scales = vec![1.0, 1.0 / 3.0];

    println!("spec as the CLI would read it (ntcdc sweep --spec file.json):\n");
    print!("{}", spec_json::to_json(&spec));

    let engine = Engine::new();
    println!(
        "\nrunning {} cells on {} worker threads...",
        spec.cells().len(),
        engine.threads()
    );
    let sweep = engine.run(&spec).expect("valid spec");

    println!(
        "\n{:<28} {:>6} {:>10} {:>14} {:>11} {:>14}",
        "cell", "seed", "wall (ms)", "energy (MJ)", "violations", "mean servers"
    );
    for cell in &sweep.cells {
        println!(
            "{:<28} {:>6} {:>10.0} {:>14.1} {:>11} {:>14.1}",
            cell.cell.label(spec.ablation),
            cell.cell.fleet.seed,
            cell.wall.as_secs_f64() * 1e3,
            cell.outcome.total_energy().as_megajoules(),
            cell.outcome.total_violations(),
            cell.outcome.mean_active_servers()
        );
    }

    println!(
        "\nseed-averaged over {} fleets (mean±std):",
        spec.fleets.len()
    );
    println!(
        "{:<28} {:>5} {:>16} {:>14} {:>16}",
        "group", "runs", "energy (MJ)", "violations", "mean servers"
    );
    for g in sweep.seed_groups() {
        println!(
            "{:<28} {:>5} {:>16} {:>14} {:>16}",
            g.label(spec.ablation),
            g.runs,
            g.energy_mj.to_string(),
            g.violations.to_string(),
            g.mean_active_servers.to_string()
        );
    }

    let serial: f64 = sweep.cells.iter().map(|c| c.wall.as_secs_f64()).sum();
    println!(
        "\ntotal wall {:.2}s vs {:.2}s of cell time ({:.2}x)",
        sweep.wall.as_secs_f64(),
        serial,
        serial / sweep.wall.as_secs_f64().max(1e-9)
    );
}
