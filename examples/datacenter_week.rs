//! The paper's headline experiment (Figs. 4-6): one week of a 600-server
//! NTC data center running 600 VMs, comparing EPACT against COAT and
//! COAT-OPT with ARIMA day-ahead predictions.
//!
//! Run with: `cargo run --release --example datacenter_week [num_vms]`
//! (defaults to 600 VMs; pass a smaller count for a quick look).

use ntc_dc::datacenter::experiments;
use ntc_dc::workload::ClusterTraceGenerator;

fn main() {
    let num_vms: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(600);

    println!("generating {num_vms} VMs x 2 weeks of 5-minute traces...");
    let fleet = ClusterTraceGenerator::google_like(num_vms, 2018).generate();

    println!("running EPACT / COAT / COAT-OPT over the evaluation week...");
    let outcomes = experiments::fig4_5_6(&fleet, 600);

    println!("\n=== Figs. 4-6 summary ===");
    println!(
        "{:<10} {:>12} {:>18} {:>18}",
        "policy", "violations", "mean active srv", "total energy (MJ)"
    );
    for o in &outcomes {
        println!(
            "{:<10} {:>12} {:>18.1} {:>18.1}",
            o.policy,
            o.total_violations(),
            o.mean_active_servers(),
            o.total_energy().as_megajoules()
        );
    }

    let epact = &outcomes[0];
    let coat = &outcomes[1];
    let coat_opt = &outcomes[2];
    let best_slot_saving = |other: &ntc_dc::datacenter::WeekOutcome| -> f64 {
        epact
            .slots
            .iter()
            .zip(&other.slots)
            .map(|(e, o)| 1.0 - e.energy.as_joules() / o.energy.as_joules().max(1e-9))
            .fold(f64::MIN, f64::max)
            * 100.0
    };
    println!(
        "\nEPACT energy saving vs COAT:     {:.1}% avg, {:.1}% best slot  (paper: up to 45%)",
        epact.energy_saving_vs(coat) * 100.0,
        best_slot_saving(coat)
    );
    println!(
        "EPACT energy saving vs COAT-OPT: {:.1}% avg, {:.1}% best slot  (paper: up to 10%)",
        epact.energy_saving_vs(coat_opt) * 100.0,
        best_slot_saving(coat_opt)
    );
    println!(
        "COAT active servers vs EPACT:    {:.0}%  (paper: ~37% fewer)",
        (1.0 - coat.mean_active_servers() / epact.mean_active_servers()) * 100.0
    );

    println!("\nper-slot detail (one day):");
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "hour", "vEPACT", "vCOAT", "vOPT", "sEPACT", "sCOAT", "sOPT", "mjEPACT", "mjCOAT"
    );
    for t in 0..24.min(epact.slots.len()) {
        println!(
            "{:<6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9.2} {:>9.2}",
            t,
            epact.slots[t].violations,
            coat.slots[t].violations,
            coat_opt.slots[t].violations,
            epact.slots[t].active_servers,
            coat.slots[t].active_servers,
            coat_opt.slots[t].active_servers,
            epact.slots[t].energy.as_megajoules(),
            coat.slots[t].energy.as_megajoules()
        );
    }
}
