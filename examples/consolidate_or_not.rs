//! "Consolidating or Not?" — Fig. 1's motivation panels and Fig. 7's
//! static-power sweep.
//!
//! Run with: `cargo run --release --example consolidate_or_not`

use ntc_dc::datacenter::{experiments, FleetSpec};
use ntc_dc::power::{DataCenterPowerModel, ServerPowerModel};
use ntc_dc::units::Percent;

fn print_fig1_panel(title: &str, server: ServerPowerModel) {
    let freqs = server.dvfs_levels();
    let curves = experiments::fig1(server.clone(), 80);
    println!("\n=== Fig. 1{title}: worst-case DC power (kW), 80 servers ===");
    print!("{:>6}", "util%");
    for f in &freqs {
        print!(" {:>7.1}G", f.as_ghz());
    }
    println!();
    for c in &curves {
        print!("{:>6.0}", c.utilization);
        for (_, p) in &c.points {
            match p {
                Some(p) => print!(" {:>8.2}", p.as_kilowatts()),
                None => print!(" {:>8}", "-"),
            }
        }
        println!();
    }
    let dc = DataCenterPowerModel::new(server, 80);
    for u in [10.0, 30.0, 50.0, 70.0, 90.0] {
        let (f, p) = dc.optimal_frequency(Percent::new(u));
        println!("  util {u:>4.0}%: best frequency {f} ({p})");
    }
}

fn main() {
    print_fig1_panel("(a) NTC-based", ServerPowerModel::ntc());
    print_fig1_panel(
        "(b) conventional E5-2620",
        ServerPowerModel::conventional_e5_2620(),
    );

    // --- Fig. 7 ---
    let num_vms: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(150);
    println!("\ngenerating {num_vms} VMs for the Fig. 7 sweep...");
    let fleet = FleetSpec {
        num_vms,
        seed: 7,
        weeks: 2,
    };
    let pts = experiments::fig7(fleet, 600, &[5.0, 15.0, 25.0, 35.0, 45.0]);
    println!("\n=== Fig. 7: EPACT saving vs per-server static power ===");
    println!(
        "{:<12} {:>14} {:>14} {:>12}",
        "static (W)", "EPACT (MJ)", "COAT (MJ)", "saving (%)"
    );
    for p in &pts {
        println!(
            "{:<12.0} {:>14.1} {:>14.1} {:>12.1}",
            p.static_power.as_watts(),
            p.epact_energy.as_megajoules(),
            p.coat_energy.as_megajoules(),
            p.saving_pct
        );
    }
    println!("\n(paper: EPACT's edge grows as static power shrinks — exactly the FD-SOI trend)");
}
