//! Forecast bake-off: ARIMA (the paper's predictor) vs Holt–Winters vs
//! seasonal-naive on generated cloud traces, plus the downstream effect
//! on EPACT's violations and energy.
//!
//! Run with: `cargo run --release --example forecast_bakeoff [num_vms]`

use ntc_dc::datacenter::WeekSim;
use ntc_dc::forecast::{metrics, ArimaPredictor, HoltWinters, Predictor, SeasonalNaive};
use ntc_dc::policy::Epact;
use ntc_dc::power::ServerPowerModel;
use ntc_dc::workload::ClusterTraceGenerator;

fn main() {
    let num_vms: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);

    let fleet = ClusterTraceGenerator::google_like(num_vms, 2018).generate();
    let per_day = fleet.grid().samples_per_day();
    let split = fleet.grid().len() - per_day;

    let predictors: Vec<(&str, Box<dyn Predictor>)> = vec![
        (
            "ARIMA(2,0,1)+daily",
            Box::new(ArimaPredictor::daily(per_day)),
        ),
        ("Holt-Winters", Box::new(HoltWinters::daily(per_day))),
        ("seasonal-naive", Box::new(SeasonalNaive::new(per_day))),
    ];

    // --- pure forecast quality on the last day ---
    println!("=== Day-ahead CPU forecast quality ({num_vms} VMs) ===");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "predictor", "RMSE", "MAE", "sMAPE %"
    );
    for (name, p) in &predictors {
        let mut rmse = 0.0;
        let mut mae = 0.0;
        let mut smape = 0.0;
        for vm in fleet.vms() {
            let hist = vm.cpu.window(0..split);
            let actual = vm.cpu.window(split..split + per_day);
            let fc = p.forecast(&hist, per_day);
            rmse += metrics::rmse(fc.values(), actual.values());
            mae += metrics::mae(fc.values(), actual.values());
            smape += metrics::smape(fc.values(), actual.values());
        }
        let n = fleet.len() as f64;
        println!(
            "{:<22} {:>10.3} {:>10.3} {:>10.1}",
            name,
            rmse / n,
            mae / n,
            smape / n
        );
    }

    // --- downstream effect under EPACT ---
    println!("\n=== EPACT outcomes per predictor (one week) ===");
    println!(
        "{:<22} {:>12} {:>16} {:>14}",
        "predictor", "violations", "energy (MJ)", "mean servers"
    );
    let sim = WeekSim::new(&fleet, ServerPowerModel::ntc(), 600);
    for (name, p) in &predictors {
        let out = sim.run(&Epact::new(), p.as_ref());
        println!(
            "{:<22} {:>12} {:>16.1} {:>14.1}",
            name,
            out.total_violations(),
            out.total_energy().as_megajoules(),
            out.mean_active_servers()
        );
    }
    let oracle = sim.run_with_oracle(&Epact::new());
    println!(
        "{:<22} {:>12} {:>16.1} {:>14.1}",
        "oracle (actuals)",
        oracle.total_violations(),
        oracle.total_energy().as_megajoules(),
        oracle.mean_active_servers()
    );
}
