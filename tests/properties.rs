//! Cross-crate property-based tests: allocation-policy and power-model
//! invariants over randomized fleets and loads, plus the spec_json
//! round trip over randomized experiment specs.

use ntc_dc::datacenter::{
    spec_json, BackendSpec, ExperimentSpec, FailurePolicy, FleetSpec, PolicySpec, PredictorSpec,
    ServerSpec,
};
use ntc_dc::policy::{AllocationPolicy, Coat, CoatOpt, Epact, SlotContext};
use ntc_dc::power::ServerPowerModel;
use ntc_dc::trace::TimeSeries;
use ntc_dc::units::{Frequency, Percent};
use proptest::prelude::*;

/// A strategy over arbitrary multi-axis experiment specs: random fleet
/// sets (sizes, seeds, horizons), static-power scales, QoS floors,
/// accounting-backend sets, failure policies and axis subsets.
fn arb_spec() -> impl Strategy<Value = ExperimentSpec> {
    let fleets = prop::collection::vec(
        (1usize..200, 0u64..10_000, 2usize..5).prop_map(|(num_vms, seed, weeks)| FleetSpec {
            num_vms,
            seed,
            weeks,
        }),
        1..4,
    );
    let scales = prop::collection::vec(0.0f64..4.0, 1..4);
    let floors = prop::collection::vec(
        (0usize..2, 100.0f64..2500.0).prop_map(|(none, mhz)| (none == 0).then_some(mhz)),
        1..3,
    );
    let backends = (0usize..4).prop_map(|i| match i {
        0 => vec![BackendSpec::Analytic],
        1 => vec![BackendSpec::Archsim],
        2 => vec![BackendSpec::Analytic, BackendSpec::Archsim],
        _ => vec![BackendSpec::Archsim, BackendSpec::Analytic],
    });
    (
        (fleets, scales, floors, backends),
        (0usize..4, 1usize..1000, 0usize..4),
    )
        .prop_map(
            |(
                (fleets, static_power_scales, qos_floors_mhz, backends),
                (knobs, max_servers, corr),
            )| {
                let mut spec = ExperimentSpec::default_sweep();
                spec.name = format!("prop-{knobs}-{max_servers}");
                spec.fleets = fleets;
                spec.static_power_scales = static_power_scales;
                spec.qos_floors_mhz = qos_floors_mhz;
                spec.backends = backends;
                spec.max_servers = max_servers;
                spec.ablation.correlation_only = corr & 1 == 1;
                spec.failure_policy = if corr & 2 == 2 {
                    FailurePolicy::FailFast
                } else {
                    FailurePolicy::KeepGoing
                };
                if knobs % 2 == 1 {
                    spec.policies.push(PolicySpec::LoadBalance);
                    spec.servers = vec![ServerSpec::Ntc];
                }
                spec.predictor = match knobs {
                    0 => PredictorSpec::Oracle,
                    1 => PredictorSpec::Arima,
                    _ => PredictorSpec::SeasonalNaive,
                };
                spec
            },
        )
}

fn vm_series(n_vms: usize, len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..6.25, len), n_vms)
}

fn mem_series(n_vms: usize, len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.1f64..3.0, len), n_vms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_policy_places_all_vms_and_respects_caps(
        cpu in vm_series(12, 6),
        mem in mem_series(12, 6),
    ) {
        let server = ServerPowerModel::ntc();
        let cpu: Vec<TimeSeries> = cpu.into_iter().map(TimeSeries::from_values).collect();
        let mem: Vec<TimeSeries> = mem.into_iter().map(TimeSeries::from_values).collect();
        let ctx = SlotContext::new(&cpu, &mem, &server, 600);
        for policy in [
            &Epact::new() as &dyn AllocationPolicy,
            &Coat::new(),
            &CoatOpt::new(),
        ] {
            let plan = policy.allocate(&ctx);
            prop_assert_eq!(plan.assignments().len(), 12);
            // every VM assigned to a live server
            prop_assert!(plan.assignments().iter().all(|&s| s < plan.num_servers()));
            // the packing never exceeds the policy's own CPU cap
            // (single VMs above the cap are impossible here: max 6.25%)
            for agg in plan.aggregate_per_server(&cpu) {
                prop_assert!(!agg.exceeds(plan.cap_cpu(), 1e-6));
            }
            // frequency plan is internally consistent
            prop_assert!(plan.planned_freq() <= plan.dvfs_ceiling());
            prop_assert!(plan.dvfs_floor() <= plan.planned_freq());
        }
    }

    #[test]
    fn epact_never_uses_more_servers_than_vms(
        cpu in vm_series(10, 4),
        mem in mem_series(10, 4),
    ) {
        let server = ServerPowerModel::ntc();
        let cpu: Vec<TimeSeries> = cpu.into_iter().map(TimeSeries::from_values).collect();
        let mem: Vec<TimeSeries> = mem.into_iter().map(TimeSeries::from_values).collect();
        let ctx = SlotContext::new(&cpu, &mem, &server, 600);
        let plan = Epact::new().allocate(&ctx);
        prop_assert!(plan.num_servers() <= 10);
    }

    #[test]
    fn server_power_is_monotone_in_utilization(
        u1 in 0.0f64..100.0,
        u2 in 0.0f64..100.0,
        ghz in 0.1f64..3.1,
    ) {
        let server = ServerPowerModel::ntc();
        let f = Frequency::from_ghz(ghz);
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let p_lo = server.power(f, Percent::new(lo), Percent::ZERO);
        let p_hi = server.power(f, Percent::new(hi), Percent::ZERO);
        prop_assert!(p_lo <= p_hi, "power must grow with load: {p_lo} vs {p_hi}");
    }

    #[test]
    fn server_power_is_monotone_in_frequency_at_full_load(
        g1 in 0.1f64..3.1,
        g2 in 0.1f64..3.1,
    ) {
        let server = ServerPowerModel::ntc();
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        let p_lo = server.power(Frequency::from_ghz(lo), Percent::FULL, Percent::ZERO);
        let p_hi = server.power(Frequency::from_ghz(hi), Percent::FULL, Percent::ZERO);
        prop_assert!(p_lo <= p_hi);
    }

    #[test]
    fn power_breakdown_components_are_finite_and_positive(
        ghz in 0.1f64..3.1,
        cpu in 0.0f64..100.0,
        mem in 0.0f64..100.0,
    ) {
        let server = ServerPowerModel::ntc();
        let f = Frequency::from_ghz(ghz);
        let p = server.power(f, Percent::new(cpu), Percent::new(mem));
        prop_assert!(p.as_watts().is_finite());
        prop_assert!(p.as_watts() > 20.0, "uncore floor keeps power above ~27 W");
        prop_assert!(p.as_watts() < 200.0, "a single server stays under 200 W");
    }

    #[test]
    fn spec_json_round_trips_every_spec(spec in arb_spec()) {
        // The codec must preserve every axis exactly — fleet sets,
        // static-power scales (f64-exact), QoS floors, backend sets,
        // predictor, ablation flags — through render + reparse.
        let text = spec_json::to_json(&spec);
        let back = match spec_json::from_json(&text) {
            Ok(back) => back,
            Err(e) => panic!("reparse failed: {e}\n{text}"),
        };
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn archsim_exec_time_is_monotone_nonincreasing_in_frequency(
        g1 in 0.2f64..2.5,
        g2 in 0.2f64..2.5,
    ) {
        use ntc_dc::archsim::{Kernel, Platform, ServerSim};
        let sim = ServerSim::new(Platform::ntc_server());
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        for k in Kernel::paper_classes() {
            let t_lo = sim.run(&k, Frequency::from_ghz(lo)).exec_time;
            let t_hi = sim.run(&k, Frequency::from_ghz(hi)).exec_time;
            prop_assert!(
                t_hi.as_secs() <= t_lo.as_secs() * (1.0 + 1e-9),
                "{}: higher frequency must not be slower",
                k.name()
            );
        }
    }
}
