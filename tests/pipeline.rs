//! End-to-end pipeline tests: generator → predictor → policy →
//! data-center replay, exercising the crates together the way the
//! examples do.

use ntc_dc::datacenter::WeekSim;
use ntc_dc::forecast::{metrics, ArimaPredictor, Predictor, SeasonalNaive};
use ntc_dc::policy::{AllocationPolicy, Coat, CoatOpt, Epact, SlotContext};
use ntc_dc::power::ServerPowerModel;
use ntc_dc::trace::TimeSeries;
use ntc_dc::units::Energy;
use ntc_dc::workload::ClusterTraceGenerator;

#[test]
fn arima_beats_naive_on_generated_traces() {
    // The generated traces have daily structure plus AR noise: ARIMA
    // should (at minimum) not lose badly to seasonal naive on RMSE.
    let fleet = ClusterTraceGenerator::google_like(12, 5)
        .with_shift_probability(0.02)
        .generate();
    let per_day = fleet.grid().samples_per_day();
    let arima = ArimaPredictor::daily(per_day);
    let naive = SeasonalNaive::new(per_day);
    let split = fleet.grid().len() - per_day;

    let mut rmse_arima = 0.0;
    let mut rmse_naive = 0.0;
    for vm in fleet.vms() {
        let hist = vm.cpu.window(0..split);
        let actual = vm.cpu.window(split..split + per_day);
        let fa = arima.forecast(&hist, per_day);
        let fn_ = naive.forecast(&hist, per_day);
        rmse_arima += metrics::rmse(fa.values(), actual.values());
        rmse_naive += metrics::rmse(fn_.values(), actual.values());
    }
    assert!(
        rmse_arima < 1.5 * rmse_naive,
        "ARIMA must be competitive: {rmse_arima:.3} vs naive {rmse_naive:.3}"
    );
}

#[test]
fn forecast_errors_only_cause_bounded_violations() {
    // With abrupt shifts cranked up, EPACT should still keep violations
    // far below the consolidation baselines.
    let fleet = ClusterTraceGenerator::google_like(60, 321)
        .with_shift_probability(0.5)
        .generate();
    let sim = WeekSim::new(&fleet, ServerPowerModel::ntc(), 600);
    let predictor = ArimaPredictor::daily(fleet.grid().samples_per_day());
    let epact = sim.run(&Epact::new(), &predictor);
    let coat = sim.run(&Coat::new(), &predictor);
    assert!(
        epact.total_violations() < coat.total_violations(),
        "EPACT {} vs COAT {}",
        epact.total_violations(),
        coat.total_violations()
    );
}

#[test]
fn all_policies_place_every_vm() {
    let fleet = ClusterTraceGenerator::google_like(40, 11).generate();
    let server = ServerPowerModel::ntc();
    let cpu: Vec<TimeSeries> = fleet.vms().iter().map(|v| v.cpu.window(0..12)).collect();
    let mem: Vec<TimeSeries> = fleet.vms().iter().map(|v| v.mem.window(0..12)).collect();
    let ctx = SlotContext::new(&cpu, &mem, &server, 600);
    let policies: Vec<Box<dyn AllocationPolicy>> = vec![
        Box::new(Epact::new()),
        Box::new(Coat::new()),
        Box::new(CoatOpt::new()),
    ];
    for p in &policies {
        let plan = p.allocate(&ctx);
        assert_eq!(plan.assignments().len(), 40, "{}", p.name());
        let placed: usize = plan.vms_per_server().iter().map(|v| v.len()).sum();
        assert_eq!(placed, 40, "{} must place every VM exactly once", p.name());
        // and the packing must respect its own caps
        for agg in plan.aggregate_per_server(&cpu) {
            assert!(
                !agg.exceeds(plan.cap_cpu(), 1e-6),
                "{} exceeds its CPU cap",
                p.name()
            );
        }
    }
}

#[test]
fn oracle_energy_is_a_lower_bound_for_arima_energy() {
    // Imperfect predictions can only cost energy (extra servers or
    // emergency upscaling), never gain it — modulo small packing
    // differences, so allow 5% slack.
    let fleet = ClusterTraceGenerator::google_like(48, 777).generate();
    let sim = WeekSim::new(&fleet, ServerPowerModel::ntc(), 600);
    let predictor = ArimaPredictor::daily(fleet.grid().samples_per_day());
    let with_arima = sim.run(&Epact::new(), &predictor);
    let with_oracle = sim.run_with_oracle(&Epact::new());
    assert!(
        with_oracle.total_energy().as_joules() <= with_arima.total_energy().as_joules() * 1.05,
        "oracle {} MJ vs ARIMA {} MJ",
        with_oracle.total_energy().as_megajoules(),
        with_arima.total_energy().as_megajoules()
    );
}

#[test]
fn energy_scales_roughly_with_fleet_size() {
    let small = ClusterTraceGenerator::google_like(24, 31).generate();
    let large = ClusterTraceGenerator::google_like(96, 31).generate();
    let e = |fleet: &ntc_dc::workload::Fleet| -> Energy {
        WeekSim::new(fleet, ServerPowerModel::ntc(), 600)
            .run_with_oracle(&Epact::new())
            .total_energy()
    };
    let e_small = e(&small).as_joules();
    let e_large = e(&large).as_joules();
    let ratio = e_large / e_small;
    assert!(
        (2.0..8.0).contains(&ratio),
        "4x the VMs should cost roughly 2-8x the energy, got {ratio:.2}x"
    );
}

#[test]
fn static_power_increase_raises_everyones_energy() {
    let fleet = ClusterTraceGenerator::google_like(36, 13).generate();
    let lean = WeekSim::new(&fleet, ServerPowerModel::ntc(), 600);
    let heavy_model =
        ServerPowerModel::ntc().with_static_power(ntc_dc::units::Power::from_watts(45.0));
    let heavy = WeekSim::new(&fleet, heavy_model, 600);
    for policy in [
        &Epact::new() as &dyn AllocationPolicy,
        &Coat::new() as &dyn AllocationPolicy,
    ] {
        let e_lean = lean.run_with_oracle(policy).total_energy();
        let e_heavy = heavy.run_with_oracle(policy).total_energy();
        assert!(e_heavy > e_lean, "{}", policy.name());
    }
}
