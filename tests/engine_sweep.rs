//! Engine integration: a sweep over a small synthetic fleet must be
//! bit-identical however it is scheduled, and reproduce the paper's
//! headline ordering (EPACT saves energy over COAT on NTC servers).

use ntc_dc::datacenter::{Engine, ExperimentSpec, PolicySpec, ServerSpec};

fn small_sweep() -> ExperimentSpec {
    let mut spec = ExperimentSpec::default_sweep();
    spec.fleet.num_vms = 24;
    spec.max_servers = 300;
    assert_eq!(
        spec.cells().len(),
        6,
        "the default sweep must exercise >= 6 cells"
    );
    spec
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let spec = small_sweep();
    let parallel = Engine::new().run(&spec).expect("parallel run");
    let sequential = Engine::new().run_sequential(&spec).expect("sequential run");
    assert!(Engine::new().threads() >= 1);
    assert_eq!(parallel.cells.len(), 6);
    // WeekOutcome derives PartialEq over every slot metric, so this is
    // a bit-for-bit comparison of all 168 slots of all 6 cells.
    assert_eq!(parallel.outcomes(), sequential.outcomes());
    // And a second parallel run cannot differ either.
    let again = Engine::with_threads(3).run(&spec).expect("second run");
    assert_eq!(parallel.outcomes(), again.outcomes());
}

#[test]
fn epact_saves_energy_over_coat_on_ntc() {
    let spec = small_sweep();
    let sweep = Engine::new().run(&spec).expect("sweep");
    let energy = |policy: PolicySpec| {
        sweep
            .cells
            .iter()
            .find(|c| c.cell.policy == policy && c.cell.server == ServerSpec::Ntc)
            .expect("cell present")
            .outcome
            .total_energy()
    };
    assert!(
        energy(PolicySpec::Epact) <= energy(PolicySpec::Coat),
        "EPACT must not spend more energy than COAT on the NTC server"
    );
}
