//! Engine integration: a sweep over a small synthetic fleet must be
//! bit-identical however it is scheduled, and reproduce the paper's
//! headline ordering (EPACT saves energy over COAT on NTC servers).

use ntc_dc::datacenter::{Engine, ExperimentSpec, PolicySpec, ServerSpec};

fn small_sweep() -> ExperimentSpec {
    let mut spec = ExperimentSpec::default_sweep();
    spec.fleets[0].num_vms = 24;
    spec.max_servers = 300;
    assert_eq!(
        spec.cells().len(),
        6,
        "the default sweep must exercise >= 6 cells"
    );
    spec
}

/// The acceptance shape: >= 2 fleet seeds and >= 2 static-power scales
/// in one spec.
fn multi_axis_sweep() -> ExperimentSpec {
    let mut spec = ExperimentSpec::default_sweep().with_seeds(&[11, 12]);
    spec.fleets.iter_mut().for_each(|f| f.num_vms = 12);
    spec.static_power_scales = vec![0.5, 1.0];
    spec.servers = vec![ServerSpec::Ntc];
    spec.policies = vec![PolicySpec::Epact, PolicySpec::Coat];
    spec.max_servers = 150;
    spec
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let spec = small_sweep();
    let parallel = Engine::new().run(&spec).expect("parallel run");
    let sequential = Engine::new().run_sequential(&spec).expect("sequential run");
    assert!(Engine::new().threads() >= 1);
    assert_eq!(parallel.cells.len(), 6);
    // WeekOutcome derives PartialEq over every slot metric, so this is
    // a bit-for-bit comparison of all 168 slots of all 6 cells.
    assert_eq!(parallel.outcomes(), sequential.outcomes());
    // And a second parallel run cannot differ either.
    let again = Engine::with_threads(3).run(&spec).expect("second run");
    assert_eq!(parallel.outcomes(), again.outcomes());
}

#[test]
fn multi_axis_sweep_is_bit_identical_to_sequential() {
    // 2 seeds x 2 static-power scales x 2 policies = 8 cells; the
    // parallel schedule (including the fleet-cache race) must not be
    // able to change a single bit of any outcome.
    let spec = multi_axis_sweep();
    let parallel = Engine::new().run(&spec).expect("parallel run");
    let sequential = Engine::new().run_sequential(&spec).expect("sequential run");
    assert_eq!(parallel.cells.len(), 8);
    assert_eq!(parallel.outcomes(), sequential.outcomes());

    // Seed-averaged aggregation is a pure fold over the cells, so it is
    // identical too: one group per (policy, scale), each fed by 2 seeds.
    let groups = parallel.seed_groups();
    assert_eq!(groups.len(), 4);
    assert!(groups.iter().all(|g| g.runs == 2));
    let sequential_groups = sequential.seed_groups();
    assert_eq!(groups, sequential_groups);
}

#[test]
fn cached_sweep_is_bit_identical_to_uncached() {
    // The golden equivalence for the cross-cell caches: a default
    // (cached, parallel) sweep over 2 seeds x 2 static-power scales
    // must reproduce the uncached sequential engine bit for bit, while
    // actually deduplicating work — COAT plans purely at Fmax, so its
    // plans are shared across the two scale arms (7 planning slots x 2
    // fleets of reuse at minimum).
    let spec = multi_axis_sweep();
    let cached = Engine::new().run(&spec).expect("cached run");
    let uncached = Engine::with_threads(1)
        .caching(false)
        .run_sequential(&spec)
        .expect("uncached run");
    assert_eq!(cached.outcomes(), uncached.outcomes());
    assert_eq!(cached.seed_groups(), uncached.seed_groups());

    let totals = cached.cache_totals();
    assert!(
        totals.plan_hits >= 14,
        "COAT's scale arms must share plans, got {totals:?}"
    );
    assert!(totals.plan_misses > 0, "someone must have planned");
    // Oracle sweep: no forecasts at all.
    assert_eq!(totals.forecast_hits + totals.forecast_misses, 0);

    let uncached_totals = uncached.cache_totals();
    assert_eq!(
        (uncached_totals.plan_hits, uncached_totals.forecast_hits),
        (0, 0),
        "caching(false) must not share anything"
    );
}

#[test]
fn epact_saves_energy_over_coat_on_ntc() {
    let spec = small_sweep();
    let sweep = Engine::new().run(&spec).expect("sweep");
    let energy = |policy: PolicySpec| {
        sweep
            .cells
            .iter()
            .find(|c| c.cell.policy == policy && c.cell.server == ServerSpec::Ntc)
            .expect("cell present")
            .outcome
            .total_energy()
    };
    assert!(
        energy(PolicySpec::Epact) <= energy(PolicySpec::Coat),
        "EPACT must not spend more energy than COAT on the NTC server"
    );
}
