//! Engine integration: a sweep over a small synthetic fleet must be
//! bit-identical however it is scheduled, and reproduce the paper's
//! headline ordering (EPACT saves energy over COAT on NTC servers).

use ntc_dc::datacenter::{
    BackendSpec, CellStage, Engine, ExperimentSpec, FailurePolicy, FaultSpec, PolicySpec,
    ServerSpec,
};

fn small_sweep() -> ExperimentSpec {
    let mut spec = ExperimentSpec::default_sweep();
    spec.fleets[0].num_vms = 24;
    spec.max_servers = 300;
    assert_eq!(
        spec.cells().len(),
        6,
        "the default sweep must exercise >= 6 cells"
    );
    spec
}

/// The acceptance shape: >= 2 fleet seeds and >= 2 static-power scales
/// in one spec.
fn multi_axis_sweep() -> ExperimentSpec {
    let mut spec = ExperimentSpec::default_sweep().with_seeds(&[11, 12]);
    spec.fleets.iter_mut().for_each(|f| f.num_vms = 12);
    spec.static_power_scales = vec![0.5, 1.0];
    spec.servers = vec![ServerSpec::Ntc];
    spec.policies = vec![PolicySpec::Epact, PolicySpec::Coat];
    spec.max_servers = 150;
    spec
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let spec = small_sweep();
    let parallel = Engine::new().run(&spec).expect("parallel run");
    let sequential = Engine::new().run_sequential(&spec).expect("sequential run");
    assert!(Engine::new().threads() >= 1);
    assert_eq!(parallel.cells.len(), 6);
    // WeekOutcome derives PartialEq over every slot metric, so this is
    // a bit-for-bit comparison of all 168 slots of all 6 cells.
    assert_eq!(parallel.outcomes(), sequential.outcomes());
    // And a second parallel run cannot differ either.
    let again = Engine::with_threads(3).run(&spec).expect("second run");
    assert_eq!(parallel.outcomes(), again.outcomes());
}

#[test]
fn multi_axis_sweep_is_bit_identical_to_sequential() {
    // 2 seeds x 2 static-power scales x 2 policies = 8 cells; the
    // parallel schedule (including the fleet-cache race) must not be
    // able to change a single bit of any outcome.
    let spec = multi_axis_sweep();
    let parallel = Engine::new().run(&spec).expect("parallel run");
    let sequential = Engine::new().run_sequential(&spec).expect("sequential run");
    assert_eq!(parallel.cells.len(), 8);
    assert_eq!(parallel.outcomes(), sequential.outcomes());

    // Seed-averaged aggregation is a pure fold over the cells, so it is
    // identical too: one group per (policy, scale), each fed by 2 seeds.
    let groups = parallel.seed_groups();
    assert_eq!(groups.len(), 4);
    assert!(groups.iter().all(|g| g.runs == 2));
    let sequential_groups = sequential.seed_groups();
    assert_eq!(groups, sequential_groups);
}

#[test]
fn cached_sweep_is_bit_identical_to_uncached() {
    // The golden equivalence for the cross-cell caches: a default
    // (cached, parallel) sweep over 2 seeds x 2 static-power scales
    // must reproduce the uncached sequential engine bit for bit, while
    // actually deduplicating work — COAT plans purely at Fmax, so its
    // plans are shared across the two scale arms (7 planning slots x 2
    // fleets of reuse at minimum).
    let spec = multi_axis_sweep();
    let cached = Engine::new().run(&spec).expect("cached run");
    let uncached = Engine::with_threads(1)
        .caching(false)
        .run_sequential(&spec)
        .expect("uncached run");
    assert_eq!(cached.outcomes(), uncached.outcomes());
    assert_eq!(cached.seed_groups(), uncached.seed_groups());

    let totals = cached.cache_totals();
    assert!(
        totals.plan_hits >= 14,
        "COAT's scale arms must share plans, got {totals:?}"
    );
    assert!(totals.plan_misses > 0, "someone must have planned");
    // Oracle sweep: no forecasts at all.
    assert_eq!(totals.forecast_hits + totals.forecast_misses, 0);

    let uncached_totals = uncached.cache_totals();
    assert_eq!(
        (uncached_totals.plan_hits, uncached_totals.forecast_hits),
        (0, 0),
        "caching(false) must not share anything"
    );
}

#[test]
fn analytic_backend_is_bit_identical_to_pre_pipeline_weeksim() {
    // Golden fingerprints captured from the monolithic WeekSim loop
    // *before* it was decomposed into the forecast/plan/govern/account
    // stages. The AnalyticBackend must reproduce every one of them bit
    // for bit: 2 seeds x 2 static-power scales x {EPACT, COAT} on the
    // NTC server with oracle predictions.
    const GOLDEN: [(u64, usize, usize, u64); 8] = [
        (0x418438efa23853a3, 0, 1084, 0x3ffa000000000000), // seed 11 scale 0.5 EPACT
        (0x418db52266d22d60, 0, 0, 0x3ff0000000000000),    // seed 11 scale 0.5 COAT
        (0x418722732ee2c65d, 0, 792, 0x3ff7249249249249),  // seed 11 scale 1.0 EPACT
        (0x418fded866d22d60, 0, 0, 0x3ff0000000000000),    // seed 11 scale 1.0 COAT
        (0x4184562eb41653dd, 0, 1154, 0x3ffa79e79e79e79e), // seed 12 scale 0.5 EPACT
        (0x418d9d3b8e6f7df0, 0, 0, 0x3ff0000000000000),    // seed 12 scale 0.5 COAT
        (0x4186d1cb5fdf9553, 0, 567, 0x3ff50c30c30c30c3),  // seed 12 scale 1.0 EPACT
        (0x418fc6f18e6f7df1, 0, 0, 0x3ff0000000000000),    // seed 12 scale 1.0 COAT
    ];
    let mut spec = multi_axis_sweep();
    spec.fleets.iter_mut().for_each(|f| f.num_vms = 24);
    let sweep = Engine::new().run(&spec).expect("golden sweep");
    assert_eq!(sweep.cells.len(), GOLDEN.len());
    for (cell, &(energy, violations, migrations, servers)) in sweep.cells.iter().zip(&GOLDEN) {
        let label = cell.cell.label(spec.ablation);
        let seed = cell.cell.fleet.seed;
        assert_eq!(
            cell.outcome.total_energy().as_joules().to_bits(),
            energy,
            "energy drifted in {label} seed {seed}"
        );
        assert_eq!(cell.outcome.total_violations(), violations, "{label}");
        assert_eq!(cell.outcome.total_migrations(), migrations, "{label}");
        assert_eq!(
            cell.outcome.mean_active_servers().to_bits(),
            servers,
            "mean servers drifted in {label} seed {seed}"
        );
    }
}

#[test]
fn cross_backend_sweep_shares_plans_and_groups_per_backend() {
    // The acceptance shape: `--backends analytic,archsim --seeds 1,2`
    // through one engine. Both backends share every upstream stage, so
    // migrations and server counts agree arm for arm, the plan cache
    // dedups across the backend axis, and seed averaging groups per
    // backend.
    let mut spec = ExperimentSpec::default_sweep().with_seeds(&[1, 2]);
    spec.fleets.iter_mut().for_each(|f| f.num_vms = 24);
    spec.servers = vec![ServerSpec::Ntc];
    spec.policies = vec![PolicySpec::Epact];
    spec.backends = vec![BackendSpec::Analytic, BackendSpec::Archsim];
    spec.max_servers = 150;
    let sweep = Engine::new().run(&spec).expect("cross-backend sweep");
    assert_eq!(sweep.cells.len(), 4); // 2 seeds x 2 backends
    for pair in sweep.cells.chunks_exact(2) {
        let (analytic, archsim) = (&pair[0], &pair[1]);
        assert_eq!(analytic.cell.backend, BackendSpec::Analytic);
        assert_eq!(archsim.cell.backend, BackendSpec::Archsim);
        assert_eq!(
            analytic.outcome.total_migrations(),
            archsim.outcome.total_migrations(),
            "backends must share the plan stage"
        );
        assert_eq!(
            analytic.outcome.mean_active_servers(),
            archsim.outcome.mean_active_servers()
        );
        assert!(archsim.outcome.total_energy().as_joules() > 0.0);
        assert!(archsim.outcome.total_violations() >= analytic.outcome.total_violations());
    }
    let groups = sweep.seed_groups();
    assert_eq!(groups.len(), 2, "one seed-averaged group per backend");
    assert!(groups.iter().all(|g| g.runs == 2));
    assert!(groups[1].label(spec.ablation).ends_with("/archsim"));
    // EPACT replans every slot; 2 seeds x 2 backends over 1 fleet per
    // seed -> each plan group computed once (168 misses) and reused by
    // the other backend arm (168 hits), per seed.
    let totals = sweep.cache_totals();
    assert_eq!(
        (totals.plan_misses, totals.plan_hits),
        (336, 336),
        "cross-backend arms must share plan groups"
    );
}

/// The fault-injection acceptance shape: a 2-seed x 2-policy sweep so
/// one faulted cell leaves three healthy neighbours across both axes.
/// Cell order (fleet outermost, policy innermost): 0 = seed 21 EPACT,
/// 1 = seed 21 COAT, 2 = seed 22 EPACT, 3 = seed 22 COAT.
fn fault_sweep() -> ExperimentSpec {
    let mut spec = ExperimentSpec::default_sweep().with_seeds(&[21, 22]);
    spec.fleets.iter_mut().for_each(|f| f.num_vms = 12);
    spec.servers = vec![ServerSpec::Ntc];
    spec.policies = vec![PolicySpec::Epact, PolicySpec::Coat];
    spec.max_servers = 150;
    spec
}

#[test]
fn fault_injection_keep_going_isolates_healthy_cells() {
    // One cell panicking mid-plan must not perturb a single bit of any
    // other cell: the survivors of the faulted parallel sweep must be
    // bit-identical to a clean single-threaded sequential run.
    let spec = fault_sweep();
    let clean = Engine::with_threads(1)
        .run_sequential(&spec)
        .expect("clean run");
    assert_eq!(clean.cells.len(), 4);
    assert!(clean.is_complete());

    let faulted = Engine::new()
        .inject_fault(FaultSpec::panic_at(1, CellStage::Plan))
        .run(&spec)
        .expect("a faulted cell must not abort the sweep");
    assert_eq!(faulted.total_cells(), 4);
    assert_eq!(faulted.succeeded().len(), 3);
    assert_eq!(faulted.failed().len(), 1);
    assert!(!faulted.is_complete());

    // The failed cell is reported with its identity, stage, and cause.
    let failure = &faulted.failed()[0];
    assert_eq!(failure.index, 1);
    assert_eq!(failure.label, clean.cells[1].cell.label(spec.ablation));
    assert_eq!(failure.cell.fleet.seed, 21);
    assert_eq!(failure.stage(), Some(CellStage::Plan));
    assert_eq!(failure.kind_label(), "panic");
    assert!(
        failure.message().contains("injected fault"),
        "panic payload must survive capture: {}",
        failure.message()
    );

    // Survivors are the clean cells 0, 2, 3 — compare bit for bit, both
    // through WeekOutcome's full PartialEq and through the raw energy
    // bit patterns.
    for (survivor, clean_idx) in faulted.succeeded().iter().zip([0usize, 2, 3]) {
        let reference = &clean.cells[clean_idx];
        assert_eq!(survivor.cell, reference.cell);
        assert_eq!(survivor.outcome, reference.outcome);
        assert_eq!(
            survivor.outcome.total_energy().as_joules().to_bits(),
            reference.outcome.total_energy().as_joules().to_bits(),
            "energy drifted in cell {clean_idx} next to a faulted sibling"
        );
    }

    // Seed aggregation skips the failed cell without poisoning the
    // statistics: EPACT still averages both seeds, COAT drops to one
    // run, and nothing goes NaN.
    let groups = faulted.seed_groups();
    assert_eq!(groups.len(), 2);
    let epact = &groups[0];
    let coat = &groups[1];
    assert_eq!((epact.policy, epact.runs), (PolicySpec::Epact, 2));
    assert_eq!((coat.policy, coat.runs), (PolicySpec::Coat, 1));
    for group in &groups {
        for stat in [
            group.energy_mj,
            group.violations,
            group.migrations,
            group.mean_active_servers,
        ] {
            assert!(stat.mean.is_finite(), "{:?}: NaN mean", group.policy);
            assert!(stat.std.is_finite(), "{:?}: NaN std", group.policy);
        }
    }
    // The intact group matches the clean run exactly.
    assert_eq!(*epact, clean.seed_groups()[0]);
}

#[test]
fn fault_injection_fail_fast_aborts_remaining_cells() {
    // Same sweep under FailFast on one thread, so the claim order is
    // the spec order: cell 0 completes, cell 1 panics, cells 2 and 3
    // are reported as skipped instead of running.
    let mut spec = fault_sweep();
    spec.failure_policy = FailurePolicy::FailFast;
    let clean = Engine::with_threads(1)
        .run_sequential(&fault_sweep())
        .expect("clean run");

    let faulted = Engine::with_threads(1)
        .inject_fault(FaultSpec::panic_at(1, CellStage::Plan))
        .run(&spec)
        .expect("fail-fast still returns the partial result");
    assert_eq!(faulted.total_cells(), 4);
    assert_eq!(faulted.succeeded().len(), 1);
    assert_eq!(faulted.failed().len(), 3);

    // The completed cell is untouched by the abort.
    assert_eq!(faulted.succeeded()[0].outcome, clean.cells[0].outcome);

    // Cell 1 carries the panic; the unstarted cells are skipped with no
    // stage (they never entered the pipeline).
    let failures = faulted.failed();
    assert_eq!(failures[0].index, 1);
    assert_eq!(failures[0].stage(), Some(CellStage::Plan));
    assert_eq!(failures[0].kind_label(), "panic");
    for (failure, index) in failures[1..].iter().zip([2usize, 3]) {
        assert_eq!(failure.index, index);
        assert_eq!(failure.stage(), None);
        assert_eq!(failure.kind_label(), "skipped");
        assert!(failure.message().contains("fail-fast"));
    }
}

#[test]
fn fault_injection_error_kind_reports_structured_error() {
    // An error-kind fault exercises the non-panic failure path end to
    // end: the cell fails in the setup stage with a structured
    // ntc_core::Error instead of a payload string.
    let spec = fault_sweep();
    let faulted = Engine::new()
        .inject_fault(FaultSpec::error_at(2))
        .run(&spec)
        .expect("sweep");
    assert_eq!(faulted.succeeded().len(), 3);
    let failure = &faulted.failed()[0];
    assert_eq!(failure.index, 2);
    assert_eq!(failure.stage(), Some(CellStage::Setup));
    assert_eq!(failure.kind_label(), "error");
    assert!(failure.message().contains("injected fault in cell 2"));
}

#[test]
fn epact_saves_energy_over_coat_on_ntc() {
    let spec = small_sweep();
    let sweep = Engine::new().run(&spec).expect("sweep");
    let energy = |policy: PolicySpec| {
        sweep
            .cells
            .iter()
            .find(|c| c.cell.policy == policy && c.cell.server == ServerSpec::Ntc)
            .expect("cell present")
            .outcome
            .total_energy()
    };
    assert!(
        energy(PolicySpec::Epact) <= energy(PolicySpec::Coat),
        "EPACT must not spend more energy than COAT on the NTC server"
    );
}
