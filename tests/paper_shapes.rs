//! Integration tests asserting the paper's headline qualitative results
//! across crates — the "shape" contract of the reproduction.

use ntc_dc::archsim::qos::QosBaseline;
use ntc_dc::archsim::{efficiency, Kernel, Platform, ServerSim};
use ntc_dc::datacenter::experiments;
use ntc_dc::power::{DataCenterPowerModel, ServerPowerModel};
use ntc_dc::units::{Frequency, Percent};
use ntc_dc::workload::ClusterTraceGenerator;

#[test]
fn headline_1_ntc_dc_optimum_is_1_9_ghz() {
    // §V-A: "the optimal frequency of servers is around 1.9 GHz,
    // instead of 3.1 GHz".
    let dc = DataCenterPowerModel::new(ServerPowerModel::ntc(), 80);
    let f = dc.ntc_optimal_frequency();
    assert_eq!(f, Frequency::from_ghz(1.9));
}

#[test]
fn headline_2_conventional_dc_rewards_consolidation() {
    // Fig. 1(b): on the E5-2620 data center the minimum worst-case
    // power is always at Fmax.
    let dc = DataCenterPowerModel::new(ServerPowerModel::conventional_e5_2620(), 80);
    for util in [10.0, 30.0, 50.0] {
        let (f, _) = dc.optimal_frequency(Percent::new(util));
        assert_eq!(f, dc.server().fmax(), "util {util}%");
    }
}

#[test]
fn headline_3_above_half_utilization_minimum_feasible_frequency_wins() {
    // §V-A: "For a utilization rate higher than 50%, the optimal
    // frequency is the minimum possible that meets the workload demand."
    let dc = DataCenterPowerModel::new(ServerPowerModel::ntc(), 80);
    for util in [70.0, 80.0, 90.0] {
        let u = Percent::new(util);
        let (f_opt, _) = dc.optimal_frequency(u);
        let min_feasible = dc
            .server()
            .dvfs_levels()
            .into_iter()
            .find(|&f| dc.required_servers(u, f).is_some())
            .expect("feasible at Fmax");
        assert_eq!(f_opt, min_feasible, "util {util}%");
    }
}

#[test]
fn headline_4_table1_qos_passes_on_ntc_at_2ghz() {
    // Table I: the NTC server at 2 GHz is inside the 2x limit for all
    // three classes, and beats the Cavium ThunderX on each.
    for row in experiments::table1() {
        assert!(row.ntc_secs <= row.qos_limit_secs, "{}", row.workload);
        assert!(row.ntc_secs < row.cavium_secs, "{}", row.workload);
    }
}

#[test]
fn headline_5_fig2_min_frequencies() {
    // Fig. 2 / §VI-B3: low-mem can scale to 1.2 GHz, mid/high-mem only
    // to 1.8 GHz.
    let sim = ServerSim::new(Platform::ntc_server());
    let baseline = QosBaseline::paper_table1();
    let levels: Vec<Frequency> = [0.1, 0.2, 0.5, 1.0, 1.2, 1.5, 1.8, 2.0, 2.5]
        .iter()
        .map(|&g| Frequency::from_ghz(g))
        .collect();
    let min_f = |k: &Kernel| {
        baseline
            .min_qos_frequency(&sim, k, &levels)
            .expect("QoS reachable")
    };
    assert_eq!(min_f(&Kernel::low_mem()), Frequency::from_ghz(1.2));
    assert_eq!(min_f(&Kernel::mid_mem()), Frequency::from_ghz(1.8));
    assert_eq!(min_f(&Kernel::high_mem()), Frequency::from_ghz(1.8));
}

#[test]
fn headline_6_fig3_efficiency_peaks() {
    // Fig. 3: efficiency peaks around 1.2 GHz (high-mem) and ~1.5 GHz
    // (mid-mem), never at the sweep boundaries.
    let sim = ServerSim::new(Platform::ntc_server());
    let model = ServerPowerModel::ntc();
    let freqs: Vec<Frequency> = [0.1, 0.2, 0.5, 1.0, 1.2, 1.5, 1.8, 2.0, 2.5]
        .iter()
        .map(|&g| Frequency::from_ghz(g))
        .collect();
    let (f_high, _) =
        efficiency::optimal_efficiency_frequency(&sim, &model, &Kernel::high_mem(), &freqs);
    let (f_mid, _) =
        efficiency::optimal_efficiency_frequency(&sim, &model, &Kernel::mid_mem(), &freqs);
    assert_eq!(f_high, Frequency::from_ghz(1.2));
    assert_eq!(f_mid, Frequency::from_ghz(1.5));
}

#[test]
fn headline_7_week_epact_beats_both_baselines() {
    // Figs. 4-6 at reduced scale: EPACT has (near-)zero violations and
    // lower energy than COAT and COAT-OPT, while COAT uses fewer
    // servers.
    let fleet = ClusterTraceGenerator::google_like(96, 4242).generate();
    let outcomes = experiments::fig4_5_6(&fleet, 600);
    let (epact, coat, coat_opt) = (&outcomes[0], &outcomes[1], &outcomes[2]);

    assert!(
        epact.total_violations() * 10 < coat.total_violations().max(10),
        "EPACT must drastically reduce violations: {} vs {}",
        epact.total_violations(),
        coat.total_violations()
    );
    assert!(
        epact.total_energy() < coat.total_energy(),
        "EPACT must beat COAT"
    );
    assert!(
        epact.total_energy() < coat_opt.total_energy(),
        "EPACT must beat COAT-OPT"
    );
    assert!(
        coat.mean_active_servers() < epact.mean_active_servers(),
        "COAT must consolidate onto fewer servers"
    );
    let saving = epact.energy_saving_vs(coat);
    assert!(
        (0.10..=0.60).contains(&saving),
        "saving vs COAT out of band: {:.1}%",
        saving * 100.0
    );
}

#[test]
fn headline_8_fig7_static_power_trend() {
    // Fig. 7: EPACT's edge over consolidation shrinks as static power
    // grows (and grows in future low-static-power technologies).
    let fleet = ntc_dc::datacenter::FleetSpec {
        num_vms: 48,
        seed: 99,
        weeks: 2,
    };
    let pts = experiments::fig7(fleet, 600, &[5.0, 25.0, 45.0]);
    assert!(pts[0].saving_pct > pts[2].saving_pct);
    assert!(
        pts[0].saving_pct > 10.0,
        "low static power strongly favours EPACT"
    );
}

#[test]
fn headline_9_proportionality_gap() {
    // §I/§V: FD-SOI NTC servers are energy-proportional; conventional
    // ones are not.
    use ntc_dc::power::proportionality::ep_index;
    let ntc = ServerPowerModel::ntc();
    let conv = ServerPowerModel::conventional_e5_2620();
    assert!(ep_index(&ntc, ntc.fmax(), 50) > ep_index(&conv, conv.fmax(), 50) + 0.1);
}
